//! The telemetry disabled path must be free: with no sink installed, the
//! instrumentation woven through the query path (`obs::span`, attribute
//! setters, `obs::counter`) costs one relaxed atomic load each and performs
//! **zero heap allocations**. This binary installs a counting global
//! allocator and pins that, around both bare telemetry calls and a real
//! k=1 UPEC query.
//!
//! Kept as its own integration-test binary because the `#[global_allocator]`
//! is process-wide, and because the sink registry is process-global (no
//! other test here ever installs one, so tracing is guaranteed off).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use upec::engine::IncrementalSession;
use upec::scenarios;
use upec::UpecOptions;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn disabled_telemetry_allocates_nothing() {
    assert!(!obs::enabled(), "no sink may be installed in this binary");

    // A real query first: proves the instrumented code paths all run in
    // this process (compile, COI, encode, search) before we measure.
    let spec = scenarios::by_id("cache-footprint").expect("registered");
    let model = spec.build_model();
    let commitment = spec.commitment_set(&model);
    let mut session = IncrementalSession::with_options(&model, UpecOptions::window(1));
    let outcome = session.check_bound(1, &commitment);
    assert!(!outcome.verdict_name().is_empty());

    // Bare disabled-path telemetry: the exact call shapes the query path
    // uses, in a loop large enough that even a single stray allocation per
    // iteration would be unmissable.
    let before = allocations();
    for i in 0..10_000u64 {
        let mut span = obs::span("upec.check_bound");
        span.attr_u64("window", i);
        span.attr_str("verdict", "proven");
        span.attr_f64("ratio", 0.5);
        span.attr_bool("ok", true);
        obs::counter("propagations", i);
        let inner = obs::span("sat.search");
        obs::counter("conflicts", i);
        drop(inner);
    }
    assert_eq!(
        allocations() - before,
        0,
        "disabled spans/attrs/counters must not allocate"
    );

    // And through the query path itself: a second identical query on a
    // fresh session must not allocate any *more* than the structures the
    // query itself needs — measured as: the delta of a query with the
    // telemetry calls present (this build) is identical across repeated
    // runs, i.e. the disabled path contributes a constant zero rather than
    // accumulating per-call buffers.
    let run = || {
        let mut session = IncrementalSession::with_options(&model, UpecOptions::window(1));
        let before = allocations();
        let outcome = session.check_bound(1, &commitment);
        (allocations() - before, outcome.verdict_name())
    };
    let (first_allocs, first_verdict) = run();
    let (second_allocs, second_verdict) = run();
    assert_eq!(first_verdict, second_verdict);
    assert_eq!(
        first_allocs, second_allocs,
        "identical untraced queries must have identical allocation counts"
    );
}
