//! Regenerates **Fig. 1** of the paper as a measurement: after an aborted
//! illegal load, does the cache state depend on the secret? Compares the
//! vulnerable (Meltdown-style) design against the secure design.
//!
//! ```text
//! cargo run --release -p bench --bin fig1_cache_footprint
//! ```

use soc::{SocConfig, SocSim, SocVariant};
use upec::scenarios;

fn footprint(variant: SocVariant, secret: u32) -> Vec<u64> {
    let spec = scenarios::by_id("cache-footprint").expect("registered scenario");
    let config = SocConfig::new(variant);
    let program = spec
        .demo_program(&config)
        .expect("the footprint scenario ships a demo program");
    let mut sim = SocSim::new(config.clone(), program);
    sim.protect_secret_region();
    sim.preload_secret_in_cache(secret);
    sim.store_word(secret, 0x1234_5678);
    sim.run(80);
    (0..config.cache_lines)
        .map(|i| sim.register(&format!("dcache.valid{i}")))
        .collect()
}

fn main() {
    println!("Fig. 1 — cache footprint after an aborted illegal access\n");
    let secrets = [0x184u32, 0x188, 0x18c, 0x190];
    for variant in [SocVariant::MeltdownStyle, SocVariant::Secure] {
        println!("{} design:", variant.name());
        println!("{:>12} {:>24}", "secret", "valid bits per line");
        let mut distinct = std::collections::BTreeSet::new();
        for &secret in &secrets {
            let fp = footprint(variant, secret);
            distinct.insert(fp.clone());
            println!("{secret:>#12x} {:>24}", format!("{fp:?}"));
        }
        if distinct.len() > 1 {
            println!("  -> the cache footprint depends on the secret: covert channel (vulnerable design)\n");
        } else {
            println!("  -> identical footprint for every secret: no observable side effect (secure design)\n");
        }
    }
    println!("Shape check vs the paper: only the design that does not cancel the transient");
    println!("refill lets the secret modulate the cache state.");
}
