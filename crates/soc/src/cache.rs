//! RTL builder for the pipelined, direct-mapped, write-allocate data cache.
//!
//! The cache is the microarchitectural centrepiece of both attacks studied in
//! the paper:
//!
//! * it accepts a store into a **pending-write buffer** and signals completion
//!   to the core immediately, creating the read-after-write (RAW) hazard
//!   window exploited by the Orc attack;
//! * on a load miss it runs a **refill** state machine against main memory;
//!   whether an in-flight refill is cancelled when the pipeline is flushed is
//!   the Meltdown-style design decision of paper Fig. 1.

use crate::SocConfig;
use rtl::{BitVec, Netlist, RegisterId, SignalId};

/// Request-side signals the core presents to the cache (all computed in the
/// core's EX stage).
#[derive(Debug, Clone, Copy)]
pub struct CacheRequest {
    /// A load or store request is present this cycle.
    pub valid: SignalId,
    /// The request is a store.
    pub write: SignalId,
    /// Byte address of the access.
    pub addr: SignalId,
    /// Store data.
    pub wdata: SignalId,
    /// Whether a miss may start a refill (cleared for PMP-faulting probes).
    pub allow_refill: SignalId,
    /// The pipeline is being flushed by a trap this cycle.
    pub flush: SignalId,
}

/// Signals produced by the cache.
#[derive(Debug, Clone)]
pub struct CacheSignals {
    /// The request hits a valid line.
    pub hit: SignalId,
    /// Read data for the selected line (meaningful on a hit).
    pub resp_data: SignalId,
    /// The request cannot complete this cycle; the core must stall.
    pub busy: SignalId,
    /// The request collides with the pending write (RAW hazard).
    pub raw_hazard: SignalId,
    /// Memory-side read/write request valid.
    pub mem_req_valid: SignalId,
    /// Memory-side request is a write.
    pub mem_req_write: SignalId,
    /// Memory-side request address.
    pub mem_req_addr: SignalId,
    /// Memory-side write data.
    pub mem_req_wdata: SignalId,
    /// A refill is in flight.
    pub refill_active: SignalId,
    /// The refill response is consumed this cycle (the cycle the line is
    /// written); Constraint 4 couples the memory read data of the two miter
    /// instances at this point.
    pub refill_done: SignalId,
    /// Address of the in-flight refill.
    pub refill_addr: SignalId,
    /// Pending-write buffer occupied.
    pub pending_write_valid: SignalId,
    /// Pending-write buffer address.
    pub pending_write_addr: SignalId,
    /// Constraint-2 monitor: the cache's internal state is protocol
    /// consistent (counters in range).
    pub monitor_valid: SignalId,
    /// The line the secret address maps to currently holds a valid copy of
    /// the secret (tag match).
    pub secret_line_present: SignalId,
    /// Registers holding cache line data (the "memory" part of the cache
    /// which the UPEC model excludes from the logic state).
    pub data_registers: Vec<RegisterId>,
    /// Register holding the data of the line the secret maps to.
    pub secret_line_data_register: RegisterId,
    /// All other (logic) registers of the cache: valid bits, tags, pending
    /// write buffer, refill state.
    pub logic_registers: Vec<RegisterId>,
}

fn counter_width(max: u32) -> u32 {
    32 - max.max(1).leading_zeros()
}

/// Builds the data cache inside `n` and returns its signals.
///
/// `mem_rdata` is the memory-side read-data input (owned by the caller so the
/// UPEC miter can couple it between instances).
pub fn build_cache(
    n: &mut Netlist,
    config: &SocConfig,
    req: CacheRequest,
    mem_rdata: SignalId,
) -> CacheSignals {
    n.push_scope("dcache");
    let lines = config.cache_lines;
    let idx_bits = config.index_bits();
    let tag_bits = 30 - idx_bits;
    let cnt_bits = counter_width(config.miss_latency.max(config.store_latency));

    // ------------------------------------------------------------------
    // State
    // ------------------------------------------------------------------
    let mut valid_regs = Vec::new();
    let mut tag_regs = Vec::new();
    let mut data_regs = Vec::new();
    for i in 0..lines {
        valid_regs.push(n.register_init(format!("valid{i}"), 1, BitVec::zero(1)));
        tag_regs.push(n.register_init(format!("tag{i}"), tag_bits, BitVec::zero(tag_bits)));
        data_regs.push(n.register_init(format!("data{i}"), 32, BitVec::zero(32)));
    }
    let pw_valid = n.register_init("pw_valid", 1, BitVec::zero(1));
    let pw_addr = n.register_init("pw_addr", 32, BitVec::zero(32));
    let pw_data = n.register_init("pw_data", 32, BitVec::zero(32));
    let pw_counter = n.register_init("pw_counter", cnt_bits, BitVec::zero(cnt_bits));
    let refill_valid = n.register_init("refill_valid", 1, BitVec::zero(1));
    let refill_addr = n.register_init("refill_addr", 32, BitVec::zero(32));
    let refill_counter = n.register_init("refill_counter", cnt_bits, BitVec::zero(cnt_bits));

    // ------------------------------------------------------------------
    // Address decomposition helpers
    // ------------------------------------------------------------------
    let index_of =
        |n: &mut Netlist, addr: SignalId| -> SignalId { n.slice(addr, 2 + idx_bits - 1, 2) };
    let tag_of = |n: &mut Netlist, addr: SignalId| -> SignalId { n.slice(addr, 31, 2 + idx_bits) };

    let zero_bit = n.zero();
    let one_bit = n.one();

    let req_index = index_of(n, req.addr);
    let req_tag = tag_of(n, req.addr);
    let pw_index = index_of(n, pw_addr.value());
    let pw_tag = tag_of(n, pw_addr.value());
    let refill_index = index_of(n, refill_addr.value());
    let refill_tag = tag_of(n, refill_addr.value());

    // Line selection by request index (read muxes over the arrays).
    let mut sel_valid = n.zero();
    let mut sel_tag = n.lit(0, tag_bits);
    let mut sel_data = n.lit(0, 32);
    let mut pw_line_valid = n.zero();
    let mut pw_line_tag = n.lit(0, tag_bits);
    for i in 0..lines {
        let is_i = n.eq_lit(req_index, u64::from(i));
        sel_valid = n.mux(is_i, valid_regs[i as usize].value(), sel_valid);
        sel_tag = n.mux(is_i, tag_regs[i as usize].value(), sel_tag);
        sel_data = n.mux(is_i, data_regs[i as usize].value(), sel_data);
        let pw_is_i = n.eq_lit(pw_index, u64::from(i));
        pw_line_valid = n.mux(pw_is_i, valid_regs[i as usize].value(), pw_line_valid);
        pw_line_tag = n.mux(pw_is_i, tag_regs[i as usize].value(), pw_line_tag);
    }

    let tags_match = n.eq(sel_tag, req_tag);
    let hit = n.and(sel_valid, tags_match);
    // Read data is only returned on a hit; a miss never exposes the stale
    // content of the indexed line to the core (the refill supplies the data
    // once it completes and the access is retried as a hit).
    let zero_word = n.lit(0, 32);
    let resp_data = n.mux(hit, sel_data, zero_word);

    let is_load = {
        let not_write = n.not(req.write);
        n.and(req.valid, not_write)
    };
    let is_store = n.and(req.valid, req.write);

    // ------------------------------------------------------------------
    // RAW hazard: a load to the index of the pending write must wait.
    // ------------------------------------------------------------------
    let indexes_collide = n.eq(pw_index, req_index);
    let raw_hazard = {
        let a = n.and(is_load, pw_valid.value());
        n.and(a, indexes_collide)
    };

    // ------------------------------------------------------------------
    // Refill state machine
    // ------------------------------------------------------------------
    let counter_zero = n.eq_lit(refill_counter.value(), 0);
    let refill_done = n.and(refill_valid.value(), counter_zero);
    let miss = n.not(hit);
    let no_refill_yet = n.not(refill_valid.value());
    let not_raw = n.not(raw_hazard);
    let start_refill = n.and_all([is_load, miss, not_raw, req.allow_refill, no_refill_yet]);

    let cancel_refill = if config.cancel_refill_on_flush {
        req.flush
    } else {
        zero_bit
    };

    // refill_valid' = start ? 1 : (done || cancel) ? 0 : hold
    let refill_valid_next = {
        let done_or_cancel = n.or(refill_done, cancel_refill);
        let cleared = n.mux(done_or_cancel, zero_bit, refill_valid.value());
        n.mux(start_refill, one_bit, cleared)
    };
    n.set_next(refill_valid, refill_valid_next);

    let refill_addr_next = n.mux(start_refill, req.addr, refill_addr.value());
    n.set_next(refill_addr, refill_addr_next);

    let counter_nonzero = n.not(counter_zero);
    let one_cnt = n.lit(1, cnt_bits);
    let decremented = n.sub(refill_counter.value(), one_cnt);
    let ticking = n.and(refill_valid.value(), counter_nonzero);
    let held_or_ticked = n.mux(ticking, decremented, refill_counter.value());
    let miss_latency_lit = n.lit(u64::from(config.miss_latency), cnt_bits);
    let refill_counter_next = n.mux(start_refill, miss_latency_lit, held_or_ticked);
    n.set_next(refill_counter, refill_counter_next);

    // ------------------------------------------------------------------
    // Pending write buffer
    // ------------------------------------------------------------------
    let pw_counter_zero = n.eq_lit(pw_counter.value(), 0);
    let pw_commit = n.and(pw_valid.value(), pw_counter_zero);
    let buffer_free = n.not(pw_valid.value());
    let accept_store = n.and_all([is_store, buffer_free, no_refill_yet]);

    let pw_valid_next = {
        let after_commit = n.mux(pw_commit, zero_bit, pw_valid.value());
        n.mux(accept_store, one_bit, after_commit)
    };
    n.set_next(pw_valid, pw_valid_next);
    let pw_addr_next = n.mux(accept_store, req.addr, pw_addr.value());
    n.set_next(pw_addr, pw_addr_next);
    let pw_data_next = n.mux(accept_store, req.wdata, pw_data.value());
    n.set_next(pw_data, pw_data_next);

    let pw_counter_nonzero = n.not(pw_counter_zero);
    let pw_dec = n.sub(pw_counter.value(), one_cnt);
    let pw_ticking = n.and(pw_valid.value(), pw_counter_nonzero);
    let pw_held = n.mux(pw_ticking, pw_dec, pw_counter.value());
    let store_latency_lit = n.lit(u64::from(config.store_latency), cnt_bits);
    let pw_counter_next = n.mux(accept_store, store_latency_lit, pw_held);
    n.set_next(pw_counter, pw_counter_next);

    let pw_tags_match = n.eq(pw_line_tag, pw_tag);
    let pw_line_hit = n.and(pw_line_valid, pw_tags_match);
    let pw_writes_line = n.and(pw_commit, pw_line_hit);

    // ------------------------------------------------------------------
    // Line array updates
    // ------------------------------------------------------------------
    for i in 0..lines {
        let iu = u64::from(i);
        let refill_this = {
            let idx_match = n.eq_lit(refill_index, iu);
            n.and(refill_done, idx_match)
        };
        let pw_this = {
            let idx_match = n.eq_lit(pw_index, iu);
            n.and(pw_writes_line, idx_match)
        };
        let valid_next = n.mux(refill_this, one_bit, valid_regs[i as usize].value());
        n.set_next(valid_regs[i as usize], valid_next);
        let tag_next = n.mux(refill_this, refill_tag, tag_regs[i as usize].value());
        n.set_next(tag_regs[i as usize], tag_next);
        let after_pw = n.mux(pw_this, pw_data.value(), data_regs[i as usize].value());
        let data_next = n.mux(refill_this, mem_rdata, after_pw);
        n.set_next(data_regs[i as usize], data_next);
    }

    // ------------------------------------------------------------------
    // Busy / response
    // ------------------------------------------------------------------
    let refill_needed = n.and_all([is_load, miss, req.allow_refill]);
    let busy_load = n.or(raw_hazard, refill_needed);
    let load_busy = n.and(is_load, busy_load);
    let store_full = n.and(is_store, pw_valid.value());
    let any_req_during_refill = n.and(req.valid, refill_valid.value());
    let busy = n.or_all([load_busy, store_full, any_req_during_refill]);

    // Memory-side request: refill read when starting, write when the pending
    // write drains (writes win the address mux; they never coincide with a
    // refill start because `accept_store` requires the buffer to be free and
    // `start_refill` requires no RAW hazard).
    let mem_req_valid = n.or(start_refill, pw_commit);
    let mem_req_addr = n.mux(pw_commit, pw_addr.value(), req.addr);

    // Constraint-2 monitor: counters never exceed their programmed latencies.
    let refill_cnt_ok = {
        let limit = n.lit(u64::from(config.miss_latency), cnt_bits);
        n.ule(refill_counter.value(), limit)
    };
    let pw_cnt_ok = {
        let limit = n.lit(u64::from(config.store_latency), cnt_bits);
        n.ule(pw_counter.value(), limit)
    };
    let monitor_valid = n.and(refill_cnt_ok, pw_cnt_ok);

    // Secret-line presence: the (fixed) line the secret maps to is valid and
    // tagged with the secret's tag.
    let sidx = config.secret_index() as usize;
    let secret_tag_lit = n.lit(u64::from(config.secret_tag()), tag_bits);
    let secret_tag_match = n.eq(tag_regs[sidx].value(), secret_tag_lit);
    let secret_line_present = n.and(valid_regs[sidx].value(), secret_tag_match);

    let signals = CacheSignals {
        hit,
        resp_data,
        busy,
        raw_hazard,
        mem_req_valid,
        mem_req_write: pw_commit,
        mem_req_addr,
        mem_req_wdata: pw_data.value(),
        refill_active: refill_valid.value(),
        refill_done,
        refill_addr: refill_addr.value(),
        pending_write_valid: pw_valid.value(),
        pending_write_addr: pw_addr.value(),
        monitor_valid,
        secret_line_present,
        data_registers: data_regs.iter().map(|r| r.id()).collect(),
        secret_line_data_register: data_regs[sidx].id(),
        logic_registers: valid_regs
            .iter()
            .chain(tag_regs.iter())
            .map(|r| r.id())
            .chain(
                [
                    &pw_valid,
                    &pw_addr,
                    &pw_data,
                    &pw_counter,
                    &refill_valid,
                    &refill_addr,
                    &refill_counter,
                ]
                .into_iter()
                .map(|r| r.id()),
            )
            .collect(),
    };
    n.pop_scope();
    signals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SocVariant;
    use sim::Simulator;

    struct CacheHarness {
        sim: Simulator,
        req_valid: SignalId,
        req_write: SignalId,
        req_addr: SignalId,
        req_wdata: SignalId,
        allow_refill: SignalId,
        flush: SignalId,
        mem_rdata: SignalId,
        out: CacheSignals,
    }

    fn harness(variant: SocVariant) -> CacheHarness {
        let config = SocConfig::new(variant);
        let mut n = Netlist::new("cache_tb");
        let req_valid = n.input("req_valid", 1);
        let req_write = n.input("req_write", 1);
        let req_addr = n.input("req_addr", 32);
        let req_wdata = n.input("req_wdata", 32);
        let allow_refill = n.input("allow_refill", 1);
        let flush = n.input("flush", 1);
        let mem_rdata = n.input("mem_rdata", 32);
        let req = CacheRequest {
            valid: req_valid,
            write: req_write,
            addr: req_addr,
            wdata: req_wdata,
            allow_refill,
            flush,
        };
        let out = build_cache(&mut n, &config, req, mem_rdata);
        n.output("busy", out.busy);
        n.output("hit", out.hit);
        n.output("resp_data", out.resp_data);
        n.validate().expect("cache netlist is well formed");
        CacheHarness {
            sim: Simulator::new(n),
            req_valid,
            req_write,
            req_addr,
            req_wdata,
            allow_refill,
            flush,
            mem_rdata,
            out,
        }
    }

    impl CacheHarness {
        fn drive(&mut self, valid: u64, write: u64, addr: u64, wdata: u64, allow_refill: u64) {
            self.sim.poke(self.req_valid, valid);
            self.sim.poke(self.req_write, write);
            self.sim.poke(self.req_addr, addr);
            self.sim.poke(self.req_wdata, wdata);
            self.sim.poke(self.allow_refill, allow_refill);
        }
    }

    #[test]
    fn miss_refills_and_then_hits() {
        let mut h = harness(SocVariant::Secure);
        h.sim.poke(h.mem_rdata, 0xcafe_babe);
        h.drive(1, 0, 0x40, 0, 1);
        // Miss: busy until the refill completes.
        assert_eq!(h.sim.peek(h.out.hit).as_u64(), 0);
        assert_eq!(h.sim.peek(h.out.busy).as_u64(), 1);
        let waited = h.sim.step_until(20, |s| s.peek(h.out.busy).is_zero());
        assert!(waited.is_some(), "refill must finish");
        assert_eq!(h.sim.peek(h.out.hit).as_u64(), 1);
        assert_eq!(h.sim.peek(h.out.resp_data).as_u64(), 0xcafe_babe);
        // A second access to the same line hits immediately.
        h.drive(1, 0, 0x40, 0, 1);
        assert_eq!(h.sim.peek(h.out.busy).as_u64(), 0);
    }

    #[test]
    fn store_is_accepted_and_creates_raw_hazard() {
        let mut h = harness(SocVariant::Secure);
        // Store to address 0x10 (index 0 with 4 lines of one word).
        h.drive(1, 1, 0x10, 77, 1);
        assert_eq!(
            h.sim.peek(h.out.busy).as_u64(),
            0,
            "store accepted immediately"
        );
        h.sim.step();
        // While the write is pending, a load to the same index stalls.
        h.drive(1, 0, 0x10, 0, 1);
        assert_eq!(h.sim.peek(h.out.raw_hazard).as_u64(), 1);
        assert_eq!(h.sim.peek(h.out.busy).as_u64(), 1);
        // A load to a different index does not see the RAW hazard.
        h.drive(1, 0, 0x14, 0, 1);
        assert_eq!(h.sim.peek(h.out.raw_hazard).as_u64(), 0);
        // After the pending write drains, the same-index load proceeds.
        h.drive(1, 0, 0x10, 0, 1);
        let waited = h.sim.step_until(20, |s| s.peek(h.out.raw_hazard).is_zero());
        assert!(waited.is_some());
    }

    #[test]
    fn flush_cancels_refill_in_secure_design_but_not_in_meltdown_variant() {
        for (variant, expect_filled) in [
            (SocVariant::Secure, false),
            (SocVariant::MeltdownStyle, true),
        ] {
            let mut h = harness(variant);
            h.sim.poke(h.mem_rdata, 0x1234_5678);
            // Start a refill of address 0x40.
            h.drive(1, 0, 0x40, 0, 1);
            assert_eq!(h.sim.peek(h.out.refill_active).as_u64(), 0);
            h.sim.step();
            assert_eq!(h.sim.peek(h.out.refill_active).as_u64(), 1);
            // Flush while the refill is in flight; drop the request (the
            // requesting instruction was killed).
            h.drive(0, 0, 0, 0, 0);
            h.sim.poke(h.flush, 1);
            h.sim.step();
            h.sim.poke(h.flush, 0);
            h.sim.run(10);
            // Probe whether the line got filled.
            h.drive(1, 0, 0x40, 0, 0);
            let filled = h.sim.peek(h.out.hit).as_u64() == 1;
            assert_eq!(filled, expect_filled, "variant {variant:?}");
        }
    }

    #[test]
    fn no_refill_when_not_allowed() {
        let mut h = harness(SocVariant::Secure);
        h.drive(1, 0, 0x80, 0, 0);
        assert_eq!(
            h.sim.peek(h.out.busy).as_u64(),
            0,
            "probe without refill never stalls"
        );
        h.sim.run(5);
        assert_eq!(h.sim.peek(h.out.refill_active).as_u64(), 0);
    }

    #[test]
    fn secret_line_presence_tracks_tag_and_valid() {
        let config = SocConfig::new(SocVariant::Secure);
        let mut h = harness(SocVariant::Secure);
        assert_eq!(h.sim.peek(h.out.secret_line_present).as_u64(), 0);
        // Refill the secret's own address; afterwards the line holds it.
        h.sim.poke(h.mem_rdata, 0xdead_beef);
        h.drive(1, 0, u64::from(config.secret_addr), 0, 1);
        let waited = h.sim.step_until(20, |s| s.peek(h.out.busy).is_zero());
        assert!(waited.is_some());
        assert_eq!(h.sim.peek(h.out.secret_line_present).as_u64(), 1);
    }

    #[test]
    fn monitor_is_valid_in_reachable_states() {
        let mut h = harness(SocVariant::Secure);
        h.drive(1, 0, 0x40, 0, 1);
        for _ in 0..10 {
            assert_eq!(h.sim.peek(h.out.monitor_valid).as_u64(), 1);
            h.sim.step();
        }
    }
}
