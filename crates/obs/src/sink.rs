//! Trace records, the [`Sink`] trait, and the two bundled sinks.
//!
//! The JSONL wire format is part of the crate's public contract (golden
//! tested): one JSON object per line, `"type":"span"` or `"type":"counter"`.
//! [`span_to_jsonl`] / [`counter_to_jsonl`] are exposed so consumers can
//! re-serialize in-memory events identically to what [`JsonlSink`] writes.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A typed span-attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (serialized with full `{}` formatting).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string (JSON-escaped on serialization).
    Str(String),
}

/// A finished span: identity, lineage, timing and attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique (process-wide) span id; never 0.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name (see the span taxonomy in `docs/observability.md`).
    pub name: &'static str,
    /// Start offset in nanoseconds from the trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Attributes attached via `SpanGuard::attr_*`, in attachment order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// A point counter event attributed to the span that was innermost when it
/// was emitted.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRecord {
    /// Id of the attributed span, or `None` when emitted outside any span.
    pub span: Option<u64>,
    /// Static counter name.
    pub name: &'static str,
    /// Counter value (deltas, not gauges, by convention).
    pub value: u64,
}

/// Receiver of finished telemetry records. Implementations must be
/// thread-safe: spans close on whatever thread opened them.
pub trait Sink: Send + Sync {
    /// Called once per span, at the moment the span closes.
    fn record_span(&self, span: &SpanRecord);
    /// Called once per [`crate::counter`] emission.
    fn record_counter(&self, counter: &CounterRecord);
    /// Flushes any buffered output; called by [`crate::uninstall`].
    fn flush(&self) {}
}

/// Appends a JSON-escaped copy of `value` to `out` (no surrounding quotes).
///
/// Escapes the two mandatory characters (`"` and `\`) plus control
/// characters, matching the subset of JSON string syntax the bench bins
/// have always emitted.
pub fn json_escape_into(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn attr_value_into(out: &mut String, value: &AttrValue) {
    match value {
        AttrValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::F64(v) => {
            if v.is_finite() {
                // NaN/inf have no JSON number form; finite floats use Rust's
                // shortest round-trip formatting, which is valid JSON.
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        AttrValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::Str(v) => {
            out.push('"');
            json_escape_into(out, v);
            out.push('"');
        }
    }
}

/// Serializes a span record to its single-line JSONL form (no trailing
/// newline), exactly as [`JsonlSink`] writes it.
pub fn span_to_jsonl(span: &SpanRecord) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"type\":\"span\",\"id\":");
    let _ = write!(out, "{}", span.id);
    out.push_str(",\"parent\":");
    match span.parent {
        Some(p) => {
            let _ = write!(out, "{p}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"name\":\"");
    json_escape_into(&mut out, span.name);
    let _ = write!(
        out,
        "\",\"start_ns\":{},\"dur_ns\":{},\"attrs\":{{",
        span.start_ns, span.duration_ns
    );
    for (i, (key, value)) in span.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape_into(&mut out, key);
        out.push_str("\":");
        attr_value_into(&mut out, value);
    }
    out.push_str("}}");
    out
}

/// Serializes a counter record to its single-line JSONL form (no trailing
/// newline), exactly as [`JsonlSink`] writes it.
pub fn counter_to_jsonl(counter: &CounterRecord) -> String {
    let mut out = String::with_capacity(64);
    out.push_str("{\"type\":\"counter\",\"span\":");
    match counter.span {
        Some(s) => {
            let _ = write!(out, "{s}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"name\":\"");
    json_escape_into(&mut out, counter.name);
    let _ = write!(out, "\",\"value\":{}}}", counter.value);
    out
}

/// One recorded event, in sink-arrival order.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A finished span.
    Span(SpanRecord),
    /// A counter emission.
    Counter(CounterRecord),
}

/// In-memory sink: collects every event into a vector, in arrival order.
/// Intended for tests and for post-run aggregation (`trace_report`).
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("MemorySink lock poisoned")
            .clone()
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events
            .lock()
            .expect("MemorySink lock poisoned")
            .clear();
    }

    /// Returns only the span records, in arrival (i.e. close) order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Span(s) => Some(s),
                Event::Counter(_) => None,
            })
            .collect()
    }

    /// Returns only the counter records, in arrival order.
    pub fn counters(&self) -> Vec<CounterRecord> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Counter(c) => Some(c),
                Event::Span(_) => None,
            })
            .collect()
    }
}

impl Sink for MemorySink {
    fn record_span(&self, span: &SpanRecord) {
        self.events
            .lock()
            .expect("MemorySink lock poisoned")
            .push(Event::Span(span.clone()));
    }

    fn record_counter(&self, counter: &CounterRecord) {
        self.events
            .lock()
            .expect("MemorySink lock poisoned")
            .push(Event::Counter(counter.clone()));
    }
}

/// JSONL file sink: writes one JSON object per line through a buffered,
/// mutex-protected writer.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    fn write_line(&self, line: &str) {
        let mut writer = self.writer.lock().expect("JsonlSink lock poisoned");
        // Telemetry is best-effort: a full disk must not abort verification.
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.write_all(b"\n");
    }
}

impl Sink for JsonlSink {
    fn record_span(&self, span: &SpanRecord) {
        self.write_line(&span_to_jsonl(span));
    }

    fn record_counter(&self, counter: &CounterRecord) {
        self.write_line(&counter_to_jsonl(counter));
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("JsonlSink lock poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_jsonl_golden() {
        let span = SpanRecord {
            id: 5,
            parent: Some(4),
            name: "sat.search",
            start_ns: 1_000,
            duration_ns: 2_500,
            attrs: vec![
                ("result", AttrValue::Str("unsat".to_string())),
                ("conflicts", AttrValue::U64(12)),
                ("ok", AttrValue::Bool(true)),
                ("delta", AttrValue::I64(-3)),
            ],
        };
        assert_eq!(
            span_to_jsonl(&span),
            "{\"type\":\"span\",\"id\":5,\"parent\":4,\"name\":\"sat.search\",\
             \"start_ns\":1000,\"dur_ns\":2500,\"attrs\":{\"result\":\"unsat\",\
             \"conflicts\":12,\"ok\":true,\"delta\":-3}}"
        );
    }

    #[test]
    fn root_span_has_null_parent() {
        let span = SpanRecord {
            id: 1,
            parent: None,
            name: "upec.check_bound",
            start_ns: 0,
            duration_ns: 9,
            attrs: Vec::new(),
        };
        assert_eq!(
            span_to_jsonl(&span),
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"upec.check_bound\",\
             \"start_ns\":0,\"dur_ns\":9,\"attrs\":{}}"
        );
    }

    #[test]
    fn counter_jsonl_golden() {
        let counter = CounterRecord {
            span: Some(5),
            name: "propagations",
            value: 1234,
        };
        assert_eq!(
            counter_to_jsonl(&counter),
            "{\"type\":\"counter\",\"span\":5,\"name\":\"propagations\",\"value\":1234}"
        );
        let orphan = CounterRecord {
            span: None,
            name: "x",
            value: 0,
        };
        assert_eq!(
            counter_to_jsonl(&orphan),
            "{\"type\":\"counter\",\"span\":null,\"name\":\"x\",\"value\":0}"
        );
    }

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut out = String::new();
        json_escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }
}
