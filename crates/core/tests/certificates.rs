//! Differential certificate suite: every scenario verdict must come with an
//! independently checkable certificate.
//!
//! Proven bounds are certified by a trimmed DRAT refutation replayed through
//! the reverse-unit-propagation checker in `sat::drat`; violated bounds are
//! certified by a concrete witness trace replayed on the `sim` golden model.
//! The fast subset below runs in the default test pass; the full 25-instance
//! registry sweep is behind `--ignored` (run by `scripts/verify.sh --full`).

use std::collections::BTreeSet;

use soc::{SocConfig, SocVariant};
use upec::scenarios::{self, Expectation};
use upec::{
    BoundStatus, CertificateCheck, CertificateError, CertifiedResult, EngineError, EngineOptions,
    IncrementalSession, SecretScenario, UpecEngine, UpecModel, UpecOptions, VerdictCertificate,
};

/// Certifies one instance end to end and checks every certificate against a
/// freshly built model. `max_window` caps the scan (`None` runs the pinned
/// range) — the fast subset caps windows because debug-mode SAT solving and
/// proof checking of the deepest bounds would dominate the default suite.
fn certify_and_check(
    instance: &scenarios::ScenarioInstance,
    max_window: Option<usize>,
) -> CertifiedResult {
    let mut options = EngineOptions::new().with_threads(1);
    if let Some(cap) = max_window {
        options = options.with_max_window(cap);
    }
    let engine = UpecEngine::new(options);
    let result = engine.check_certified(instance);
    assert!(
        result.matches_expectation(),
        "{}: verdict {:?} does not match expectation {:?}",
        instance.id(),
        result.verdict,
        instance.expected
    );

    // Every decided bound carries a certificate of the right kind; only
    // Unknown/Cancelled bounds (no verdict) may go without.
    for bound in &result.bounds {
        match (bound.summary.status, &bound.certificate) {
            (BoundStatus::Proven, Some(VerdictCertificate::Proof(cert))) => {
                assert_eq!(cert.window, bound.summary.bound, "{}", instance.id());
                assert!(
                    cert.proof.num_axioms() > 0,
                    "{}: a refutation needs axioms",
                    instance.id()
                );
            }
            (
                BoundStatus::PAlert | BoundStatus::LAlert,
                Some(VerdictCertificate::Witness(cert)),
            ) => {
                assert_eq!(cert.window, bound.summary.bound, "{}", instance.id());
                assert!(
                    !cert.expected_divergences.is_empty(),
                    "{}: an alert certificate must record divergences",
                    instance.id()
                );
            }
            (BoundStatus::Unknown | BoundStatus::Cancelled, None) => {}
            (status, cert) => panic!(
                "{}: bound {} has status {status:?} but certificate {:?}",
                instance.id(),
                bound.summary.bound,
                cert.as_ref().map(|c| c.kind_name())
            ),
        }
    }

    // The independent checkers accept every certificate.
    let model = instance.build_model();
    let checks = result
        .check_all(&model)
        .unwrap_or_else(|e| panic!("{}: certificate rejected: {e}", instance.id()));
    assert_eq!(checks.len(), result.certified_bounds(), "{}", instance.id());
    result
}

#[test]
fn fast_subset_verdicts_are_certified() {
    // One proven scenario, one P-alert scan and one L-alert scan cover all
    // three certificate shapes (a refutation, a witness, and a scan with a
    // proven bound cut short by an L-alert).
    for (id, cap) in [("secure-uncached", 1), ("meltdown", 1), ("orc", 2)] {
        let instance = scenarios::instance_by_id(id).expect("registry id");
        let result = certify_and_check(&instance, Some(cap));
        assert!(
            result.certified_bounds() > 0,
            "{id}: expected at least one certified bound"
        );
    }
}

#[test]
fn tampered_witness_certificates_are_rejected() {
    let instance = scenarios::instance_by_id("meltdown").expect("registry id");
    let engine = UpecEngine::new(EngineOptions::new().with_threads(1).with_max_window(1));
    let result = engine.check_certified(&instance);
    let model = instance.build_model();
    let witness = result
        .bounds
        .iter()
        .filter_map(|b| b.certificate.as_ref())
        .find_map(|c| match c {
            VerdictCertificate::Witness(w) => Some(w.clone()),
            VerdictCertificate::Proof(_) => None,
        })
        .expect("the meltdown scan must produce a witness certificate");

    // Untampered, the witness replays.
    let ok = VerdictCertificate::Witness(witness.clone()).check(&model);
    assert!(ok.is_ok(), "pristine witness rejected: {:?}", ok.err());

    // Claiming a different divergence value must be caught by the replay.
    let mut forged = witness.clone();
    let (name, v1, _) = forged.expected_divergences[0].clone();
    forged.expected_divergences[0].2 = v1; // claim "equal values diverge"
    let err = VerdictCertificate::Witness(forged)
        .check(&model)
        .expect_err("a forged divergence must be rejected");
    match err {
        CertificateError::DivergenceMismatch { name: n, .. } => assert_eq!(n, name),
        other => panic!("unexpected rejection: {other}"),
    }

    // Naming a register pair the model does not have is caught before replay
    // values are even compared.
    let mut forged = witness;
    forged.expected_divergences[0].0 = "no-such-pair".to_string();
    let err = VerdictCertificate::Witness(forged)
        .check(&model)
        .expect_err("an unknown pair must be rejected");
    assert!(matches!(err, CertificateError::UnknownPair(_)), "{err}");
}

#[test]
fn bve_eliminated_variables_decode_into_replayable_witnesses() {
    // Regression test for witness decoding after CNF simplification: with the
    // simplify trial budget at zero the simplifier (including bounded
    // variable elimination) runs before the violated query, so the SAT model
    // is only complete through the eliminated-variable extension. The decoded
    // trace must still replay with the recorded divergences.
    let config = SocConfig::new(SocVariant::Orc)
        .with_registers(4)
        .with_cache_lines(2)
        .with_miss_latency(1)
        .with_store_latency(1);
    let model = UpecModel::new(&config, SecretScenario::InCache);
    let commitment: BTreeSet<String> = upec::full_commitment(&model);
    let options = UpecOptions::window(0)
        .with_simplify_trial(0)
        .with_certificates();
    let mut session = IncrementalSession::with_options(&model, options);

    let mut witnessed = 0;
    for k in 1..=3 {
        let (outcome, certificate) = session
            .check_bound_certified(k, &commitment)
            .expect("certified query on a logging session");
        if outcome.alert().is_none() {
            continue;
        }
        let certificate = certificate.expect("violated bounds carry a certificate");
        assert_eq!(certificate.kind_name(), "witness");
        match certificate.check(&model) {
            Ok(CertificateCheck::Witness {
                cycles,
                divergences_confirmed,
            }) => {
                assert_eq!(cycles, k);
                assert!(divergences_confirmed > 0);
            }
            other => panic!("witness at k={k} did not replay: {other:?}"),
        }
        witnessed += 1;
    }
    assert!(
        witnessed > 0,
        "the Orc miter must alert within three cycles"
    );
    assert!(
        session.simplify_stats().eliminated_vars > 0,
        "the scenario no longer exercises variable elimination; \
         stats: {:?}",
        session.simplify_stats()
    );
}

/// An undecided query must never emit a certificate: a budget-exhausted
/// certified query is rejected with a typed error — carrying the effort
/// spent and the stop cause — and the session stays valid, so re-checking
/// the same bound under a real budget certifies normally.
#[test]
fn budget_exhausted_queries_are_rejected_for_certification() {
    let config = SocConfig::new(SocVariant::Secure)
        .with_registers(4)
        .with_cache_lines(2)
        .with_miss_latency(1)
        .with_store_latency(1);
    let model = UpecModel::new(&config, SecretScenario::InCache);
    let commitment = upec::full_commitment(&model);
    // A zero-conflict, zero-decision budget cannot decide this proof (it
    // needs real search), so the query must stop as Unknown.
    let options = UpecOptions::window(0)
        .with_certificates()
        .with_budget(sat::Budget::conflicts(0).with_decisions(0));
    let mut session = IncrementalSession::with_options(&model, options);
    let err = session
        .check_bound_certified(2, &commitment)
        .expect_err("an exhausted query must not certify");
    match err {
        EngineError::UncertifiableVerdict {
            window,
            stats,
            stop,
        } => {
            assert_eq!(window, 2);
            assert_eq!(stop, Some(sat::StopCause::BudgetExhausted));
            assert_eq!(stats.stop, Some(sat::StopCause::BudgetExhausted));
        }
        other => panic!("wrong rejection: {other}"),
    }
    // The session resumes: the same bound decides and certifies under an
    // unlimited budget.
    session.set_budget(sat::Budget::unlimited());
    let (outcome, certificate) = session
        .check_bound_certified(2, &commitment)
        .expect("the resumed query decides");
    assert!(
        !matches!(outcome, upec::UpecOutcome::Unknown(_)),
        "unlimited budget must decide: {outcome:?}"
    );
    let certificate = certificate.expect("decided verdicts carry a certificate");
    certificate
        .check(&model)
        .expect("the resumed verdict's certificate must re-check");
}

/// Sessions opened without proof logging reject certified queries with a
/// clear typed error instead of asserting.
#[test]
fn sessions_without_proof_logging_reject_certified_queries() {
    let config = SocConfig::new(SocVariant::Secure)
        .with_registers(4)
        .with_cache_lines(2)
        .with_miss_latency(1)
        .with_store_latency(1);
    let model = UpecModel::new(&config, SecretScenario::NotInCache);
    let commitment = upec::full_commitment(&model);
    let mut session = IncrementalSession::with_options(&model, UpecOptions::window(0));
    let err = session
        .check_bound_certified(1, &commitment)
        .expect_err("no proof log, no certificates");
    assert!(
        matches!(err, EngineError::CertificationUnavailable),
        "{err}"
    );
}

/// Full differential sweep: every instance in the registry, at its pinned
/// window range, must produce the expected verdict *and* have every decided
/// bound's certificate accepted by the independent checkers.
#[test]
#[ignore = "full 25-instance certified sweep; run via scripts/verify.sh --full"]
fn full_registry_sweep_is_certified() {
    let mut certified = 0usize;
    for instance in scenarios::instances() {
        let result = certify_and_check(&instance, None);
        certified += result.certified_bounds();
        // Expectation-specific shape of the certified scan.
        match instance.expected {
            Expectation::Proven => assert!(
                result
                    .bounds
                    .iter()
                    .all(|b| b.summary.status == BoundStatus::Proven),
                "{}: proven instances certify every bound as a refutation",
                instance.id()
            ),
            Expectation::PAlertsOnly | Expectation::LAlert => assert!(
                result
                    .bounds
                    .iter()
                    .any(|b| matches!(b.summary.status, BoundStatus::PAlert | BoundStatus::LAlert)),
                "{}: alerting instances must certify at least one witness",
                instance.id()
            ),
        }
    }
    assert!(certified >= 25, "sweep certified only {certified} bounds");
}
