//! Measures what the solver layer buys on top of the compiled encoding:
//! CNF size and end-to-end solve time of UPEC queries with the adaptive CNF
//! simplification pipeline enabled (trial-solve gating, failed-literal
//! probing, subsumption/self-subsuming resolution, bounded variable
//! elimination, LBD-aware clause retention) versus the `no_simplify`
//! baseline, asserting that verdicts are unchanged. Both configurations run
//! on the overhauled propagation core (binary implication graph, indexed
//! VSIDS heap, clause-arena GC).
//!
//! Results are printed as a table and written to `BENCH_solver.json` so the
//! repository's bench trajectory can track solver performance over time.
//! Each strategy entry records, besides CNF size and wall time,
//! `propagations_per_second` — trail literals processed per second of
//! *query wall time*. The denominator is the whole `check_bound` call
//! (encoding and any simplification included, exactly like the
//! `solve_seconds` column), so the figure tracks end-to-end query
//! throughput; comparisons between the two strategies fold the pipeline's
//! own cost into the simplified side.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin solver_stats                 # whole registry at k=2
//! cargo run --release -p bench --bin solver_stats -- orc meltdown
//! cargo run --release -p bench --bin solver_stats -- --k 3 orc
//! cargo run --release -p bench --bin solver_stats -- --out /tmp/solver.json
//! cargo run --release -p bench --bin solver_stats -- --smoke     # CI smoke gate
//! ```
//!
//! The default window is the acceptance point k=2 for every scenario
//! (deliberately *not* clamped into each scenario's scan range: the
//! comparison needs one common bound, and scenarios whose attacks need
//! longer windows simply verify "proven = proven" at k=2).
//!
//! `--smoke` is the fast CI gate wired into `scripts/verify.sh`: it runs a
//! three-scenario subset at k=1, asserts that the default, `no_simplify`
//! and search-baseline (`sat::SearchConfig::baseline()`, the plain
//! Luby/phase-saving loop without EMA restarts, rephasing, chronological
//! backtracking or vivification) paths agree on every verdict (exit code 1
//! on mismatch), and writes no JSON — so solver-performance work can never
//! silently flip a verdict.

use bench::json::JsonObject;
use std::time::Instant;
use upec::engine::IncrementalSession;
use upec::scenarios::{self, ScenarioSpec};
use upec::UpecOptions;

/// Scenario subset exercised by `--smoke`: a P-alerting miter (the SAT
/// path, with counterexample extraction) plus two proven ones (the UNSAT
/// path over different commitments) — all cheap at k=1.
const SMOKE_IDS: [&str; 3] = ["meltdown", "orc", "secure-arch-only"];

/// One strategy's measurement.
struct Measurement {
    variables: usize,
    clauses: usize,
    solve_seconds: f64,
    verdict: &'static str,
    conflicts: u64,
    propagations_per_second: f64,
    eliminated_vars: u64,
    subsumed_clauses: u64,
    failed_literals: u64,
    restarts: u64,
    rephasings: u64,
    vivified_clauses: u64,
    shared_clause_imports: u64,
    budget_exhaustions: u64,
    cancellations: u64,
}

fn measure(spec: &ScenarioSpec, k: usize, no_simplify: bool, baseline_search: bool) -> Measurement {
    let model = spec.build_model();
    let commitment = spec.commitment_set(&model);
    let mut options = UpecOptions::window(k);
    if no_simplify {
        options = options.no_simplify();
    }
    if baseline_search {
        options = options.with_search(sat::SearchConfig::baseline());
    }
    let mut session = IncrementalSession::with_options(&model, options);
    let start = Instant::now();
    let outcome = session.check_bound(k, &commitment);
    let solve_seconds = start.elapsed().as_secs_f64();
    let encode = session.encode_stats();
    let solver = session.solver_stats();
    let simp = session.simplify_stats();
    Measurement {
        variables: encode.variables,
        clauses: encode.clauses,
        solve_seconds,
        verdict: outcome.verdict_name(),
        conflicts: solver.conflicts,
        propagations_per_second: solver.propagations as f64 / solve_seconds.max(1e-9),
        eliminated_vars: simp.eliminated_vars,
        subsumed_clauses: simp.subsumed_clauses,
        failed_literals: simp.failed_literals,
        restarts: solver.restarts,
        rephasings: solver.rephasings,
        vivified_clauses: solver.vivified_clauses,
        shared_clause_imports: solver.shared_clause_imports,
        budget_exhaustions: solver.budget_exhaustions,
        cancellations: solver.cancellations,
    }
}

fn json_entry(
    spec: &ScenarioSpec,
    k: usize,
    baseline: &Measurement,
    simplified: &Measurement,
) -> String {
    let strategy = |m: &Measurement| {
        JsonObject::new()
            .field_usize("variables", m.variables)
            .field_usize("clauses", m.clauses)
            .field_f64("solve_seconds", m.solve_seconds, 3)
            .field_str("verdict", m.verdict)
            .field_u64("conflicts", m.conflicts)
            .field_f64("propagations_per_second", m.propagations_per_second, 0)
            .field_u64("eliminated_vars", m.eliminated_vars)
            .field_u64("subsumed_clauses", m.subsumed_clauses)
            .field_u64("failed_literals", m.failed_literals)
            .field_u64("restarts", m.restarts)
            .field_u64("rephasings", m.rephasings)
            .field_u64("vivified_clauses", m.vivified_clauses)
            .field_u64("shared_clause_imports", m.shared_clause_imports)
            .field_u64("budget_exhaustions", m.budget_exhaustions)
            .field_u64("cancellations", m.cancellations)
            .finish()
    };
    let entry = JsonObject::new()
        .field_str("id", spec.id)
        .field_usize("k", k)
        .field_raw("baseline", &strategy(baseline))
        .field_raw("simplified", &strategy(simplified))
        .field_f64(
            "speedup",
            baseline.solve_seconds / simplified.solve_seconds.max(1e-9),
            2,
        )
        .finish();
    format!("    {entry}")
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut ids: Vec<String> = Vec::new();
    let mut k_override: Option<usize> = None;
    let mut out_path = "BENCH_solver.json".to_string();
    let mut smoke = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--k" => {
                let parsed = args.next().and_then(|v| v.parse().ok());
                let Some(k) = parsed else {
                    eprintln!("--k needs a numeric value");
                    std::process::exit(2);
                };
                k_override = Some(k);
            }
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                };
                out_path = path;
            }
            "--smoke" => smoke = true,
            id => ids.push(id.to_string()),
        }
    }
    if smoke && ids.is_empty() {
        ids = SMOKE_IDS.iter().map(|s| s.to_string()).collect();
    }
    if ids.is_empty() {
        ids = scenarios::all().iter().map(|s| s.id.to_string()).collect();
    }
    let k = k_override.unwrap_or(if smoke { 1 } else { 2 });

    println!(
        "{:<18} {:>2}  {:>10} {:>10} {:>9}   {:>10} {:>10} {:>9}  {:>6} {:>6}  verdict",
        "scenario", "k", "vars", "clauses", "solve", "vars'", "clauses'", "solve'", "elim", "subsd"
    );
    let mut entries = Vec::new();
    let mut verdicts_match = true;
    let mut total_baseline = 0.0f64;
    let mut total_simplified = 0.0f64;
    for id in &ids {
        let spec = scenarios::by_id(id).unwrap_or_else(|| {
            eprintln!("unknown scenario `{id}`; known ids:");
            for s in scenarios::all() {
                eprintln!("  {}", s.id);
            }
            std::process::exit(2);
        });
        let baseline = measure(&spec, k, true, false);
        let simplified = measure(&spec, k, false, false);
        if baseline.verdict != simplified.verdict {
            verdicts_match = false;
            eprintln!(
                "VERDICT MISMATCH on {}: baseline={} simplified={}",
                spec.id, baseline.verdict, simplified.verdict
            );
        }
        if smoke {
            // The search smoke gate: the all-features-on default loop (EMA
            // restarts, rephasing, chronological backtracking, vivification)
            // must agree with the plain Luby baseline loop.
            let plain_search = measure(&spec, k, false, true);
            if plain_search.verdict != simplified.verdict {
                verdicts_match = false;
                eprintln!(
                    "SEARCH VERDICT MISMATCH on {}: baseline-search={} modern-search={}",
                    spec.id, plain_search.verdict, simplified.verdict
                );
            }
        }
        total_baseline += baseline.solve_seconds;
        total_simplified += simplified.solve_seconds;
        println!(
            "{:<18} {:>2}  {:>10} {:>10} {:>8.2}s   {:>10} {:>10} {:>8.2}s  {:>6} {:>6}  {} / {}",
            spec.id,
            k,
            baseline.variables,
            baseline.clauses,
            baseline.solve_seconds,
            simplified.variables,
            simplified.clauses,
            simplified.solve_seconds,
            simplified.eliminated_vars,
            simplified.subsumed_clauses,
            baseline.verdict,
            simplified.verdict,
        );
        entries.push(json_entry(&spec, k, &baseline, &simplified));
    }

    let reduction = if total_baseline > 0.0 {
        100.0 * (total_baseline - total_simplified) / total_baseline
    } else {
        0.0
    };
    println!(
        "\naggregate solve time: baseline {total_baseline:.2}s, simplified {total_simplified:.2}s \
         ({reduction:.1}% reduction)"
    );
    if smoke {
        // The smoke gate is a verdict check, not a measurement: never
        // overwrite the tracked bench JSON from here.
        if verdicts_match {
            println!(
                "smoke: all verdicts agree across the default, no_simplify and \
                 baseline-search paths"
            );
        } else {
            std::process::exit(1);
        }
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"solver_stats\",\n  \"unit\": \"CNF variables+clauses, seconds, \
         propagations/second\",\n  \"aggregate\": {{\"baseline_seconds\": {total_baseline:.3}, \
         \"simplified_seconds\": {total_simplified:.3}, \"solve_time_reduction_percent\": \
         {reduction:.1}}},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");
    if !verdicts_match {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Measurement {
        Measurement {
            variables: 100,
            clauses: 400,
            solve_seconds: 1.25,
            verdict: "proven",
            conflicts: 42,
            propagations_per_second: 1e6,
            eliminated_vars: 7,
            subsumed_clauses: 3,
            failed_literals: 1,
            restarts: 5,
            rephasings: 2,
            vivified_clauses: 9,
            shared_clause_imports: 11,
            budget_exhaustions: 4,
            cancellations: 1,
        }
    }

    /// Schema regression: every `BENCH_solver.json` strategy entry carries
    /// the search-loop counters (`restarts`, `rephasings`,
    /// `vivified_clauses`, `shared_clause_imports`) and still parses through
    /// the bench JSON validator. Downstream trajectory tooling keys on these
    /// field names; renaming or dropping one must fail here first.
    #[test]
    fn entry_schema_carries_search_loop_counters() {
        let spec = scenarios::by_id("orc").expect("registered scenario");
        let entry = json_entry(&spec, 2, &sample(), &sample());
        bench::json::validate(entry.trim()).expect("entry is valid JSON");
        for field in [
            "\"variables\": ",
            "\"conflicts\": ",
            "\"restarts\": 5",
            "\"rephasings\": 2",
            "\"vivified_clauses\": 9",
            "\"shared_clause_imports\": 11",
            "\"budget_exhaustions\": 4",
            "\"cancellations\": 1",
            "\"speedup\": ",
        ] {
            assert!(entry.contains(field), "entry lost field {field}: {entry}");
        }
    }

    /// The field order of the strategy object is part of the tracked-diff
    /// contract: new counters append after the simplifier counters.
    #[test]
    fn search_counters_append_after_simplifier_counters() {
        let entry = json_entry(
            &scenarios::by_id("orc").expect("registered scenario"),
            2,
            &sample(),
            &sample(),
        );
        let failed = entry.find("\"failed_literals\"").expect("present");
        let restarts = entry.find("\"restarts\"").expect("present");
        let imports = entry.find("\"shared_clause_imports\"").expect("present");
        let exhaustions = entry.find("\"budget_exhaustions\"").expect("present");
        let cancellations = entry.find("\"cancellations\"").expect("present");
        assert!(
            failed < restarts
                && restarts < imports
                && imports < exhaustions
                && exhaustions < cancellations,
            "stable field order violated: {entry}"
        );
    }
}
