//! The attack-scenario registry: one named table of every workload the
//! reproduction can check, shared by the engine, the bench binaries and the
//! examples.
//!
//! Each [`ScenarioSpec`] bundles a design variant, a secret placement, a
//! proof-obligation shape and the window range to scan, together with the
//! paper figure/table it reproduces and the expected verdict. Everything
//! that used to duplicate this setup — bench binaries, examples, tests —
//! drives off [`registry`] (or [`by_id`]) instead.
//!
//! # Examples
//!
//! ```
//! use upec::scenarios;
//!
//! let orc = scenarios::by_id("orc").expect("registered");
//! assert_eq!(orc.variant.name(), "orc");
//! let model = orc.build_model();
//! assert!(model.pairs().len() > 10);
//! ```

use crate::{SecretScenario, StateClass, UpecModel};
use soc::{Instruction, Program, SocConfig, SocVariant};
use std::collections::BTreeSet;

/// Shape of the proof obligation (which register pairs must stay equal at
/// `t+k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitmentKind {
    /// Every architectural and microarchitectural register pair (the
    /// methodology's first iteration; violations start as P-alerts).
    Full,
    /// Architectural registers only: any violation is an L-alert, i.e. a
    /// proven covert channel.
    Architectural,
    /// The data cache's tag/valid state only: detects secret-dependent cache
    /// footprints (the paper's "well-known starting point for side channel
    /// attacks").
    CacheState,
}

/// The verdict a scenario is expected to produce (used by tests and the CI
/// regression gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The property is proven at every window in the scan range.
    Proven,
    /// P-alerts occur but no L-alert: secret data propagates into
    /// program-invisible state only.
    PAlertsOnly,
    /// An L-alert occurs within the scan range: the design has a covert
    /// channel (or a direct leak).
    LAlert,
}

/// A named, self-contained attack scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Stable machine-readable identifier (used by `by_id`, bench CLIs, CI).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Paper figure/table/section this scenario reproduces.
    pub paper_ref: &'static str,
    /// Design variant under verification.
    pub variant: SocVariant,
    /// Secret placement at the symbolic starting time point.
    pub secret: SecretScenario,
    /// Proof-obligation shape.
    pub commitment: CommitmentKind,
    /// First window length worth checking (skipping windows that are too
    /// short for the attack to complete keeps scans cheap; cf. the PMP
    /// scenario, whose shortest leak needs seven cycles).
    pub start_window: usize,
    /// Last window length of the scan range.
    pub max_window: usize,
    /// Expected verdict over the scan range.
    pub expected: Expectation,
    /// One-line description for reports and the README table.
    pub description: &'static str,
}

impl ScenarioSpec {
    /// The reduced SoC geometry used for the formal proofs (small enough for
    /// the from-scratch SAT solver while preserving every microarchitectural
    /// mechanism the paper's evaluation depends on).
    pub fn formal_config(&self) -> SocConfig {
        SocConfig::new(self.variant)
            .with_registers(4)
            .with_cache_lines(2)
            .with_miss_latency(1)
            .with_store_latency(1)
    }

    /// The full-size geometry used for the simulation-based figures.
    pub fn sim_config(&self) -> SocConfig {
        SocConfig::new(self.variant)
    }

    /// Builds the two-instance UPEC miter for this scenario (formal
    /// geometry).
    pub fn build_model(&self) -> UpecModel {
        UpecModel::new(&self.formal_config(), self.secret)
    }

    /// The commitment set for this scenario's obligation shape.
    pub fn commitment_set(&self, model: &UpecModel) -> BTreeSet<String> {
        match self.commitment {
            CommitmentKind::Full => crate::full_commitment(model),
            CommitmentKind::Architectural => model
                .pairs_of_class(StateClass::Architectural)
                .map(|p| p.name.clone())
                .collect(),
            CommitmentKind::CacheState => model
                .pairs()
                .iter()
                .map(|p| p.name.clone())
                .filter(|n| n.starts_with("dcache.tag") || n.starts_with("dcache.valid"))
                .collect(),
        }
    }

    /// The attacker program demonstrating this scenario on the simulator
    /// (`None` for purely formal scenarios).
    pub fn demo_program(&self, config: &SocConfig) -> Option<Program> {
        match self.id {
            "orc" => Some(orc_attack_program(config, 3)),
            "meltdown" | "meltdown-timing" | "cache-footprint" => Some(transient_program(config)),
            _ => None,
        }
    }
}

/// One iteration of the Orc attack (paper Fig. 2) for a given guess of the
/// secret's cache index.
pub fn orc_attack_program(config: &SocConfig, guess: u32) -> Program {
    let accessible = 0x40u32;
    let mut p = Program::new(0);
    p.push(Instruction::Addi {
        rd: 1,
        rs1: 0,
        imm: config.secret_addr as i32,
    });
    p.push(Instruction::Addi {
        rd: 2,
        rs1: 0,
        imm: accessible as i32,
    });
    p.push(Instruction::Addi {
        rd: 2,
        rs1: 2,
        imm: (guess * 4) as i32,
    });
    p.push(Instruction::Sw {
        rs1: 2,
        rs2: 3,
        offset: 0,
    });
    p.push(Instruction::Lw {
        rd: 4,
        rs1: 1,
        offset: 0,
    });
    p.push(Instruction::Lw {
        rd: 5,
        rs1: 4,
        offset: 0,
    });
    p.push_nops(2);
    p
}

/// The Meltdown-style transient sequence used for the Fig. 1 footprint
/// experiment.
pub fn transient_program(config: &SocConfig) -> Program {
    let mut p = Program::new(0);
    p.push(Instruction::Addi {
        rd: 1,
        rs1: 0,
        imm: config.secret_addr as i32,
    });
    p.push(Instruction::Lw {
        rd: 4,
        rs1: 1,
        offset: 0,
    });
    p.push(Instruction::Lw {
        rd: 5,
        rs1: 4,
        offset: 0,
    });
    p.push_nops(2);
    p
}

/// The full scenario registry, in presentation order.
pub fn registry() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            id: "secure-uncached",
            title: "Secure design, secret only in main memory",
            paper_ref: "Table I, column 'D not in cache'",
            variant: SocVariant::Secure,
            secret: SecretScenario::NotInCache,
            commitment: CommitmentKind::Full,
            start_window: 1,
            max_window: 2,
            expected: Expectation::Proven,
            description: "Baseline proof: no state deviation of any kind on the original design",
        },
        ScenarioSpec {
            id: "secure-cached",
            title: "Secure design, secret cached",
            paper_ref: "Table I, column 'D in cache'",
            variant: SocVariant::Secure,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::Full,
            start_window: 1,
            max_window: 2,
            expected: Expectation::PAlertsOnly,
            description: "P-alerts appear (cache hit data enters the pipeline) but close inductively",
        },
        ScenarioSpec {
            id: "secure-arch-only",
            title: "Secure design, architectural obligation only",
            paper_ref: "Sec. V control experiment",
            variant: SocVariant::Secure,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::Architectural,
            start_window: 1,
            max_window: 2,
            expected: Expectation::Proven,
            description: "Control: the original design shows no L-alert at small windows",
        },
        ScenarioSpec {
            id: "meltdown",
            title: "Meltdown-style uncancelled refill",
            paper_ref: "Sec. VII-B, Table II row 2",
            variant: SocVariant::MeltdownStyle,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::Full,
            start_window: 1,
            max_window: 2,
            expected: Expectation::PAlertsOnly,
            description: "Transient refill survives the flush; secret marks microarchitectural state",
        },
        ScenarioSpec {
            id: "meltdown-timing",
            title: "Meltdown-style refill as a timing channel",
            paper_ref: "new variant (beyond the paper's Table II)",
            variant: SocVariant::MeltdownStyle,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::Architectural,
            start_window: 3,
            max_window: 3,
            expected: Expectation::LAlert,
            description: "The uncancelled refill also skews architectural timing: an L-alert at k=3",
        },
        ScenarioSpec {
            id: "cache-footprint",
            title: "Secret-dependent cache footprint",
            paper_ref: "Fig. 1",
            variant: SocVariant::MeltdownStyle,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::CacheState,
            start_window: 1,
            max_window: 5,
            expected: Expectation::PAlertsOnly,
            description: "The dcache tag/valid state depends on the secret after a transient access (first visible at k=5)",
        },
        ScenarioSpec {
            id: "orc",
            title: "Orc replay-buffer bypass",
            paper_ref: "Fig. 2, Table II row 1",
            variant: SocVariant::Orc,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::Architectural,
            start_window: 1,
            max_window: 5,
            expected: Expectation::LAlert,
            description: "RAW-hazard stall timing leaks the secret's cache index: a true covert channel",
        },
        ScenarioSpec {
            id: "pmp-lock",
            title: "PMP TOR-lock ISA violation",
            paper_ref: "Sec. VII-C",
            variant: SocVariant::PmpLockBug,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::Architectural,
            start_window: 7,
            max_window: 9,
            expected: Expectation::LAlert,
            description: "Privileged code can move a locked region's base: the secret leaks directly",
        },
    ]
}

/// The full scenario registry, in presentation order — an alias of
/// [`registry`] whose name matches the docs-generation convention
/// (`scenarios::all()`).
pub fn all() -> Vec<ScenarioSpec> {
    registry()
}

/// Looks up a scenario by its stable identifier.
pub fn by_id(id: &str) -> Option<ScenarioSpec> {
    registry().into_iter().find(|s| s.id == id)
}

/// Renders the registry as the markdown table embedded in the repository
/// README. A test asserts the README contains this exact rendering, so the
/// documentation cannot drift from the registry.
pub fn readme_table() -> String {
    let expected = |e: Expectation| match e {
        Expectation::Proven => "proven",
        Expectation::PAlertsOnly => "P-alerts only",
        Expectation::LAlert => "L-alert",
    };
    let mut out = String::from(
        "| id | paper reference | windows | expected verdict | description |\n\
         |---|---|---|---|---|\n",
    );
    for s in all() {
        out.push_str(&format!(
            "| `{}` | {} | {}–{} | {} | {} |\n",
            s.id,
            s.paper_ref,
            s.start_window,
            s.max_window,
            expected(s.expected),
            s.description,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The README's scenario table is generated from the registry; if this
    /// fails, re-run `scenarios::readme_table()` and paste the output into
    /// the README's "Scenario registry" section.
    #[test]
    fn readme_scenario_table_matches_registry() {
        let readme = include_str!("../../../README.md");
        let table = readme_table();
        assert!(
            readme.contains(&table),
            "README scenario table is out of date; regenerate it with \
             upec::scenarios::readme_table():\n{table}"
        );
    }

    #[test]
    fn all_is_an_alias_of_registry() {
        assert_eq!(all(), registry());
    }

    #[test]
    fn ids_are_unique_and_lookup_works() {
        let specs = registry();
        let mut ids: Vec<_> = specs.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), specs.len(), "duplicate scenario ids");
        for spec in &specs {
            assert_eq!(by_id(spec.id).as_ref().map(|s| s.id), Some(spec.id));
        }
        assert!(by_id("nonexistent").is_none());
    }

    #[test]
    fn every_scenario_builds_a_model_with_a_nonempty_commitment() {
        for spec in registry() {
            let model = spec.build_model();
            let commitment = spec.commitment_set(&model);
            assert!(!commitment.is_empty(), "{}: empty commitment", spec.id);
            assert!(
                spec.start_window >= 1 && spec.start_window <= spec.max_window,
                "{}",
                spec.id
            );
        }
    }

    #[test]
    fn demo_programs_have_the_papers_shape() {
        let orc = by_id("orc").unwrap();
        let config = orc.sim_config();
        let p = orc.demo_program(&config).expect("orc ships a demo");
        assert_eq!(p.len(), 8);
        assert!(p.listing().contains("lw x5, 0(x4)"));
        let meltdown = by_id("meltdown").unwrap();
        let t = meltdown.demo_program(&meltdown.sim_config()).expect("demo");
        assert!(t.listing().contains("lw x4, 0(x1)"));
        assert!(by_id("secure-uncached")
            .unwrap()
            .demo_program(&config)
            .is_none());
    }
}
