//! Property-style validation of the incremental-safe simplification
//! pipeline on random small CNFs, seeded with [`rtl::SplitMix64`].
//!
//! For every random formula and every random frozen subset:
//!
//! * simplification preserves satisfiability (checked against an
//!   unsimplified solver on the same clauses),
//! * models returned after simplification satisfy the *original* clause set
//!   — this exercises the model-extension stack over eliminated variables,
//! * frozen variables are never eliminated,
//! * clauses added *after* simplification (over frozen variables only, as
//!   the contract requires) still produce answers that agree with a
//!   never-simplified solver.

use rtl::SplitMix64;
use sat::{Lit, SatResult, SimplifyConfig, Solver, Var};

fn random_clause(rng: &mut SplitMix64, num_vars: usize) -> Vec<Lit> {
    let len = rng.gen_range(1..=3) as usize;
    (0..len)
        .map(|_| {
            let v = rng.gen_u64_below(num_vars as u64) as usize;
            Lit::new(Var::from_index(v), rng.gen_bool())
        })
        .collect()
}

fn model_satisfies(model: &sat::Model, clauses: &[Vec<Lit>]) -> bool {
    clauses
        .iter()
        .all(|c| c.iter().any(|&l| model.lit_is_true(l)))
}

/// Simplification with a random frozen subset is equisatisfiable with the
/// original formula, and SAT models extend correctly over eliminated
/// variables.
#[test]
fn simplification_preserves_satisfiability_on_random_cnfs() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for case in 0..96 {
        let num_vars = rng.gen_range(4..14) as usize;
        let num_clauses = rng.gen_range(2..40) as usize;
        let clauses: Vec<Vec<Lit>> = (0..num_clauses)
            .map(|_| random_clause(&mut rng, num_vars))
            .collect();
        let frozen: Vec<usize> = (0..num_vars).filter(|_| rng.gen_bool()).collect();

        let mut plain = Solver::new();
        plain.reserve_vars(num_vars);
        let mut simplified = Solver::new();
        simplified.reserve_vars(num_vars);
        for clause in &clauses {
            plain.add_clause(clause.iter().copied());
            simplified.add_clause(clause.iter().copied());
        }
        for &vi in &frozen {
            simplified.freeze_var(Var::from_index(vi));
        }
        let simp_ok = simplified.simplify();

        for &vi in &frozen {
            assert!(
                !simplified.is_eliminated(Var::from_index(vi)),
                "case {case}: frozen v{vi} was eliminated"
            );
        }

        let expected = plain.solve();
        if !simp_ok {
            assert!(
                expected.is_unsat(),
                "case {case}: simplify claimed unsat on a satisfiable formula"
            );
            continue;
        }
        match (simplified.solve(), &expected) {
            (SatResult::Sat(model), SatResult::Sat(_)) => {
                assert!(
                    model_satisfies(&model, &clauses),
                    "case {case}: extended model violates an original clause"
                );
            }
            (SatResult::Unsat, SatResult::Unsat) => {}
            (got, want) => {
                panic!("case {case}: simplified={got:?} plain={want:?}")
            }
        }
    }
}

/// The pipeline stays sound when clauses keep arriving between simplify
/// calls, as in an incremental BMC session: every new clause only mentions
/// frozen variables, and verdicts must track a never-simplified twin.
#[test]
fn interleaved_simplify_and_clause_addition_agree_with_plain_solver() {
    let mut rng = SplitMix64::new(0xBEEF);
    for case in 0..32 {
        let num_vars = rng.gen_range(6..12) as usize;
        let frozen: Vec<usize> = (0..num_vars).collect(); // everything visible
        let mut plain = Solver::new();
        plain.reserve_vars(num_vars);
        let mut simplified = Solver::new();
        simplified.reserve_vars(num_vars);
        for &vi in &frozen {
            simplified.freeze_var(Var::from_index(vi));
        }

        let mut all_clauses: Vec<Vec<Lit>> = Vec::new();
        for round in 0..4 {
            let batch = rng.gen_range(1..8) as usize;
            for _ in 0..batch {
                let clause = random_clause(&mut rng, num_vars);
                plain.add_clause(clause.iter().copied());
                simplified.add_clause(clause.iter().copied());
                all_clauses.push(clause);
            }
            let simp_ok = simplified.simplify();
            let plain_result = plain.solve();
            if !simp_ok {
                assert!(
                    plain_result.is_unsat(),
                    "case {case} round {round}: premature unsat from simplify"
                );
                break;
            }
            match (simplified.solve(), plain_result) {
                (SatResult::Sat(model), SatResult::Sat(_)) => {
                    assert!(
                        model_satisfies(&model, &all_clauses),
                        "case {case} round {round}: model violates original clauses"
                    );
                }
                (SatResult::Unsat, SatResult::Unsat) => break,
                (got, want) => panic!("case {case} round {round}: {got:?} vs {want:?}"),
            }
        }
    }
}

/// Assumption solving interacts correctly with a simplified database: the
/// frozen assumption variables survive, and answers agree with a plain
/// solver under the same assumptions.
#[test]
fn assumptions_over_frozen_variables_agree_after_simplify() {
    let mut rng = SplitMix64::new(0xFEED);
    for case in 0..48 {
        let num_vars = rng.gen_range(5..12) as usize;
        let num_clauses = rng.gen_range(4..30) as usize;
        let clauses: Vec<Vec<Lit>> = (0..num_clauses)
            .map(|_| random_clause(&mut rng, num_vars))
            .collect();
        // Two assumption literals over distinct variables, always frozen.
        let a = Lit::new(Var::from_index(0), rng.gen_bool());
        let b = Lit::new(Var::from_index(1), rng.gen_bool());

        let mut plain = Solver::new();
        plain.reserve_vars(num_vars);
        let mut simplified = Solver::new();
        simplified.reserve_vars(num_vars);
        simplified.freeze(a);
        simplified.freeze(b);
        for clause in &clauses {
            plain.add_clause(clause.iter().copied());
            simplified.add_clause(clause.iter().copied());
        }
        let config = SimplifyConfig::default();
        if !simplified.simplify_with(&config) {
            assert!(plain.solve().is_unsat(), "case {case}");
            continue;
        }
        let got = simplified.solve_with_assumptions(&[a, b]);
        let want = plain.solve_with_assumptions(&[a, b]);
        assert_eq!(
            got.is_sat(),
            want.is_sat(),
            "case {case}: assumption verdicts diverge"
        );
        if let SatResult::Sat(model) = got {
            assert!(model.lit_is_true(a) && model.lit_is_true(b), "case {case}");
            assert!(model_satisfies(&model, &clauses), "case {case}");
        }
    }
}
