//! MiniRV instruction set: RV32I-subset encodings, an assembler and a
//! disassembler.
//!
//! The SoC implements the subset of RV32I (plus a few privileged
//! instructions) needed by the attack programs of the UPEC paper: loads,
//! stores, ALU operations, branches, `jal`, CSR accesses and `mret`. The
//! standard RISC-V encodings are used so that programs read exactly like the
//! paper's Fig. 2.

use std::fmt;

/// Register index (`x0`..`x31`). `x0` is hard-wired to zero.
pub type Reg = u32;

/// CSR addresses understood by the core.
pub mod csr {
    /// Machine trap vector.
    pub const MTVEC: u32 = 0x305;
    /// Machine exception program counter.
    pub const MEPC: u32 = 0x341;
    /// Machine trap cause.
    pub const MCAUSE: u32 = 0x342;
    /// PMP configuration register 0 (packs the cfg bytes of entries 0 and 1).
    pub const PMPCFG0: u32 = 0x3a0;
    /// PMP address register 0 (top of region 0 in TOR mode).
    pub const PMPADDR0: u32 = 0x3b0;
    /// PMP address register 1 (top of region 1 in TOR mode).
    pub const PMPADDR1: u32 = 0x3b1;
    /// User-readable cycle counter.
    pub const CYCLE: u32 = 0xc00;
}

/// Trap cause codes (subset of the RISC-V privileged specification).
pub mod cause {
    /// Load access fault.
    pub const LOAD_ACCESS_FAULT: u32 = 5;
    /// Store/AMO access fault.
    pub const STORE_ACCESS_FAULT: u32 = 7;
    /// Illegal instruction.
    pub const ILLEGAL_INSTRUCTION: u32 = 2;
}

/// A decoded MiniRV instruction.
///
/// Field meanings follow the RISC-V convention: `rd` is the destination
/// register, `rs1`/`rs2` the sources, `imm`/`offset` the sign-extended
/// immediate, and `csr` a control-and-status-register address.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// `lui rd, imm` — load upper immediate (`imm` is the final 32-bit value
    /// with the low 12 bits zero).
    Lui { rd: Reg, imm: u32 },
    /// `jal rd, offset` — jump and link.
    Jal { rd: Reg, offset: i32 },
    /// `beq rs1, rs2, offset`.
    Beq { rs1: Reg, rs2: Reg, offset: i32 },
    /// `bne rs1, rs2, offset`.
    Bne { rs1: Reg, rs2: Reg, offset: i32 },
    /// `lw rd, offset(rs1)`.
    Lw { rd: Reg, rs1: Reg, offset: i32 },
    /// `sw rs2, offset(rs1)`.
    Sw { rs1: Reg, rs2: Reg, offset: i32 },
    /// `addi rd, rs1, imm`.
    Addi { rd: Reg, rs1: Reg, imm: i32 },
    /// `andi rd, rs1, imm`.
    Andi { rd: Reg, rs1: Reg, imm: i32 },
    /// `ori rd, rs1, imm`.
    Ori { rd: Reg, rs1: Reg, imm: i32 },
    /// `xori rd, rs1, imm`.
    Xori { rd: Reg, rs1: Reg, imm: i32 },
    /// `add rd, rs1, rs2`.
    Add { rd: Reg, rs1: Reg, rs2: Reg },
    /// `sub rd, rs1, rs2`.
    Sub { rd: Reg, rs1: Reg, rs2: Reg },
    /// `and rd, rs1, rs2`.
    And { rd: Reg, rs1: Reg, rs2: Reg },
    /// `or rd, rs1, rs2`.
    Or { rd: Reg, rs1: Reg, rs2: Reg },
    /// `xor rd, rs1, rs2`.
    Xor { rd: Reg, rs1: Reg, rs2: Reg },
    /// `sltu rd, rs1, rs2`.
    Sltu { rd: Reg, rs1: Reg, rs2: Reg },
    /// `csrrw rd, csr, rs1` — atomic CSR read/write.
    Csrrw { rd: Reg, csr: u32, rs1: Reg },
    /// `csrrs rd, csr, rs1` — atomic CSR read/set (with `rs1 = x0` a plain
    /// CSR read).
    Csrrs { rd: Reg, csr: u32, rs1: Reg },
    /// `mret` — return from a machine-mode trap.
    Mret,
    /// Any undecodable word.
    Illegal(u32),
}

impl Instruction {
    /// Canonical no-operation (`addi x0, x0, 0`).
    pub fn nop() -> Self {
        Instruction::Addi {
            rd: 0,
            rs1: 0,
            imm: 0,
        }
    }

    /// Encodes the instruction into its 32-bit RV32I representation.
    pub fn encode(&self) -> u32 {
        use Instruction::*;
        fn r(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
            (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
        }
        fn i(imm: i32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
            (((imm as u32) & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
        }
        fn s(imm: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
            let imm = imm as u32;
            ((imm >> 5 & 0x7f) << 25)
                | (rs2 << 20)
                | (rs1 << 15)
                | (funct3 << 12)
                | ((imm & 0x1f) << 7)
                | opcode
        }
        fn b(offset: i32, rs2: u32, rs1: u32, funct3: u32) -> u32 {
            let o = offset as u32;
            ((o >> 12 & 1) << 31)
                | ((o >> 5 & 0x3f) << 25)
                | (rs2 << 20)
                | (rs1 << 15)
                | (funct3 << 12)
                | ((o >> 1 & 0xf) << 8)
                | ((o >> 11 & 1) << 7)
                | 0b1100011
        }
        match *self {
            Lui { rd, imm } => (imm & 0xffff_f000) | (rd << 7) | 0b0110111,
            Jal { rd, offset } => {
                let o = offset as u32;
                ((o >> 20 & 1) << 31)
                    | ((o >> 1 & 0x3ff) << 21)
                    | ((o >> 11 & 1) << 20)
                    | ((o >> 12 & 0xff) << 12)
                    | (rd << 7)
                    | 0b1101111
            }
            Beq { rs1, rs2, offset } => b(offset, rs2, rs1, 0b000),
            Bne { rs1, rs2, offset } => b(offset, rs2, rs1, 0b001),
            Lw { rd, rs1, offset } => i(offset, rs1, 0b010, rd, 0b0000011),
            Sw { rs1, rs2, offset } => s(offset, rs2, rs1, 0b010, 0b0100011),
            Addi { rd, rs1, imm } => i(imm, rs1, 0b000, rd, 0b0010011),
            Andi { rd, rs1, imm } => i(imm, rs1, 0b111, rd, 0b0010011),
            Ori { rd, rs1, imm } => i(imm, rs1, 0b110, rd, 0b0010011),
            Xori { rd, rs1, imm } => i(imm, rs1, 0b100, rd, 0b0010011),
            Add { rd, rs1, rs2 } => r(0, rs2, rs1, 0b000, rd, 0b0110011),
            Sub { rd, rs1, rs2 } => r(0b0100000, rs2, rs1, 0b000, rd, 0b0110011),
            And { rd, rs1, rs2 } => r(0, rs2, rs1, 0b111, rd, 0b0110011),
            Or { rd, rs1, rs2 } => r(0, rs2, rs1, 0b110, rd, 0b0110011),
            Xor { rd, rs1, rs2 } => r(0, rs2, rs1, 0b100, rd, 0b0110011),
            Sltu { rd, rs1, rs2 } => r(0, rs2, rs1, 0b011, rd, 0b0110011),
            Csrrw { rd, csr, rs1 } => {
                (csr << 20) | (rs1 << 15) | (0b001 << 12) | (rd << 7) | 0b1110011
            }
            Csrrs { rd, csr, rs1 } => {
                (csr << 20) | (rs1 << 15) | (0b010 << 12) | (rd << 7) | 0b1110011
            }
            Mret => 0x3020_0073,
            Illegal(word) => word,
        }
    }

    /// Decodes a 32-bit word into an instruction.
    pub fn decode(word: u32) -> Self {
        use Instruction::*;
        let opcode = word & 0x7f;
        let rd = (word >> 7) & 0x1f;
        let funct3 = (word >> 12) & 0x7;
        let rs1 = (word >> 15) & 0x1f;
        let rs2 = (word >> 20) & 0x1f;
        let funct7 = word >> 25;
        let imm_i = (word as i32) >> 20;
        let imm_s = (((word >> 25) << 5 | rd) as i32) << 20 >> 20;
        let imm_b = {
            let imm = ((word >> 31) & 1) << 12
                | ((word >> 7) & 1) << 11
                | ((word >> 25) & 0x3f) << 5
                | ((word >> 8) & 0xf) << 1;
            (imm as i32) << 19 >> 19
        };
        let imm_j = {
            let imm = ((word >> 31) & 1) << 20
                | ((word >> 12) & 0xff) << 12
                | ((word >> 20) & 1) << 11
                | ((word >> 21) & 0x3ff) << 1;
            (imm as i32) << 11 >> 11
        };
        match opcode {
            0b0110111 => Lui {
                rd,
                imm: word & 0xffff_f000,
            },
            0b1101111 => Jal { rd, offset: imm_j },
            0b1100011 => match funct3 {
                0b000 => Beq {
                    rs1,
                    rs2,
                    offset: imm_b,
                },
                0b001 => Bne {
                    rs1,
                    rs2,
                    offset: imm_b,
                },
                _ => Illegal(word),
            },
            0b0000011 if funct3 == 0b010 => Lw {
                rd,
                rs1,
                offset: imm_i,
            },
            0b0100011 if funct3 == 0b010 => Sw {
                rs1,
                rs2,
                offset: imm_s,
            },
            0b0010011 => match funct3 {
                0b000 => Addi {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                0b111 => Andi {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                0b110 => Ori {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                0b100 => Xori {
                    rd,
                    rs1,
                    imm: imm_i,
                },
                _ => Illegal(word),
            },
            0b0110011 => match (funct7, funct3) {
                (0, 0b000) => Add { rd, rs1, rs2 },
                (0b0100000, 0b000) => Sub { rd, rs1, rs2 },
                (0, 0b111) => And { rd, rs1, rs2 },
                (0, 0b110) => Or { rd, rs1, rs2 },
                (0, 0b100) => Xor { rd, rs1, rs2 },
                (0, 0b011) => Sltu { rd, rs1, rs2 },
                _ => Illegal(word),
            },
            0b1110011 => {
                if word == 0x3020_0073 {
                    Mret
                } else {
                    match funct3 {
                        0b001 => Csrrw {
                            rd,
                            csr: word >> 20,
                            rs1,
                        },
                        0b010 => Csrrs {
                            rd,
                            csr: word >> 20,
                            rs1,
                        },
                        _ => Illegal(word),
                    }
                }
            }
            _ => Illegal(word),
        }
    }

    /// Destination register written by the instruction, if any.
    pub fn rd(&self) -> Option<Reg> {
        use Instruction::*;
        match *self {
            Lui { rd, .. }
            | Jal { rd, .. }
            | Lw { rd, .. }
            | Addi { rd, .. }
            | Andi { rd, .. }
            | Ori { rd, .. }
            | Xori { rd, .. }
            | Add { rd, .. }
            | Sub { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Sltu { rd, .. }
            | Csrrw { rd, .. }
            | Csrrs { rd, .. } => (rd != 0).then_some(rd),
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match *self {
            Lui { rd, imm } => write!(f, "lui x{rd}, {:#x}", imm >> 12),
            Jal { rd, offset } => write!(f, "jal x{rd}, {offset}"),
            Beq { rs1, rs2, offset } => write!(f, "beq x{rs1}, x{rs2}, {offset}"),
            Bne { rs1, rs2, offset } => write!(f, "bne x{rs1}, x{rs2}, {offset}"),
            Lw { rd, rs1, offset } => write!(f, "lw x{rd}, {offset}(x{rs1})"),
            Sw { rs1, rs2, offset } => write!(f, "sw x{rs2}, {offset}(x{rs1})"),
            Addi { rd, rs1, imm } => write!(f, "addi x{rd}, x{rs1}, {imm}"),
            Andi { rd, rs1, imm } => write!(f, "andi x{rd}, x{rs1}, {imm}"),
            Ori { rd, rs1, imm } => write!(f, "ori x{rd}, x{rs1}, {imm}"),
            Xori { rd, rs1, imm } => write!(f, "xori x{rd}, x{rs1}, {imm}"),
            Add { rd, rs1, rs2 } => write!(f, "add x{rd}, x{rs1}, x{rs2}"),
            Sub { rd, rs1, rs2 } => write!(f, "sub x{rd}, x{rs1}, x{rs2}"),
            And { rd, rs1, rs2 } => write!(f, "and x{rd}, x{rs1}, x{rs2}"),
            Or { rd, rs1, rs2 } => write!(f, "or x{rd}, x{rs1}, x{rs2}"),
            Xor { rd, rs1, rs2 } => write!(f, "xor x{rd}, x{rs1}, x{rs2}"),
            Sltu { rd, rs1, rs2 } => write!(f, "sltu x{rd}, x{rs1}, x{rs2}"),
            Csrrw { rd, csr, rs1 } => write!(f, "csrrw x{rd}, {csr:#x}, x{rs1}"),
            Csrrs { rd, csr, rs1 } => write!(f, "csrrs x{rd}, {csr:#x}, x{rs1}"),
            Mret => write!(f, "mret"),
            Illegal(w) => write!(f, ".word {w:#010x}"),
        }
    }
}

/// An assembled program: a base address plus a sequence of instructions.
///
/// # Examples
///
/// ```
/// use soc::{Program, Instruction};
///
/// let mut p = Program::new(0x0);
/// p.push(Instruction::Addi { rd: 1, rs1: 0, imm: 5 });
/// p.push(Instruction::Addi { rd: 2, rs1: 1, imm: 3 });
/// assert_eq!(p.len(), 2);
/// assert!(p.fetch(0x4).is_some());
/// assert!(p.fetch(0x40).is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    base: u32,
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program starting at `base` (word aligned).
    pub fn new(base: u32) -> Self {
        assert_eq!(base % 4, 0, "program base must be word aligned");
        Self {
            base,
            instructions: Vec::new(),
        }
    }

    /// Base address of the first instruction.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Appends an instruction and returns its address.
    pub fn push(&mut self, instruction: Instruction) -> u32 {
        let addr = self.base + 4 * self.instructions.len() as u32;
        self.instructions.push(instruction);
        addr
    }

    /// Appends `count` no-operations.
    pub fn push_nops(&mut self, count: usize) {
        for _ in 0..count {
            self.push(Instruction::nop());
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction stored at a byte address, if the address falls inside
    /// the program.
    pub fn fetch(&self, addr: u32) -> Option<Instruction> {
        if addr < self.base || !(addr - self.base).is_multiple_of(4) {
            return None;
        }
        self.instructions
            .get(((addr - self.base) / 4) as usize)
            .copied()
    }

    /// The encoded instruction word at a byte address (`nop` outside the
    /// program so that straight-line fetch never sees an illegal word).
    pub fn fetch_word(&self, addr: u32) -> u32 {
        self.fetch(addr).unwrap_or_else(Instruction::nop).encode()
    }

    /// Iterates over `(address, instruction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Instruction)> + '_ {
        self.instructions
            .iter()
            .enumerate()
            .map(move |(i, &ins)| (self.base + 4 * i as u32, ins))
    }

    /// Renders the program as an assembly listing.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (addr, ins) in self.iter() {
            let _ = writeln!(out, "{addr:#06x}:  {ins}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ins: Instruction) {
        let encoded = ins.encode();
        let decoded = Instruction::decode(encoded);
        assert_eq!(decoded, ins, "roundtrip failed for {ins} ({encoded:#010x})");
    }

    #[test]
    fn encode_decode_roundtrip_for_every_instruction_kind() {
        roundtrip(Instruction::Lui {
            rd: 3,
            imm: 0xabcd_e000,
        });
        roundtrip(Instruction::Jal { rd: 1, offset: -8 });
        roundtrip(Instruction::Jal {
            rd: 0,
            offset: 2044,
        });
        roundtrip(Instruction::Beq {
            rs1: 1,
            rs2: 2,
            offset: 16,
        });
        roundtrip(Instruction::Bne {
            rs1: 3,
            rs2: 0,
            offset: -12,
        });
        roundtrip(Instruction::Lw {
            rd: 4,
            rs1: 1,
            offset: -4,
        });
        roundtrip(Instruction::Sw {
            rs1: 2,
            rs2: 3,
            offset: 8,
        });
        roundtrip(Instruction::Addi {
            rd: 2,
            rs1: 2,
            imm: -1,
        });
        roundtrip(Instruction::Andi {
            rd: 2,
            rs1: 2,
            imm: 0xff,
        });
        roundtrip(Instruction::Ori {
            rd: 2,
            rs1: 2,
            imm: 0x7f,
        });
        roundtrip(Instruction::Xori {
            rd: 2,
            rs1: 2,
            imm: -2048,
        });
        roundtrip(Instruction::Add {
            rd: 5,
            rs1: 6,
            rs2: 7,
        });
        roundtrip(Instruction::Sub {
            rd: 5,
            rs1: 6,
            rs2: 7,
        });
        roundtrip(Instruction::And {
            rd: 1,
            rs1: 2,
            rs2: 3,
        });
        roundtrip(Instruction::Or {
            rd: 1,
            rs1: 2,
            rs2: 3,
        });
        roundtrip(Instruction::Xor {
            rd: 1,
            rs1: 2,
            rs2: 3,
        });
        roundtrip(Instruction::Sltu {
            rd: 1,
            rs1: 2,
            rs2: 3,
        });
        roundtrip(Instruction::Csrrw {
            rd: 0,
            csr: csr::PMPADDR0,
            rs1: 5,
        });
        roundtrip(Instruction::Csrrs {
            rd: 3,
            csr: csr::CYCLE,
            rs1: 0,
        });
        roundtrip(Instruction::Mret);
    }

    #[test]
    fn known_encodings_match_the_riscv_spec() {
        // addi x0, x0, 0 is the canonical NOP 0x00000013.
        assert_eq!(Instruction::nop().encode(), 0x0000_0013);
        // mret fixed encoding.
        assert_eq!(Instruction::Mret.encode(), 0x3020_0073);
        // lw x4, 0(x1) => 0x0000a203.
        assert_eq!(
            Instruction::Lw {
                rd: 4,
                rs1: 1,
                offset: 0
            }
            .encode(),
            0x0000_a203
        );
        // sw x3, 0(x2) => 0x00312023.
        assert_eq!(
            Instruction::Sw {
                rs1: 2,
                rs2: 3,
                offset: 0
            }
            .encode(),
            0x0031_2023
        );
    }

    #[test]
    fn undecodable_words_are_illegal() {
        assert!(matches!(
            Instruction::decode(0xffff_ffff),
            Instruction::Illegal(_)
        ));
        assert!(matches!(
            Instruction::decode(0x0000_0000),
            Instruction::Illegal(_)
        ));
    }

    #[test]
    fn rd_reports_written_register() {
        assert_eq!(
            Instruction::Addi {
                rd: 3,
                rs1: 0,
                imm: 1
            }
            .rd(),
            Some(3)
        );
        assert_eq!(
            Instruction::Addi {
                rd: 0,
                rs1: 0,
                imm: 1
            }
            .rd(),
            None
        );
        assert_eq!(
            Instruction::Sw {
                rs1: 1,
                rs2: 2,
                offset: 0
            }
            .rd(),
            None
        );
        assert_eq!(
            Instruction::Beq {
                rs1: 1,
                rs2: 2,
                offset: 4
            }
            .rd(),
            None
        );
    }

    #[test]
    fn program_fetch_and_listing() {
        let mut p = Program::new(0x10);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: 7,
        });
        p.push(Instruction::Add {
            rd: 2,
            rs1: 1,
            rs2: 1,
        });
        p.push_nops(2);
        assert_eq!(p.len(), 4);
        assert_eq!(
            p.fetch(0x10),
            Some(Instruction::Addi {
                rd: 1,
                rs1: 0,
                imm: 7
            })
        );
        assert_eq!(
            p.fetch(0x14),
            Some(Instruction::Add {
                rd: 2,
                rs1: 1,
                rs2: 1
            })
        );
        assert_eq!(p.fetch(0x0c), None);
        assert_eq!(p.fetch(0x11), None);
        assert_eq!(p.fetch_word(0x1000), Instruction::nop().encode());
        let listing = p.listing();
        assert!(listing.contains("addi x1, x0, 7"));
        assert!(listing.contains("0x0014"));
    }

    #[test]
    fn display_of_key_instructions() {
        assert_eq!(
            Instruction::Lw {
                rd: 4,
                rs1: 1,
                offset: 0
            }
            .to_string(),
            "lw x4, 0(x1)"
        );
        assert_eq!(Instruction::Mret.to_string(), "mret");
        assert_eq!(
            Instruction::Lui { rd: 1, imm: 0x1000 }.to_string(),
            "lui x1, 0x1"
        );
    }
}
