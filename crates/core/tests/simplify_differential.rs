//! Differential testing of the CNF simplification pipeline at the UPEC
//! level: for registry scenarios, the default (simplifying) solver
//! configuration must reach exactly the verdict of the `no_simplify`
//! baseline.
//!
//! The fast subset below runs in the default suite; the full-registry sweep
//! (the PR acceptance check, several release-mode minutes) is `#[ignore]`d —
//! run it with `cargo test --release -p upec -- --ignored`.

use upec::engine::IncrementalSession;
use upec::scenarios::{self, ScenarioSpec};
use upec::UpecOptions;

fn check(spec: &ScenarioSpec, k: usize, no_simplify: bool) -> &'static str {
    let model = spec.build_model();
    let commitment = spec.commitment_set(&model);
    let mut options = UpecOptions::window(k);
    if no_simplify {
        options = options.no_simplify();
    }
    let mut session = IncrementalSession::with_options(&model, options);
    session.check_bound(k, &commitment).verdict_name()
}

fn assert_agreement(ids: &[&str], k: usize) {
    for id in ids {
        let spec = scenarios::by_id(id).expect("registered scenario");
        let baseline = check(&spec, k, true);
        let simplified = check(&spec, k, false);
        assert_eq!(
            baseline, simplified,
            "{id} at k={k}: baseline verdict {baseline} but simplified {simplified}"
        );
    }
}

/// Fast subset for the default suite: one proven scenario, one L-alert and
/// the (trivially cheap) cache-state obligation.
#[test]
fn simplified_verdicts_agree_on_fast_scenarios() {
    assert_agreement(&["cache-footprint", "secure-arch-only", "orc"], 2);
}

/// The PR acceptance check: verdict equality for *every* registry scenario
/// at k=2 (the common comparison bound also used by the `solver_stats`
/// bench). Several minutes of SAT solving in release mode.
#[test]
#[ignore = "full-registry differential sweep; minutes of SAT solving — run with --ignored in release mode"]
fn simplified_verdicts_agree_on_every_registry_scenario() {
    let ids: Vec<&str> = scenarios::all().iter().map(|s| s.id).collect();
    assert_agreement(&ids, 2);
}
