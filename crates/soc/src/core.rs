//! RTL builder for the MiniRV in-order 5-stage core and its SoC wrapper.
//!
//! The pipeline is IF → ID → EX → MEM → WB with full forwarding, a
//! write-allocate data cache attached to the EX stage (requests issue in EX,
//! so a dependent instruction can consume freshly returned load data through
//! the MEM-stage forwarding path — the "cache forwards secret data" situation
//! of paper Fig. 1), physical memory protection checked in EX, and precise
//! exceptions taken when the faulting instruction reaches WB.

use crate::cache::{build_cache, CacheRequest};
use crate::{isa::csr, SocConfig};
use rtl::{BitVec, Netlist, RegisterId, SignalId};

/// Signal handles and register classification for one SoC instance.
///
/// Everything the simulator harness, the examples and the UPEC miter need to
/// observe or constrain is exposed here by name; the underlying netlist keeps
/// the full hierarchy under the instance prefix.
#[derive(Debug, Clone)]
pub struct SocInstance {
    /// Instance prefix used for all hierarchical names.
    pub prefix: String,
    /// Generator configuration the instance was built from.
    pub config: SocConfig,

    // ----- ports -----
    /// Instruction fetched this cycle (primary input).
    pub imem_instr: SignalId,
    /// Memory read data for cache refills (primary input).
    pub mem_rdata: SignalId,
    /// Fetch address (= PC).
    pub imem_addr: SignalId,
    /// Memory-side request valid.
    pub mem_req_valid: SignalId,
    /// Memory-side request is a write.
    pub mem_req_write: SignalId,
    /// Memory-side request address.
    pub mem_req_addr: SignalId,
    /// Memory-side write data.
    pub mem_req_wdata: SignalId,
    /// A refill read is in flight.
    pub mem_read_pending: SignalId,
    /// The refill consumes `mem_rdata` this cycle.
    pub mem_read_resp_now: SignalId,
    /// Address of the in-flight refill read.
    pub mem_read_addr: SignalId,

    // ----- UPEC constraint signals -----
    /// Constraint 1: no buffer holding an ongoing transaction points into the
    /// protected region.
    pub no_ongoing_protected_access: SignalId,
    /// Constraint 2: the cache state is protocol consistent.
    pub cache_monitor_valid: SignalId,
    /// Constraint 2 (core side): the pipeline control state is consistent
    /// (a replayed memory operation always sits behind an EX/MEM bubble).
    /// Used, like the cache monitor, to exclude unreachable symbolic initial
    /// states that would produce spurious counterexamples.
    pub pipeline_monitor_valid: SignalId,
    /// Constraint 3: machine-mode software never loads the secret.
    pub secure_sysw_ok: SignalId,
    /// The PMP configuration protects the secret region (assumed at `t`).
    pub secret_protected: SignalId,
    /// The cache line the secret maps to holds a valid copy of the secret.
    pub secret_line_present: SignalId,

    // ----- diagnostics / blocking conditions -----
    /// A trap (or mret) flushes the pipeline this cycle.
    pub flush: SignalId,
    /// The whole pipeline is frozen by the cache this cycle.
    pub global_stall: SignalId,
    /// The EX/MEM stage cannot architecturally commit (invalid, faulting, or
    /// behind a faulting instruction) — blocking condition for P-alerts in
    /// EX/MEM registers.
    pub ex_mem_blocked: SignalId,
    /// The MEM/WB stage cannot architecturally commit — blocking condition
    /// for P-alerts in MEM/WB registers.
    pub mem_wb_blocked: SignalId,
    /// Stricter blocking condition for the EX/MEM *fault flag*: the stage is
    /// invalid or an older instruction's WB exception is flushing. Unlike
    /// [`SocInstance::ex_mem_blocked`], the stage's own fault does not count
    /// (the fault bit itself is the tolerated difference).
    pub ex_mem_fault_blocked: SignalId,
    /// Stricter blocking condition for the MEM/WB *fault flag*: the stage is
    /// invalid. A valid stage's fault bit decides which trap is taken and
    /// must never differ.
    pub mem_wb_fault_blocked: SignalId,
    /// A trap is architecturally taken this cycle (not stalled).
    pub trap_taken: SignalId,

    // ----- architectural observation points -----
    /// Program counter.
    pub pc: SignalId,
    /// Privilege mode (0 = user, 1 = machine).
    pub mode: SignalId,
    /// Free-running cycle counter (the attacker's stopwatch).
    pub cycle: SignalId,
    /// Values of `x1..x{n-1}`.
    pub regfile: Vec<SignalId>,

    // ----- state classification (Defs. 1 and 2 of the paper) -----
    /// Architectural registers (ISA-visible state).
    pub arch_registers: Vec<RegisterId>,
    /// Microarchitectural (program-invisible logic) registers.
    pub micro_registers: Vec<RegisterId>,
    /// Cache-line data registers (treated as memory, not logic).
    pub memory_registers: Vec<RegisterId>,
    /// The cache data register that may legitimately hold the secret.
    pub secret_line_data_register: RegisterId,
}

/// Builds one SoC instance inside `netlist` under the hierarchical `prefix`.
///
/// # Panics
///
/// Panics if the resulting netlist fragment is malformed (which would be a
/// bug in the generator, not a user error).
pub fn build_soc(n: &mut Netlist, config: &SocConfig, prefix: &str) -> SocInstance {
    n.push_scope(prefix);
    let reg_bits = config.reg_bits();
    let num_regs = config.num_registers;

    // Handy constants.
    let zero1 = n.zero();
    let one1 = n.one();
    let zero32 = n.lit(0, 32);

    // ------------------------------------------------------------------
    // Primary inputs
    // ------------------------------------------------------------------
    let imem_instr = n.input("imem_instr", 32);
    let mem_rdata = n.input("mem_rdata", 32);

    // ------------------------------------------------------------------
    // Architectural state
    // ------------------------------------------------------------------
    let pc = n.register_init("pc", 32, BitVec::zero(32));
    let mut xregs = Vec::new();
    for i in 1..num_regs {
        xregs.push(n.register_init(format!("x{i}"), 32, BitVec::zero(32)));
    }
    let mode = n.register_init("mode", 1, BitVec::zero(1));
    let mepc = n.register_init("mepc", 32, BitVec::zero(32));
    let mcause = n.register_init("mcause", 32, BitVec::zero(32));
    let mtvec = n.register_init("mtvec", 32, BitVec::new(u64::from(config.trap_vector), 32));
    let pmpaddr0 = n.register_init("pmpaddr0", 32, BitVec::zero(32));
    let pmpaddr1 = n.register_init("pmpaddr1", 32, BitVec::zero(32));
    let pmpcfg0 = n.register_init("pmpcfg0", 8, BitVec::zero(8));
    let pmpcfg1 = n.register_init("pmpcfg1", 8, BitVec::zero(8));
    let cycle = n.register_init("cycle", 32, BitVec::zero(32));

    // ------------------------------------------------------------------
    // Microarchitectural state: pipeline registers
    // ------------------------------------------------------------------
    let if_id_valid = n.register_init("if_id_valid", 1, BitVec::zero(1));
    let if_id_pc = n.register_init("if_id_pc", 32, BitVec::zero(32));
    let if_id_instr = n.register_init("if_id_instr", 32, BitVec::zero(32));

    let id_ex_valid = n.register_init("id_ex_valid", 1, BitVec::zero(1));
    let id_ex_pc = n.register_init("id_ex_pc", 32, BitVec::zero(32));
    let id_ex_rd = n.register_init("id_ex_rd", 5, BitVec::zero(5));
    let id_ex_rs1 = n.register_init("id_ex_rs1", 5, BitVec::zero(5));
    let id_ex_rs1_data = n.register_init("id_ex_rs1_data", 32, BitVec::zero(32));
    let id_ex_rs2_data = n.register_init("id_ex_rs2_data", 32, BitVec::zero(32));
    let id_ex_imm = n.register_init("id_ex_imm", 32, BitVec::zero(32));
    let id_ex_alu_op = n.register_init("id_ex_alu_op", 3, BitVec::zero(3));
    let id_ex_is_load = n.register_init("id_ex_is_load", 1, BitVec::zero(1));
    let id_ex_is_store = n.register_init("id_ex_is_store", 1, BitVec::zero(1));
    let id_ex_is_branch = n.register_init("id_ex_is_branch", 1, BitVec::zero(1));
    let id_ex_branch_is_bne = n.register_init("id_ex_branch_is_bne", 1, BitVec::zero(1));
    let id_ex_is_jal = n.register_init("id_ex_is_jal", 1, BitVec::zero(1));
    let id_ex_is_lui = n.register_init("id_ex_is_lui", 1, BitVec::zero(1));
    let id_ex_uses_imm = n.register_init("id_ex_uses_imm", 1, BitVec::zero(1));
    let id_ex_writes_rd = n.register_init("id_ex_writes_rd", 1, BitVec::zero(1));
    let id_ex_is_csr = n.register_init("id_ex_is_csr", 1, BitVec::zero(1));
    let id_ex_csr_write = n.register_init("id_ex_csr_write", 1, BitVec::zero(1));
    let id_ex_csr_set = n.register_init("id_ex_csr_set", 1, BitVec::zero(1));
    let id_ex_csr_addr = n.register_init("id_ex_csr_addr", 12, BitVec::zero(12));
    let id_ex_is_mret = n.register_init("id_ex_is_mret", 1, BitVec::zero(1));
    let id_ex_is_illegal = n.register_init("id_ex_is_illegal", 1, BitVec::zero(1));

    let ex_mem_valid = n.register_init("ex_mem_valid", 1, BitVec::zero(1));
    let ex_mem_pc = n.register_init("ex_mem_pc", 32, BitVec::zero(32));
    let ex_mem_rd = n.register_init("ex_mem_rd", 5, BitVec::zero(5));
    let ex_mem_writes_rd = n.register_init("ex_mem_writes_rd", 1, BitVec::zero(1));
    let ex_mem_result = n.register_init("ex_mem_result", 32, BitVec::zero(32));
    let ex_mem_is_load = n.register_init("ex_mem_is_load", 1, BitVec::zero(1));
    let ex_mem_fault = n.register_init("ex_mem_fault", 1, BitVec::zero(1));
    let ex_mem_cause = n.register_init("ex_mem_cause", 32, BitVec::zero(32));
    let ex_mem_is_mret = n.register_init("ex_mem_is_mret", 1, BitVec::zero(1));
    let ex_mem_csr_write = n.register_init("ex_mem_csr_write", 1, BitVec::zero(1));
    let ex_mem_csr_addr = n.register_init("ex_mem_csr_addr", 12, BitVec::zero(12));
    let ex_mem_csr_wdata = n.register_init("ex_mem_csr_wdata", 32, BitVec::zero(32));

    let mem_wb_valid = n.register_init("mem_wb_valid", 1, BitVec::zero(1));
    let mem_wb_pc = n.register_init("mem_wb_pc", 32, BitVec::zero(32));
    let mem_wb_rd = n.register_init("mem_wb_rd", 5, BitVec::zero(5));
    let mem_wb_writes_rd = n.register_init("mem_wb_writes_rd", 1, BitVec::zero(1));
    let mem_wb_result = n.register_init("mem_wb_result", 32, BitVec::zero(32));
    let mem_wb_fault = n.register_init("mem_wb_fault", 1, BitVec::zero(1));
    let mem_wb_cause = n.register_init("mem_wb_cause", 32, BitVec::zero(32));
    let mem_wb_is_mret = n.register_init("mem_wb_is_mret", 1, BitVec::zero(1));
    let mem_wb_csr_write = n.register_init("mem_wb_csr_write", 1, BitVec::zero(1));
    let mem_wb_csr_addr = n.register_init("mem_wb_csr_addr", 12, BitVec::zero(12));
    let mem_wb_csr_wdata = n.register_init("mem_wb_csr_wdata", 32, BitVec::zero(32));

    let replay_done = n.register_init("replay_done", 1, BitVec::zero(1));

    // ------------------------------------------------------------------
    // WB-stage commit/flush flags (needed by earlier stages)
    // ------------------------------------------------------------------
    let mode_is_machine = mode.value();
    let mode_is_user = n.not(mode_is_machine);
    let mret_in_user = n.and_all([mem_wb_valid.value(), mem_wb_is_mret.value(), mode_is_user]);
    let wb_exception = {
        let own_fault = n.and(mem_wb_valid.value(), mem_wb_fault.value());
        n.or(own_fault, mret_in_user)
    };
    let mret_commit = {
        let no_fault = n.not(mem_wb_fault.value());
        n.and_all([
            mem_wb_valid.value(),
            mem_wb_is_mret.value(),
            mode_is_machine,
            no_fault,
        ])
    };
    let wb_flush = n.or(wb_exception, mret_commit);

    // ------------------------------------------------------------------
    // ID stage: decode + register read
    // ------------------------------------------------------------------
    let instr = if_id_instr.value();
    let opcode = n.slice(instr, 6, 0);
    let rd_field = n.slice(instr, 11, 7);
    let funct3 = n.slice(instr, 14, 12);
    let rs1_field = n.slice(instr, 19, 15);
    let rs2_field = n.slice(instr, 24, 20);
    let _funct7 = n.slice(instr, 31, 25);

    let is_lui = n.eq_lit(opcode, 0b0110111);
    let is_jal = n.eq_lit(opcode, 0b1101111);
    let op_branch = n.eq_lit(opcode, 0b1100011);
    let f3_is_0 = n.eq_lit(funct3, 0);
    let f3_is_1 = n.eq_lit(funct3, 1);
    let f3_is_2 = n.eq_lit(funct3, 2);
    let f3_is_3 = n.eq_lit(funct3, 3);
    let f3_is_4 = n.eq_lit(funct3, 4);
    let f3_is_6 = n.eq_lit(funct3, 6);
    let f3_is_7 = n.eq_lit(funct3, 7);
    let branch_f3_ok = n.or(f3_is_0, f3_is_1);
    let is_branch = n.and(op_branch, branch_f3_ok);
    let branch_is_bne = f3_is_1;
    let op_load = n.eq_lit(opcode, 0b0000011);
    let is_load = n.and(op_load, f3_is_2);
    let op_store = n.eq_lit(opcode, 0b0100011);
    let is_store = n.and(op_store, f3_is_2);
    let op_alu_imm = n.eq_lit(opcode, 0b0010011);
    let alu_imm_f3_ok = n.or_all([f3_is_0, f3_is_7, f3_is_6, f3_is_4]);
    let is_alu_imm = n.and(op_alu_imm, alu_imm_f3_ok);
    let op_alu_reg = n.eq_lit(opcode, 0b0110011);
    let alu_reg_f3_ok = n.or_all([f3_is_0, f3_is_7, f3_is_6, f3_is_4, f3_is_3]);
    let is_alu_reg = n.and(op_alu_reg, alu_reg_f3_ok);
    let op_system = n.eq_lit(opcode, 0b1110011);
    let is_mret = n.eq_lit(instr, 0x3020_0073);
    let is_csrrw = n.and(op_system, f3_is_1);
    let is_csrrs = n.and(op_system, f3_is_2);
    let is_csr = n.or(is_csrrw, is_csrrs);
    let any_known = n.or_all([
        is_lui, is_jal, is_branch, is_load, is_store, is_alu_imm, is_alu_reg, is_mret, is_csr,
    ]);
    let is_illegal = n.not(any_known);

    // ALU operation: 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 sltu.
    let is_sub = {
        let bit30 = n.bit(instr, 30);
        n.and_all([op_alu_reg, f3_is_0, bit30])
    };
    let alu_op = {
        let op_add = n.lit(0, 3);
        let op_sub = n.lit(1, 3);
        let op_and = n.lit(2, 3);
        let op_or = n.lit(3, 3);
        let op_xor = n.lit(4, 3);
        let op_sltu = n.lit(5, 3);
        let mut op = op_add;
        op = n.mux(is_sub, op_sub, op);
        op = n.mux(f3_is_7, op_and, op);
        op = n.mux(f3_is_6, op_or, op);
        op = n.mux(f3_is_4, op_xor, op);
        let sltu_sel = n.and(op_alu_reg, f3_is_3);
        op = n.mux(sltu_sel, op_sltu, op);
        op
    };

    // Immediates.
    let imm_i = {
        let raw = n.slice(instr, 31, 20);
        n.sext(raw, 32)
    };
    let imm_s = {
        let hi = n.slice(instr, 31, 25);
        let lo = n.slice(instr, 11, 7);
        let raw = n.concat(hi, lo);
        n.sext(raw, 32)
    };
    let imm_b = {
        let b12 = n.bit(instr, 31);
        let b11 = n.bit(instr, 7);
        let b10_5 = n.slice(instr, 30, 25);
        let b4_1 = n.slice(instr, 11, 8);
        let zero_bit = n.lit(0, 1);
        let hi = n.concat(b12, b11);
        let mid = n.concat(hi, b10_5);
        let low = n.concat(b4_1, zero_bit);
        let raw = n.concat(mid, low);
        n.sext(raw, 32)
    };
    let imm_j = {
        let b20 = n.bit(instr, 31);
        let b19_12 = n.slice(instr, 19, 12);
        let b11 = n.bit(instr, 20);
        let b10_1 = n.slice(instr, 30, 21);
        let zero_bit = n.lit(0, 1);
        let a = n.concat(b20, b19_12);
        let b = n.concat(a, b11);
        let c = n.concat(b, b10_1);
        let raw = n.concat(c, zero_bit);
        n.sext(raw, 32)
    };
    let imm_u = {
        let hi = n.slice(instr, 31, 12);
        let lo = n.lit(0, 12);
        n.concat(hi, lo)
    };
    let imm = {
        let mut v = imm_i;
        v = n.mux(is_store, imm_s, v);
        v = n.mux(is_branch, imm_b, v);
        v = n.mux(is_jal, imm_j, v);
        v = n.mux(is_lui, imm_u, v);
        v
    };
    let uses_imm = n.or_all([is_load, is_store, is_alu_imm, is_lui]);
    let rd_nonzero = {
        let z = n.eq_lit(rd_field, 0);
        n.not(z)
    };
    let writes_rd_class = n.or_all([is_lui, is_jal, is_load, is_alu_imm, is_alu_reg, is_csr]);
    let writes_rd = n.and(writes_rd_class, rd_nonzero);
    let rs1_nonzero = {
        let z = n.eq_lit(rs1_field, 0);
        n.not(z)
    };
    let csr_set_writes = n.and(is_csrrs, rs1_nonzero);
    let csr_write_any = n.or(is_csrrw, csr_set_writes);

    // Register file read with a WB→ID bypass so values written this cycle are
    // visible to the instruction being decoded.
    let wb_reg_write = {
        // An instruction that raises any exception in WB — its own fault or
        // an mret attempted from user mode — must not commit its destination
        // register. Gating on `wb_exception` (which subsumes the own-fault
        // case for valid instructions) closes a hole where a trapping
        // user-mode mret with a (symbolically possible) rd-write still
        // updated the register file.
        let no_exception = n.not(wb_exception);
        n.and_all([mem_wb_valid.value(), mem_wb_writes_rd.value(), no_exception])
    };
    let read_reg = |n: &mut Netlist, field: SignalId| -> SignalId {
        let sel = n.slice(field, reg_bits - 1, 0);
        let mut value = zero32;
        for (i, reg) in xregs.iter().enumerate() {
            let idx = (i + 1) as u64;
            let is_i = n.eq_lit(sel, idx);
            value = n.mux(is_i, reg.value(), value);
        }
        // WB bypass. The x0-exclusion must use the same truncated index as
        // the comparison: with fewer than 32 registers, a high rs field
        // aliases onto a low register (x16 ≡ x0 for a 4-register file), and
        // checking the full 5-bit field here would bypass a value into the
        // hardwired-zero register.
        let wb_sel = n.slice(mem_wb_rd.value(), reg_bits - 1, 0);
        let same = n.eq(wb_sel, sel);
        let field_nonzero = {
            let z = n.eq_lit(sel, 0);
            n.not(z)
        };
        let bypass = n.and_all([wb_reg_write, same, field_nonzero]);
        n.mux(bypass, mem_wb_result.value(), value)
    };
    let rs1_data = read_reg(n, rs1_field);
    let rs2_data = read_reg(n, rs2_field);

    // ------------------------------------------------------------------
    // EX stage
    // ------------------------------------------------------------------
    let ex_valid = id_ex_valid.value();

    // Forwarding from EX/MEM and MEM/WB.
    let forward = |n: &mut Netlist, rs: SignalId, id_value: SignalId| -> (SignalId, SignalId) {
        let rs_low = n.slice(rs, reg_bits - 1, 0);
        // The x0-exclusion uses the truncated index, consistent with the
        // `rs_low`/`rd_low` match and the register file's own selection: a
        // high rs field aliases onto a low register when the file has fewer
        // than 32 entries, and x0 must never be forwarded — the closure
        // proofs rely on "rd = x0" implying no forwarding path.
        let rs_nonzero = {
            let z = n.eq_lit(rs_low, 0);
            n.not(z)
        };
        let mem_rd_low = n.slice(ex_mem_rd.value(), reg_bits - 1, 0);
        let mem_match = n.eq(mem_rd_low, rs_low);
        let from_mem = n.and_all([
            ex_mem_valid.value(),
            ex_mem_writes_rd.value(),
            mem_match,
            rs_nonzero,
        ]);
        let wb_rd_low = n.slice(mem_wb_rd.value(), reg_bits - 1, 0);
        let wb_match = n.eq(wb_rd_low, rs_low);
        let from_wb = n.and_all([
            mem_wb_valid.value(),
            mem_wb_writes_rd.value(),
            wb_match,
            rs_nonzero,
        ]);
        let after_wb = n.mux(from_wb, mem_wb_result.value(), id_value);
        let value = n.mux(from_mem, ex_mem_result.value(), after_wb);
        (value, from_mem)
    };
    // The ID/EX stage stores rs2 in the low bits of id_ex_rd? No: rs2 index is
    // needed for store-data forwarding; reuse the rs1 register for rs1 and
    // decode rs2 forwarding against the store-data value captured in ID.
    let id_ex_rs2 = n.register_init("id_ex_rs2", 5, BitVec::zero(5));
    let (rs1_val, rs1_from_mem) = forward(n, id_ex_rs1.value(), id_ex_rs1_data.value());
    let (rs2_val, _) = forward(n, id_ex_rs2.value(), id_ex_rs2_data.value());

    let op2 = n.mux(id_ex_uses_imm.value(), id_ex_imm.value(), rs2_val);
    let alu_add = n.add(rs1_val, op2);
    let alu_sub = n.sub(rs1_val, op2);
    let alu_and = n.and(rs1_val, op2);
    let alu_or = n.or(rs1_val, op2);
    let alu_xor = n.xor(rs1_val, op2);
    let alu_sltu = {
        let lt = n.ult(rs1_val, op2);
        n.zext(lt, 32)
    };
    let alu_result = {
        let mut v = alu_add;
        let sel1 = n.eq_lit(id_ex_alu_op.value(), 1);
        v = n.mux(sel1, alu_sub, v);
        let sel2 = n.eq_lit(id_ex_alu_op.value(), 2);
        v = n.mux(sel2, alu_and, v);
        let sel3 = n.eq_lit(id_ex_alu_op.value(), 3);
        v = n.mux(sel3, alu_or, v);
        let sel4 = n.eq_lit(id_ex_alu_op.value(), 4);
        v = n.mux(sel4, alu_xor, v);
        let sel5 = n.eq_lit(id_ex_alu_op.value(), 5);
        v = n.mux(sel5, alu_sltu, v);
        v
    };
    let mem_addr = alu_add;

    // PMP check (TOR regions, user mode only).
    let protected_access = |n: &mut Netlist, addr: SignalId| -> SignalId {
        let word = n.slice(addr, 31, 2);
        let word32 = n.zext(word, 32);
        let in0 = n.ult(word32, pmpaddr0.value());
        let below1 = n.ult(word32, pmpaddr1.value());
        let not_in0 = n.not(in0);
        let in1 = n.and(not_in0, below1);
        let cfg0_rw = n.slice(pmpcfg0.value(), 1, 0);
        let cfg1_rw = n.slice(pmpcfg1.value(), 1, 0);
        let r0_allows = n.eq_lit(cfg0_rw, 3);
        let r1_allows = n.eq_lit(cfg1_rw, 3);
        let r0_denies = n.not(r0_allows);
        let r1_denies = n.not(r1_allows);
        let deny0 = n.and(in0, r0_denies);
        let deny1 = n.and(in1, r1_denies);
        n.or(deny0, deny1)
    };
    let pmp_deny = protected_access(n, mem_addr);
    let is_mem_op_bit = n.or(id_ex_is_load.value(), id_ex_is_store.value());
    let pmp_fault = n.and_all([ex_valid, is_mem_op_bit, mode_is_user, pmp_deny]);
    let illegal_fault = n.and(ex_valid, id_ex_is_illegal.value());
    let ex_fault = n.or(pmp_fault, illegal_fault);
    let ex_cause = {
        let load_fault = n.lit(u64::from(crate::isa::cause::LOAD_ACCESS_FAULT), 32);
        let store_fault = n.lit(u64::from(crate::isa::cause::STORE_ACCESS_FAULT), 32);
        let illegal = n.lit(u64::from(crate::isa::cause::ILLEGAL_INSTRUCTION), 32);
        let mem_cause = n.mux(id_ex_is_store.value(), store_fault, load_fault);
        n.mux(illegal_fault, illegal, mem_cause)
    };

    let older_fault_in_mem = n.and(ex_mem_valid.value(), ex_mem_fault.value());
    let older_exception_pending = n.or(older_fault_in_mem, wb_exception);

    // Branch / jump resolution (suppressed when an older instruction is about
    // to trap, so transient secret-dependent redirects cannot occur).
    let rs_equal = n.eq(rs1_val, rs2_val);
    let rs_not_equal = n.not(rs_equal);
    let branch_cond = n.mux(id_ex_branch_is_bne.value(), rs_not_equal, rs_equal);
    let no_older_exception = n.not(older_exception_pending);
    let no_wb_flush = n.not(wb_flush);
    let branch_taken = n.and_all([
        ex_valid,
        id_ex_is_branch.value(),
        branch_cond,
        no_older_exception,
        no_wb_flush,
    ]);
    let jal_taken = n.and_all([
        ex_valid,
        id_ex_is_jal.value(),
        no_older_exception,
        no_wb_flush,
    ]);
    let redirect = n.or(branch_taken, jal_taken);
    let redirect_pc = n.add(id_ex_pc.value(), id_ex_imm.value());

    // CSR read (in EX) and write-data computation.
    let csr_read_value = {
        let addr = id_ex_csr_addr.value();
        let cfg_combined = {
            let hi = n.lit(0, 16);
            let c1 = n.concat(pmpcfg1.value(), pmpcfg0.value());
            n.concat(hi, c1)
        };
        let mut v = zero32;
        let sel_mtvec = n.eq_lit(addr, u64::from(csr::MTVEC));
        v = n.mux(sel_mtvec, mtvec.value(), v);
        let sel_mepc = n.eq_lit(addr, u64::from(csr::MEPC));
        v = n.mux(sel_mepc, mepc.value(), v);
        let sel_mcause = n.eq_lit(addr, u64::from(csr::MCAUSE));
        v = n.mux(sel_mcause, mcause.value(), v);
        let sel_cfg = n.eq_lit(addr, u64::from(csr::PMPCFG0));
        v = n.mux(sel_cfg, cfg_combined, v);
        let sel_a0 = n.eq_lit(addr, u64::from(csr::PMPADDR0));
        v = n.mux(sel_a0, pmpaddr0.value(), v);
        let sel_a1 = n.eq_lit(addr, u64::from(csr::PMPADDR1));
        v = n.mux(sel_a1, pmpaddr1.value(), v);
        let sel_cycle = n.eq_lit(addr, u64::from(csr::CYCLE));
        v = n.mux(sel_cycle, cycle.value(), v);
        v
    };
    let csr_wdata = {
        let set_value = n.or(csr_read_value, rs1_val);
        n.mux(id_ex_csr_set.value(), set_value, rs1_val)
    };

    // Replay buffer: a memory operation whose address operand is forwarded
    // straight from the MEM-stage load response waits one cycle (the buffer
    // the Orc variant bypasses).
    let is_mem_op = n.and(ex_valid, is_mem_op_bit);
    let not_replayed_yet = n.not(replay_done.value());
    let replay_stall = if config.replay_buffer_bypass {
        zero1
    } else {
        let fwd_load = n.and(rs1_from_mem, ex_mem_is_load.value());
        n.and_all([is_mem_op, fwd_load, not_replayed_yet])
    };
    let no_replay_stall = n.not(replay_stall);

    // Cache request issue.
    let issue_kill = if config.issue_killed_requests {
        zero1
    } else {
        wb_flush
    };
    let no_issue_kill = n.not(issue_kill);
    let load_issue = n.and_all([
        ex_valid,
        id_ex_is_load.value(),
        no_replay_stall,
        no_issue_kill,
    ]);
    let no_pmp_fault = n.not(pmp_fault);
    let store_issue = n.and_all([
        ex_valid,
        id_ex_is_store.value(),
        no_pmp_fault,
        no_older_exception,
        no_wb_flush,
        no_replay_stall,
    ]);
    let req_valid = n.or(load_issue, store_issue);
    let allow_refill = no_pmp_fault;

    // ------------------------------------------------------------------
    // Data cache
    // ------------------------------------------------------------------
    let cache = build_cache(
        n,
        config,
        CacheRequest {
            valid: req_valid,
            write: store_issue,
            addr: mem_addr,
            wdata: rs2_val,
            allow_refill,
            flush: wb_flush,
        },
        mem_rdata,
    );
    let global_stall = cache.busy;
    let not_stalled = n.not(global_stall);

    // EX result (needs the cache hit data for loads).
    let ex_result = {
        let mut v = alu_result;
        v = n.mux(id_ex_is_lui.value(), id_ex_imm.value(), v);
        let four = n.lit(4, 32);
        let link = n.add(id_ex_pc.value(), four);
        v = n.mux(id_ex_is_jal.value(), link, v);
        v = n.mux(id_ex_is_csr.value(), csr_read_value, v);
        v = n.mux(id_ex_is_load.value(), cache.resp_data, v);
        v
    };

    // ------------------------------------------------------------------
    // WB stage: architectural commit
    // ------------------------------------------------------------------
    let trap_taken = n.and(wb_exception, not_stalled);

    // Register file write.
    for (i, reg) in xregs.iter().enumerate() {
        let idx = (i + 1) as u64;
        let rd_low = n.slice(mem_wb_rd.value(), reg_bits - 1, 0);
        let is_i = n.eq_lit(rd_low, idx);
        let write_this = n.and(wb_reg_write, is_i);
        let next = n.mux(write_this, mem_wb_result.value(), reg.value());
        let held = n.mux(global_stall, reg.value(), next);
        n.set_next(*reg, held);
    }

    // CSR commit.
    let csr_commit = {
        let no_fault = n.not(mem_wb_fault.value());
        n.and_all([
            mem_wb_valid.value(),
            mem_wb_csr_write.value(),
            no_fault,
            mode_is_machine,
        ])
    };
    let csr_addr_wb = mem_wb_csr_addr.value();
    let csr_wdata_wb = mem_wb_csr_wdata.value();
    let cfg0_locked = n.bit(pmpcfg0.value(), 7);
    let cfg1_locked = n.bit(pmpcfg1.value(), 7);
    let cfg0_unlocked = n.not(cfg0_locked);
    let cfg1_unlocked = n.not(cfg1_locked);

    let commit_csr = |n: &mut Netlist, addr: u32, extra_ok: SignalId| -> SignalId {
        let sel = n.eq_lit(csr_addr_wb, u64::from(addr));
        n.and_all([csr_commit, sel, extra_ok])
    };
    let true_bit = one1;
    let write_mtvec = commit_csr(n, csr::MTVEC, true_bit);
    let write_mepc = commit_csr(n, csr::MEPC, true_bit);
    let write_mcause = commit_csr(n, csr::MCAUSE, true_bit);
    let write_cfg = commit_csr(n, csr::PMPCFG0, true_bit);
    // pmpaddr0: per the privileged spec a locked TOR entry 1 also locks
    // pmpaddr0; the buggy variant omits that term.
    let addr0_lock_ok = if config.pmp_tor_lock_bug {
        cfg0_unlocked
    } else {
        n.and(cfg0_unlocked, cfg1_unlocked)
    };
    let write_addr0 = commit_csr(n, csr::PMPADDR0, addr0_lock_ok);
    let write_addr1 = commit_csr(n, csr::PMPADDR1, cfg1_unlocked);

    // mepc / mcause also written by a trap.
    let mepc_next = {
        let after_csr = n.mux(write_mepc, csr_wdata_wb, mepc.value());
        n.mux(wb_exception, mem_wb_pc.value(), after_csr)
    };
    let mcause_next = {
        let cause_now = {
            let illegal = n.lit(u64::from(crate::isa::cause::ILLEGAL_INSTRUCTION), 32);
            n.mux(mret_in_user, illegal, mem_wb_cause.value())
        };
        let after_csr = n.mux(write_mcause, csr_wdata_wb, mcause.value());
        n.mux(wb_exception, cause_now, after_csr)
    };
    let mtvec_next = n.mux(write_mtvec, csr_wdata_wb, mtvec.value());
    let pmpaddr0_next = n.mux(write_addr0, csr_wdata_wb, pmpaddr0.value());
    let pmpaddr1_next = n.mux(write_addr1, csr_wdata_wb, pmpaddr1.value());
    let pmpcfg0_next = {
        let low = n.slice(csr_wdata_wb, 7, 0);
        let write_this = n.and(write_cfg, cfg0_unlocked);
        n.mux(write_this, low, pmpcfg0.value())
    };
    let pmpcfg1_next = {
        let hi = n.slice(csr_wdata_wb, 15, 8);
        let write_this = n.and(write_cfg, cfg1_unlocked);
        n.mux(write_this, hi, pmpcfg1.value())
    };
    let mode_next = {
        let after_mret = n.mux(mret_commit, zero1, mode.value());
        n.mux(wb_exception, one1, after_mret)
    };

    // PC update.
    let pc_plus4 = {
        let four = n.lit(4, 32);
        n.add(pc.value(), four)
    };
    let pc_next = {
        let mut next = pc_plus4;
        next = n.mux(replay_stall, pc.value(), next);
        next = n.mux(redirect, redirect_pc, next);
        next = n.mux(mret_commit, mepc.value(), next);
        next = n.mux(wb_exception, mtvec.value(), next);
        next
    };

    // ------------------------------------------------------------------
    // Pipeline register next-state values
    // ------------------------------------------------------------------
    let kill_young = n.or(wb_flush, redirect);
    let no_kill_young = n.not(kill_young);

    let if_id_valid_next = {
        let normal = no_kill_young;
        n.mux(replay_stall, if_id_valid.value(), normal)
    };
    let if_id_pc_next = n.mux(replay_stall, if_id_pc.value(), pc.value());
    let if_id_instr_next = n.mux(replay_stall, if_id_instr.value(), imem_instr);

    let id_ex_valid_next = {
        let enter = n.and(if_id_valid.value(), no_kill_young);
        n.mux(replay_stall, id_ex_valid.value(), enter)
    };
    let hold_or = |n: &mut Netlist, reg: rtl::RegisterHandle, value: SignalId| -> SignalId {
        n.mux(replay_stall, reg.value(), value)
    };
    let id_ex_pc_next = hold_or(n, id_ex_pc, if_id_pc.value());
    let id_ex_rd_next = hold_or(n, id_ex_rd, rd_field);
    let id_ex_rs1_next = hold_or(n, id_ex_rs1, rs1_field);
    let id_ex_rs2_next = hold_or(n, id_ex_rs2, rs2_field);
    let id_ex_rs1_data_next = hold_or(n, id_ex_rs1_data, rs1_data);
    let id_ex_rs2_data_next = hold_or(n, id_ex_rs2_data, rs2_data);
    let id_ex_imm_next = hold_or(n, id_ex_imm, imm);
    let id_ex_alu_op_next = hold_or(n, id_ex_alu_op, alu_op);
    let id_ex_is_load_next = hold_or(n, id_ex_is_load, is_load);
    let id_ex_is_store_next = hold_or(n, id_ex_is_store, is_store);
    let id_ex_is_branch_next = hold_or(n, id_ex_is_branch, is_branch);
    let id_ex_branch_is_bne_next = hold_or(n, id_ex_branch_is_bne, branch_is_bne);
    let id_ex_is_jal_next = hold_or(n, id_ex_is_jal, is_jal);
    let id_ex_is_lui_next = hold_or(n, id_ex_is_lui, is_lui);
    let id_ex_uses_imm_next = hold_or(n, id_ex_uses_imm, uses_imm);
    let id_ex_writes_rd_next = hold_or(n, id_ex_writes_rd, writes_rd);
    let id_ex_is_csr_next = hold_or(n, id_ex_is_csr, is_csr);
    let id_ex_csr_write_next = hold_or(n, id_ex_csr_write, csr_write_any);
    let id_ex_csr_set_next = hold_or(n, id_ex_csr_set, is_csrrs);
    let csr_addr_id = n.slice(instr, 31, 20);
    let id_ex_csr_addr_next = hold_or(n, id_ex_csr_addr, csr_addr_id);
    let id_ex_is_mret_next = hold_or(n, id_ex_is_mret, is_mret);
    let id_ex_is_illegal_next = hold_or(n, id_ex_is_illegal, is_illegal);

    let ex_mem_valid_next = {
        let advancing = n.mux(replay_stall, zero1, ex_valid);
        n.and(advancing, no_wb_flush)
    };
    let mem_wb_valid_next = n.and(ex_mem_valid.value(), no_wb_flush);

    let replay_done_next = replay_stall;

    // Collect all held (stall-gated) register updates.
    let updates: Vec<(rtl::RegisterHandle, SignalId)> = vec![
        (pc, pc_next),
        (mode, mode_next),
        (mepc, mepc_next),
        (mcause, mcause_next),
        (mtvec, mtvec_next),
        (pmpaddr0, pmpaddr0_next),
        (pmpaddr1, pmpaddr1_next),
        (pmpcfg0, pmpcfg0_next),
        (pmpcfg1, pmpcfg1_next),
        (if_id_valid, if_id_valid_next),
        (if_id_pc, if_id_pc_next),
        (if_id_instr, if_id_instr_next),
        (id_ex_valid, id_ex_valid_next),
        (id_ex_pc, id_ex_pc_next),
        (id_ex_rd, id_ex_rd_next),
        (id_ex_rs1, id_ex_rs1_next),
        (id_ex_rs2, id_ex_rs2_next),
        (id_ex_rs1_data, id_ex_rs1_data_next),
        (id_ex_rs2_data, id_ex_rs2_data_next),
        (id_ex_imm, id_ex_imm_next),
        (id_ex_alu_op, id_ex_alu_op_next),
        (id_ex_is_load, id_ex_is_load_next),
        (id_ex_is_store, id_ex_is_store_next),
        (id_ex_is_branch, id_ex_is_branch_next),
        (id_ex_branch_is_bne, id_ex_branch_is_bne_next),
        (id_ex_is_jal, id_ex_is_jal_next),
        (id_ex_is_lui, id_ex_is_lui_next),
        (id_ex_uses_imm, id_ex_uses_imm_next),
        (id_ex_writes_rd, id_ex_writes_rd_next),
        (id_ex_is_csr, id_ex_is_csr_next),
        (id_ex_csr_write, id_ex_csr_write_next),
        (id_ex_csr_set, id_ex_csr_set_next),
        (id_ex_csr_addr, id_ex_csr_addr_next),
        (id_ex_is_mret, id_ex_is_mret_next),
        (id_ex_is_illegal, id_ex_is_illegal_next),
        (ex_mem_valid, ex_mem_valid_next),
        (ex_mem_pc, id_ex_pc.value()),
        (ex_mem_rd, id_ex_rd.value()),
        (ex_mem_writes_rd, id_ex_writes_rd.value()),
        (ex_mem_result, ex_result),
        (ex_mem_is_load, id_ex_is_load.value()),
        (ex_mem_fault, ex_fault),
        (ex_mem_cause, ex_cause),
        (ex_mem_is_mret, id_ex_is_mret.value()),
        (ex_mem_csr_write, id_ex_csr_write.value()),
        (ex_mem_csr_addr, id_ex_csr_addr.value()),
        (ex_mem_csr_wdata, csr_wdata),
        (mem_wb_valid, mem_wb_valid_next),
        (mem_wb_pc, ex_mem_pc.value()),
        (mem_wb_rd, ex_mem_rd.value()),
        (mem_wb_writes_rd, ex_mem_writes_rd.value()),
        (mem_wb_result, ex_mem_result.value()),
        (mem_wb_fault, ex_mem_fault.value()),
        (mem_wb_cause, ex_mem_cause.value()),
        (mem_wb_is_mret, ex_mem_is_mret.value()),
        (mem_wb_csr_write, ex_mem_csr_write.value()),
        (mem_wb_csr_addr, ex_mem_csr_addr.value()),
        (mem_wb_csr_wdata, ex_mem_csr_wdata.value()),
        (replay_done, replay_done_next),
    ];
    for (reg, next) in updates {
        let held = n.mux(global_stall, reg.value(), next);
        n.set_next(reg, held);
    }
    // The cycle counter keeps counting through stalls: it is the wall clock
    // the attacker reads.
    let cycle_next = {
        let one = n.lit(1, 32);
        n.add(cycle.value(), one)
    };
    n.set_next(cycle, cycle_next);

    // ------------------------------------------------------------------
    // UPEC constraint signals
    // ------------------------------------------------------------------
    let pw_protected = protected_access(n, cache.pending_write_addr);
    let refill_protected = protected_access(n, cache.refill_addr);
    let no_ongoing_protected_access = {
        let pw_bad = n.and(cache.pending_write_valid, pw_protected);
        let refill_bad = n.and(cache.refill_active, refill_protected);
        let any_bad = n.or(pw_bad, refill_bad);
        n.not(any_bad)
    };
    let secure_sysw_ok = {
        let machine_load = n.and_all([mode_is_machine, ex_valid, id_ex_is_load.value()]);
        let touches_secret = {
            let word = n.slice(mem_addr, 31, 2);
            let word32 = n.zext(word, 32);
            let base = n.lit(u64::from(config.protected_base >> 2), 32);
            let top = n.lit(u64::from(config.protected_top >> 2), 32);
            let ge_base = n.ule(base, word32);
            let lt_top = n.ult(word32, top);
            n.and(ge_base, lt_top)
        };
        let bad = n.and(machine_load, touches_secret);
        n.not(bad)
    };
    let secret_protected = {
        let a0_ok = n.eq_lit(pmpaddr0.value(), u64::from(config.protected_base >> 2));
        let a1_ok = n.eq_lit(pmpaddr1.value(), u64::from(config.protected_top >> 2));
        let cfg0_ok = n.eq_lit(pmpcfg0.value(), 0x07);
        let cfg1_ok = n.eq_lit(pmpcfg1.value(), 0x80);
        n.and_all([a0_ok, a1_ok, cfg0_ok, cfg1_ok])
    };

    // Pipeline monitor — inductive invariants of the design; assuming them
    // excludes unreachable symbolic initial states (paper Sec. V-A):
    //
    // 1. `replay_done` is only ever set in the cycle right after a replay
    //    stall, during which the EX/MEM stage received a bubble.
    // 2. The decoder always sets `uses_imm` for memory operations (their
    //    addresses are `rs1 + imm`), so a valid EX-stage memory op never
    //    computes its address from rs2. Without this, a symbolic "load
    //    addressed by rs2" would sidestep the replay buffer (which guards
    //    rs1 forwarding only) and break the P-alert closure proofs.
    let pipeline_monitor_valid = {
        let bad_replay = n.and(replay_done.value(), ex_mem_valid.value());
        let bad_mem_addressing = {
            let mem_op = n.or(id_ex_is_load.value(), id_ex_is_store.value());
            let no_imm = n.not(id_ex_uses_imm.value());
            n.and_all([id_ex_valid.value(), mem_op, no_imm])
        };
        let bad = n.or(bad_replay, bad_mem_addressing);
        n.not(bad)
    };

    // Blocking conditions for the inductive P-alert closure proofs.
    let ex_mem_blocked = {
        let invalid = n.not(ex_mem_valid.value());
        // Only a *load* can capture secret-dependent data while faulting
        // (the cache-hit capture of paper Table I's first P-alert); any
        // other instruction with a differing result is either invalid or
        // shadowed by an older instruction's WB exception one stage ahead.
        // Keeping the own-fault excuse this narrow is what lets the
        // inductive closure proof rule out unreachable "faulting ALU op
        // with secret-dependent result" states.
        let faulted_load = n.and(ex_mem_fault.value(), ex_mem_is_load.value());
        n.or_all([invalid, faulted_load, wb_exception])
    };
    let mem_wb_blocked = {
        let invalid = n.not(mem_wb_valid.value());
        n.or(invalid, wb_exception)
    };
    // Fault flags need stricter blocking than data fields: a differing fault
    // bit selects *which* trap is taken (it feeds `mcause`/`wb_exception`),
    // so it is only harmless while the stage cannot raise an exception at
    // all — when the stage is invalid, or (for EX/MEM) when an older
    // instruction's WB exception is already flushing the pipeline. The
    // stage's own `faulted` term must NOT count: that is exactly the
    // difference being tolerated.
    let ex_mem_fault_blocked = {
        let invalid = n.not(ex_mem_valid.value());
        n.or(invalid, wb_exception)
    };
    let mem_wb_fault_blocked = n.not(mem_wb_valid.value());

    // ------------------------------------------------------------------
    // Outputs
    // ------------------------------------------------------------------
    n.output("imem_addr", pc.value());
    n.output("mem_req_valid", cache.mem_req_valid);
    n.output("mem_req_write", cache.mem_req_write);
    n.output("mem_req_addr", cache.mem_req_addr);
    n.output("mem_req_wdata", cache.mem_req_wdata);
    n.output("trap_taken", trap_taken);
    n.output("pc", pc.value());
    n.output("mode", mode.value());
    n.output("cycle", cycle.value());
    n.output("global_stall", global_stall);

    // ------------------------------------------------------------------
    // State classification
    // ------------------------------------------------------------------
    let mut arch_registers: Vec<RegisterId> = vec![
        pc.id(),
        mode.id(),
        mepc.id(),
        mcause.id(),
        mtvec.id(),
        pmpaddr0.id(),
        pmpaddr1.id(),
        pmpcfg0.id(),
        pmpcfg1.id(),
        cycle.id(),
    ];
    arch_registers.extend(xregs.iter().map(|r| r.id()));
    let mut micro_registers: Vec<RegisterId> = vec![
        if_id_valid.id(),
        if_id_pc.id(),
        if_id_instr.id(),
        id_ex_valid.id(),
        id_ex_pc.id(),
        id_ex_rd.id(),
        id_ex_rs1.id(),
        id_ex_rs2.id(),
        id_ex_rs1_data.id(),
        id_ex_rs2_data.id(),
        id_ex_imm.id(),
        id_ex_alu_op.id(),
        id_ex_is_load.id(),
        id_ex_is_store.id(),
        id_ex_is_branch.id(),
        id_ex_branch_is_bne.id(),
        id_ex_is_jal.id(),
        id_ex_is_lui.id(),
        id_ex_uses_imm.id(),
        id_ex_writes_rd.id(),
        id_ex_is_csr.id(),
        id_ex_csr_write.id(),
        id_ex_csr_set.id(),
        id_ex_csr_addr.id(),
        id_ex_is_mret.id(),
        id_ex_is_illegal.id(),
        ex_mem_valid.id(),
        ex_mem_pc.id(),
        ex_mem_rd.id(),
        ex_mem_writes_rd.id(),
        ex_mem_result.id(),
        ex_mem_is_load.id(),
        ex_mem_fault.id(),
        ex_mem_cause.id(),
        ex_mem_is_mret.id(),
        ex_mem_csr_write.id(),
        ex_mem_csr_addr.id(),
        ex_mem_csr_wdata.id(),
        mem_wb_valid.id(),
        mem_wb_pc.id(),
        mem_wb_rd.id(),
        mem_wb_writes_rd.id(),
        mem_wb_result.id(),
        mem_wb_fault.id(),
        mem_wb_cause.id(),
        mem_wb_is_mret.id(),
        mem_wb_csr_write.id(),
        mem_wb_csr_addr.id(),
        mem_wb_csr_wdata.id(),
        replay_done.id(),
    ];
    micro_registers.extend(cache.logic_registers.iter().copied());

    let instance = SocInstance {
        prefix: prefix.to_string(),
        config: config.clone(),
        imem_instr,
        mem_rdata,
        imem_addr: pc.value(),
        mem_req_valid: cache.mem_req_valid,
        mem_req_write: cache.mem_req_write,
        mem_req_addr: cache.mem_req_addr,
        mem_req_wdata: cache.mem_req_wdata,
        mem_read_pending: cache.refill_active,
        mem_read_resp_now: cache.refill_done,
        mem_read_addr: cache.refill_addr,
        no_ongoing_protected_access,
        cache_monitor_valid: cache.monitor_valid,
        pipeline_monitor_valid,
        secure_sysw_ok,
        secret_protected,
        secret_line_present: cache.secret_line_present,
        flush: wb_flush,
        global_stall,
        ex_mem_blocked,
        mem_wb_blocked,
        ex_mem_fault_blocked,
        mem_wb_fault_blocked,
        trap_taken,
        pc: pc.value(),
        mode: mode.value(),
        cycle: cycle.value(),
        regfile: xregs.iter().map(|r| r.value()).collect(),
        arch_registers,
        micro_registers,
        memory_registers: cache.data_registers.clone(),
        secret_line_data_register: cache.secret_line_data_register,
    };
    n.pop_scope();
    instance
}
