//! The iterative UPEC methodology (paper Fig. 5) and the inductive P-alert
//! closure proof (paper Sec. VI).

use crate::{
    full_commitment, Alert, AlertKind, SecretScenario, StateClass, UpecModel, UpecOptions,
    UpecOutcome,
};
use bmc::{UnrollOptions, Unrolling};
use sat::SatResult;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Final security verdict of a methodology run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No alert can reach an architectural register within the window and the
    /// collected P-alerts were shown not to be extensible (or none occurred).
    Secure,
    /// An L-alert was found: the design has a covert channel.
    Insecure,
    /// The analysis ran out of solver budget before reaching a verdict.
    Inconclusive,
}

/// Report of one methodology run (one column of the paper's Table I, or one
/// design variant of Table II).
#[derive(Debug, Clone)]
pub struct MethodologyReport {
    /// Scenario analysed.
    pub scenario: SecretScenario,
    /// Window length used.
    pub window: usize,
    /// Verdict.
    pub verdict: Verdict,
    /// Every alert produced during the iteration, in order of discovery.
    pub alerts: Vec<Alert>,
    /// Union of all registers named by P-alerts.
    pub p_alert_registers: BTreeSet<String>,
    /// Total wall-clock time of all property checks.
    pub proof_runtime: Duration,
    /// Number of property-check iterations.
    pub iterations: usize,
}

impl MethodologyReport {
    /// Number of P-alerts found.
    pub fn p_alert_count(&self) -> usize {
        self.alerts
            .iter()
            .filter(|a| a.kind == AlertKind::PAlert)
            .count()
    }

    /// Renders a short human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: window {}, {:?}, {} P-alerts over {} registers, {} iterations, {:.2?}",
            self.scenario.label(),
            self.window,
            self.verdict,
            self.p_alert_count(),
            self.p_alert_registers.len(),
            self.iterations,
            self.proof_runtime,
        )
    }
}

/// Runs the iterative UPEC methodology of paper Fig. 5.
///
/// Starting from the full commitment (every architectural and
/// microarchitectural register), each counterexample is classified:
///
/// * **L-alert** — the design is insecure; the iteration stops.
/// * **P-alert** — the differing microarchitectural registers are recorded,
///   removed from the proof obligation, and the property is re-checked.
///
/// The process terminates because each P-alert removes at least one register
/// from the commitment.
///
/// Every iteration re-solves the property with a smaller obligation, so the
/// whole loop runs inside one
/// [`IncrementalSession`](crate::engine::IncrementalSession): the unrolled
/// miter and all learned solver state persist across iterations instead of
/// being rebuilt per check.
pub fn run_methodology(model: &UpecModel, options: UpecOptions) -> MethodologyReport {
    let mut session = crate::engine::IncrementalSession::with_options(model, options);
    let start = Instant::now();
    let mut commitment = full_commitment(model);
    let mut alerts = Vec::new();
    let mut p_alert_registers = BTreeSet::new();
    let mut iterations = 0;
    let verdict = loop {
        iterations += 1;
        match session.check_bound(options.window, &commitment) {
            UpecOutcome::Proven(_) => break Verdict::Secure,
            UpecOutcome::Unknown(_) => break Verdict::Inconclusive,
            UpecOutcome::Violated(alert, _) => {
                let is_l = alert.kind == AlertKind::LAlert;
                if is_l {
                    alerts.push(alert);
                    break Verdict::Insecure;
                }
                for reg in &alert.microarchitectural_differences {
                    p_alert_registers.insert(reg.clone());
                    commitment.remove(reg);
                }
                alerts.push(alert);
                if commitment.is_empty() {
                    break Verdict::Secure;
                }
            }
        }
    };
    MethodologyReport {
        scenario: model.scenario(),
        window: options.window,
        verdict,
        alerts,
        p_alert_registers,
        proof_runtime: start.elapsed(),
        iterations,
    }
}

/// Outcome of the inductive P-alert closure proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClosureOutcome {
    /// The P-alert set is closed: differences confined to the alerted
    /// registers (under their blocking conditions) can never propagate to an
    /// architectural register, so the design is secure beyond the bounded
    /// window.
    Closed {
        /// Wall-clock time of the proof.
        runtime: Duration,
    },
    /// The induction step failed; the differing set can grow beyond the
    /// alerted registers (either a deeper analysis or a real leak).
    NotClosed {
        /// Registers that newly differed in the failing step.
        escaping_registers: Vec<String>,
        /// Wall-clock time of the proof.
        runtime: Duration,
    },
    /// The solver budget was exhausted.
    Unknown {
        /// Wall-clock time of the proof.
        runtime: Duration,
    },
}

impl ClosureOutcome {
    /// Whether the alert set was proven closed.
    pub fn is_closed(&self) -> bool {
        matches!(self, ClosureOutcome::Closed { .. })
    }
}

/// Inductive closure proof for a set of P-alerting registers (paper Sec. VI).
///
/// The inductive invariant is:
///
/// * every architectural register pair is equal,
/// * every microarchitectural pair outside the alert set is equal,
/// * every pair inside the alert set is either equal or its stage is blocked
///   from committing in both instances (the per-register blocking condition
///   identified during P-alert diagnosis),
/// * the cache data arrays are equal except for the secret's line.
///
/// The proof assumes the invariant (and the UPEC side constraints) at an
/// arbitrary time point and shows it still holds one clock cycle later. If it
/// does, no sequence of P-alerts can ever grow into an L-alert, completing
/// the security argument for the bounded methodology run.
pub fn prove_alert_closure(
    model: &UpecModel,
    alert_registers: &BTreeSet<String>,
    conflict_limit: Option<u64>,
) -> ClosureOutcome {
    let start = Instant::now();
    let options = UnrollOptions {
        use_initial_values: false,
        conflict_limit,
        ..UnrollOptions::default()
    };
    // Pairs outside the alert set start structurally equal; alerted pairs
    // keep independent frame-0 variables because the invariant only requires
    // them to be equal-or-blocked.
    let aliases: Vec<_> = model
        .pairs()
        .iter()
        .filter(|p| p.class != StateClass::Memory && !alert_registers.contains(&p.name))
        .map(|p| (p.signal2, p.signal1))
        .collect();
    let mut unrolling = Unrolling::with_compiled(
        model.netlist(),
        std::sync::Arc::clone(model.compiled_transition()),
        options,
        &aliases,
    );
    unrolling.extend_to(1);

    // Side constraints in both frames.
    for constraint in model.window_constraints() {
        for frame in 0..=1 {
            unrolling
                .assume_signal_true(frame, constraint.signal)
                .expect("window constraint is a single bit");
        }
    }
    for constraint in model.initial_constraints() {
        unrolling
            .assume_signal_true(0, constraint.signal)
            .expect("initial constraint is a single bit");
    }
    // Memory equivalence must also be maintained, so it is part of the
    // invariant (assumed at 0, proven at 1).
    let memory_equivalence = model.memory_equivalence();

    // Assume the invariant at frame 0.
    for pair in model.pairs() {
        if pair.class == StateClass::Memory {
            continue;
        }
        if alert_registers.contains(&pair.name) {
            unrolling
                .assume_signal_true(0, pair.equal_or_blocked)
                .expect("equal_or_blocked is a single bit");
        } else {
            unrolling
                .assume_signals_equal(0, pair.signal1, pair.signal2)
                .expect("paired registers have equal widths");
        }
    }

    // Prove the invariant at frame 1.
    let mut obligation = Vec::new();
    for pair in model.pairs() {
        if pair.class == StateClass::Memory {
            continue;
        }
        let signal = if alert_registers.contains(&pair.name) {
            pair.equal_or_blocked
        } else {
            pair.equal
        };
        let lit = unrolling.bit_lit(1, signal).expect("single bit");
        obligation.push((pair.name.clone(), lit));
    }
    let mem_lit = unrolling
        .bit_lit(1, memory_equivalence)
        .expect("single bit");
    obligation.push(("memory equivalence".to_string(), mem_lit));
    unrolling.add_clause(obligation.iter().map(|(_, l)| !*l));

    match unrolling.solve(&[]) {
        SatResult::Unsat => ClosureOutcome::Closed {
            runtime: start.elapsed(),
        },
        SatResult::Unknown => ClosureOutcome::Unknown {
            runtime: start.elapsed(),
        },
        SatResult::Sat(sat_model) => {
            let escaping = obligation
                .iter()
                .filter(|(_, l)| !sat_model.lit_is_true(*l))
                .map(|(name, _)| name.clone())
                .collect();
            ClosureOutcome::NotClosed {
                escaping_registers: escaping,
                runtime: start.elapsed(),
            }
        }
    }
}

/// Grows a P-alert set to its inductive closure (paper Sec. VI).
///
/// The registers named by the bounded methodology's P-alerts are a *seed*:
/// a difference confined to them may, one cycle later, surface in a
/// neighbouring pipeline register that no bounded counterexample happened to
/// name. [`prove_alert_closure`] reports such registers as *escaping*; as
/// long as every escapee is microarchitectural and has a blocking condition
/// (so the weaker equal-or-blocked invariant applies to it), it is sound to
/// add it to the alert set and retry. The iteration reaches a fixpoint
/// because the candidate set is finite and grows monotonically.
///
/// Returns the final register set together with the final outcome:
/// [`ClosureOutcome::Closed`] on success, or the outcome of the last attempt
/// when an escapee is architectural or unblockable (a genuine leak
/// candidate), when the set stops growing, or when `max_iterations` is
/// exhausted.
pub fn close_alert_set(
    model: &UpecModel,
    alert_registers: &BTreeSet<String>,
    conflict_limit: Option<u64>,
    max_iterations: usize,
) -> (BTreeSet<String>, ClosureOutcome) {
    let mut set = alert_registers.clone();
    let mut outcome = prove_alert_closure(model, &set, conflict_limit);
    for _ in 1..max_iterations.max(1) {
        let ClosureOutcome::NotClosed {
            escaping_registers, ..
        } = &outcome
        else {
            break;
        };
        // Decide about every escapee before mutating the set, so a mixed
        // escape (blockable + architectural) returns the set the reported
        // outcome was actually proven against.
        let mut additions: Vec<String> = Vec::new();
        for name in escaping_registers {
            match model.pair(name) {
                Some(pair)
                    if pair.class == StateClass::Microarchitectural
                        && pair.equal_or_blocked != pair.equal =>
                {
                    additions.push(name.clone());
                }
                // An architectural or unblockable escapee cannot soundly be
                // tolerated — report the failure as is (`set` is untouched,
                // so it is exactly the set this outcome was proven against).
                _ => return (set, outcome.clone()),
            }
        }
        let mut grew = false;
        for name in additions {
            grew |= set.insert(name);
        }
        if !grew {
            break;
        }
        outcome = prove_alert_closure(model, &set, conflict_limit);
    }
    (set, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc::{SocConfig, SocVariant};

    fn tiny(variant: SocVariant) -> SocConfig {
        SocConfig::new(variant)
            .with_registers(4)
            .with_cache_lines(2)
            .with_miss_latency(1)
            .with_store_latency(1)
    }

    #[test]
    fn methodology_proves_the_uncached_case_secure_without_alerts() {
        let model = UpecModel::new(&tiny(SocVariant::Secure), SecretScenario::NotInCache);
        let report = run_methodology(&model, UpecOptions::window(2));
        assert_eq!(report.verdict, Verdict::Secure, "{}", report.summary());
        assert_eq!(report.p_alert_count(), 0);
        assert_eq!(report.iterations, 1);
    }

    #[test]
    fn methodology_collects_p_alerts_for_the_secure_cached_case() {
        let model = UpecModel::new(&tiny(SocVariant::Secure), SecretScenario::InCache);
        let report = run_methodology(&model, UpecOptions::window(2));
        assert_eq!(report.verdict, Verdict::Secure, "{}", report.summary());
        assert!(report.p_alert_count() >= 1);
        assert!(!report.p_alert_registers.is_empty());
        // The classic first P-alert: the cache's hit data captured into the
        // EX/MEM result register.
        assert!(
            report
                .p_alert_registers
                .iter()
                .any(|r| r.starts_with("ex_mem") || r.starts_with("mem_wb")),
            "registers: {:?}",
            report.p_alert_registers
        );
    }

    #[test]
    fn methodology_flags_the_orc_variant_as_insecure() {
        // The Orc L-alert is already reachable at window 2; deeper windows
        // only make the queries more expensive without changing the verdict.
        let model = UpecModel::new(&tiny(SocVariant::Orc), SecretScenario::InCache);
        let report = run_methodology(&model, UpecOptions::window(2));
        assert_eq!(report.verdict, Verdict::Insecure, "{}", report.summary());
        let last = report.alerts.last().expect("an L-alert terminates the run");
        assert_eq!(last.kind, AlertKind::LAlert);
    }

    #[test]
    fn closure_proof_succeeds_for_the_secure_design() {
        let model = UpecModel::new(&tiny(SocVariant::Secure), SecretScenario::InCache);
        let report = run_methodology(&model, UpecOptions::window(2));
        assert_eq!(report.verdict, Verdict::Secure);
        // The bounded P-alerts seed the set; the fixpoint iteration may pull
        // in neighbouring blockable pipeline registers before it closes.
        let (closed_set, closure) = close_alert_set(&model, &report.p_alert_registers, None, 8);
        assert!(closure.is_closed(), "closure: {closure:?}");
        assert!(closed_set.is_superset(&report.p_alert_registers));
    }
}
