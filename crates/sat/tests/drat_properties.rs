//! Fuzzed validation of the DRAT proof logger and the independent checker on
//! random CNFs, generated deterministically with [`rtl::SplitMix64`].
//!
//! Properties:
//! 1. every unsat verdict's proof log checks (with and without the
//!    simplification pipeline in the loop), and the trimmed log re-checks,
//! 2. corrupting the proof — dropping every lemma, or replacing a lemma with
//!    a clause that is not a consequence — makes the checker reject,
//! 3. verdicts with logging on and logging off agree.

use rtl::SplitMix64;
use sat::drat::{check, trim, CheckError, ProofLog, ProofStep};
use sat::{Lit, SatResult, SimplifyConfig, Solver, Var};

/// A random clause with 2..=3 distinct variables (no unit clauses: a
/// unit-free axiom set cannot be refuted by propagation alone, which property
/// 2's lemma-free rejection relies on).
fn random_clause(rng: &mut SplitMix64, num_vars: usize) -> Vec<Lit> {
    let len = rng.gen_range(2..=3) as usize;
    let mut vars: Vec<usize> = Vec::new();
    while vars.len() < len {
        let v = rng.gen_u64_below(num_vars as u64) as usize;
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    vars.iter()
        .map(|&v| Lit::new(Var::from_index(v), rng.gen_bool()))
        .collect()
}

fn random_formula(rng: &mut SplitMix64) -> (usize, Vec<Vec<Lit>>) {
    // Around the 3-SAT phase transition so a healthy share of cases is unsat.
    let num_vars = rng.gen_range(5..12) as usize;
    let num_clauses = (num_vars as u64 * 5).saturating_sub(rng.gen_u64_below(num_vars as u64));
    let clauses = (0..num_clauses)
        .map(|_| random_clause(rng, num_vars))
        .collect();
    (num_vars, clauses)
}

fn solve_logged(clauses: &[Vec<Lit>], num_vars: usize, simplify: bool) -> (SatResult, ProofLog) {
    let mut solver = Solver::new();
    solver.reserve_vars(num_vars);
    solver.start_proof_log();
    for c in clauses {
        solver.add_clause(c.iter().copied());
    }
    if simplify {
        // Frozen variables keep the clause set meaningful to outside
        // observers; here nothing needs freezing — the certificate claim is
        // about the axiom set, which is already logged.
        let _ = solver.simplify_with(&SimplifyConfig::default());
    }
    let result = solver.solve();
    let log = solver.take_proof_log().expect("logging was on");
    (result, log)
}

/// Property 1: every unsat log checks and its trimmed form re-checks with
/// no more lemmas than the original.
#[test]
fn unsat_logs_check_and_trim() {
    let mut rng = SplitMix64::new(0xd8a7_0001);
    let mut unsat_seen = 0;
    for case in 0..48 {
        let (num_vars, clauses) = random_formula(&mut rng);
        for simplify in [false, true] {
            let (result, log) = solve_logged(&clauses, num_vars, simplify);
            if !matches!(result, SatResult::Unsat) {
                continue;
            }
            unsat_seen += 1;
            let report =
                check(&log, &[]).unwrap_or_else(|e| panic!("case {case} simplify={simplify}: {e}"));
            assert_eq!(report.axioms, clauses.len(), "case {case}");
            let (trimmed, _) = trim(&log, &[])
                .unwrap_or_else(|e| panic!("case {case} simplify={simplify} trim: {e}"));
            let report2 = check(&trimmed, &[])
                .unwrap_or_else(|e| panic!("case {case} simplify={simplify} recheck: {e}"));
            assert!(
                report2.lemmas_checked <= report.lemmas_checked,
                "case {case}: trim must not grow the proof"
            );
        }
    }
    assert!(unsat_seen >= 8, "generator produced too few unsat cases");
}

/// Property 2: mutating the proof makes the checker reject. Two deterministic
/// corruption modes: (a) dropping every lemma leaves a unit-free axiom set
/// that propagation alone cannot refute; (b) replacing a lemma of the trimmed
/// proof with a unit over a fresh, unconstrained variable is never RUP.
#[test]
fn corrupted_logs_are_rejected() {
    let mut rng = SplitMix64::new(0xd8a7_0002);
    let mut tested = 0;
    for _case in 0..48 {
        let (num_vars, clauses) = random_formula(&mut rng);
        let (result, log) = solve_logged(&clauses, num_vars, false);
        if !matches!(result, SatResult::Unsat) {
            continue;
        }
        tested += 1;

        // (a) Axioms alone: no refutation reachable by unit propagation.
        let mut axioms_only = ProofLog::new();
        for (step, lits) in log.events() {
            if step == ProofStep::Axiom {
                axioms_only.push(ProofStep::Axiom, lits);
            }
        }
        assert_eq!(check(&axioms_only, &[]), Err(CheckError::NoRefutation));

        // (b) Replace each lemma of the trimmed proof (bounded sample) with a
        // unit over a fresh variable; the lemma is unconstrained, so it can
        // never be a RUP consequence, and because the trimmed proof has no
        // unused lemmas the corruption cannot be skipped over.
        let (trimmed, _) = trim(&log, &[]).expect("valid log trims");
        let events: Vec<(ProofStep, Vec<Lit>)> =
            trimmed.events().map(|(s, l)| (s, l.to_vec())).collect();
        let lemma_positions: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, (s, _))| *s == ProofStep::Add)
            .map(|(i, _)| i)
            .collect();
        let fresh = Lit::new(Var::from_index(num_vars + 7), true);
        for &target in lemma_positions.iter().take(6) {
            let mut mutated = ProofLog::new();
            for (i, (step, lits)) in events.iter().enumerate() {
                if i == target {
                    mutated.push(ProofStep::Add, &[fresh]);
                } else {
                    mutated.push(*step, lits);
                }
            }
            match check(&mutated, &[]) {
                Err(_) => {}
                Ok(report) => {
                    // The corrupted lemma must at minimum have been rejected
                    // or the refutation reached without it; reaching a
                    // refutation before the mutated event is the only honest
                    // way this can still pass.
                    let refutation = report
                        .refutation_event
                        .expect("successful check has a refutation");
                    assert!(
                        refutation < target,
                        "mutated lemma at {target} must be rejected, \
                         refutation claimed at {refutation}"
                    );
                }
            }
        }
    }
    assert!(tested >= 4, "generator produced too few unsat cases");
}

/// Property 3: proof logging is observational — verdicts with logging on and
/// off agree in every configuration.
#[test]
fn logging_does_not_change_verdicts() {
    let mut rng = SplitMix64::new(0xd8a7_0003);
    for case in 0..48 {
        let (num_vars, clauses) = random_formula(&mut rng);
        for simplify in [false, true] {
            let (logged, _) = solve_logged(&clauses, num_vars, simplify);
            let mut plain = Solver::new();
            plain.reserve_vars(num_vars);
            for c in &clauses {
                plain.add_clause(c.iter().copied());
            }
            if simplify {
                let _ = plain.simplify_with(&SimplifyConfig::default());
            }
            let unlogged = plain.solve();
            assert_eq!(
                matches!(logged, SatResult::Unsat),
                matches!(unlogged, SatResult::Unsat),
                "case {case} simplify={simplify}: verdicts diverge"
            );
        }
    }
}

/// Certificates under assumptions: an activation-literal query that comes
/// back unsat yields a log that checks with the same assumptions, exactly as
/// the BMC engine uses it.
#[test]
fn assumption_certificates_check() {
    let mut rng = SplitMix64::new(0xd8a7_0004);
    let mut tested = 0;
    for _case in 0..48 {
        let (num_vars, clauses) = random_formula(&mut rng);
        let mut solver = Solver::new();
        solver.reserve_vars(num_vars);
        solver.start_proof_log();
        for c in &clauses {
            solver.add_clause(c.iter().copied());
        }
        let act = solver.new_var().positive();
        // Guarded obligation: under `act`, the first clause must be falsified.
        let Some(first) = clauses.first() else {
            continue;
        };
        for &l in first {
            solver.add_clause([!act, !l]);
        }
        if solver.solve_with_assumptions(&[act]).is_unsat() {
            tested += 1;
            let log = solver.take_proof_log().expect("logging was on");
            check(&log, &[act]).expect("assumption certificate checks");
            let (trimmed, _) = trim(&log, &[act]).expect("trims");
            check(&trimmed, &[act]).expect("trimmed assumption certificate checks");
        }
    }
    assert!(tested >= 4, "generator produced too few unsat cases");
}
