//! SoC generator configuration: design variants and microarchitectural knobs.

/// The design variants evaluated in the UPEC paper (Sec. VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocVariant {
    /// The original, secure design: killed or faulting memory transactions
    /// never reach the cache interface, cache-line refills are cancelled on a
    /// pipeline flush, and the dependent-load replay buffer is in place.
    Secure,
    /// The Meltdown-style variant: a cache-line refill triggered by a killed
    /// (transient) load is *not* cancelled when the exception flushes the
    /// pipeline, so the cache footprint depends on the secret.
    MeltdownStyle,
    /// The Orc variant: the one-cycle replay buffer between dependent loads
    /// is bypassed, so a transient load whose address is forwarded from the
    /// secret reaches the cache interface before the exception and can
    /// create a secret-dependent read-after-write hazard stall.
    Orc,
    /// The PMP lock-bug variant (paper Sec. VII-C): the ISA rule that locking
    /// a TOR region also locks the region's start-address register is not
    /// implemented, so privileged software can silently move the base of a
    /// locked protected region.
    PmpLockBug,
}

impl SocVariant {
    /// Whether this is the unmodified, secure design.
    pub fn is_secure(&self) -> bool {
        matches!(self, SocVariant::Secure)
    }

    /// Human-readable name used in reports and benches.
    pub fn name(&self) -> &'static str {
        match self {
            SocVariant::Secure => "secure",
            SocVariant::MeltdownStyle => "meltdown-style",
            SocVariant::Orc => "orc",
            SocVariant::PmpLockBug => "pmp-lock-bug",
        }
    }
}

/// Configuration of the MiniRV SoC generator.
///
/// The defaults describe a small but complete system: an in-order 5-stage
/// RV32-subset core with eight architectural registers, a direct-mapped
/// write-allocate data cache with a pending-write buffer, physical memory
/// protection (PMP) with two TOR entries, and a fixed-latency memory.
///
/// # Examples
///
/// ```
/// use soc::{SocConfig, SocVariant};
///
/// let config = SocConfig::new(SocVariant::Orc).with_cache_lines(8);
/// assert_eq!(config.cache_lines, 8);
/// assert!(config.replay_buffer_bypass);
/// assert!(!config.variant().is_secure());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocConfig {
    variant: SocVariant,
    /// Number of architectural registers implemented (2..=32). Programs must
    /// only use `x0..x{n-1}`.
    pub num_registers: u32,
    /// Number of direct-mapped cache lines (power of two, one 32-bit word per
    /// line).
    pub cache_lines: u32,
    /// Cycles a cache-line refill takes after the miss is detected.
    pub miss_latency: u32,
    /// Cycles a pending (accepted) store needs before it drains.
    pub store_latency: u32,
    /// Word-aligned byte address of the secret datum.
    pub secret_addr: u32,
    /// Inclusive base of the PMP-protected region (word aligned).
    pub protected_base: u32,
    /// Exclusive top of the PMP-protected region (word aligned).
    pub protected_top: u32,
    /// Machine-mode trap vector address.
    pub trap_vector: u32,
    // --- microarchitectural security knobs (derived from the variant) ---
    /// Orc knob: bypass the one-cycle replay buffer for loads whose address
    /// is forwarded from the immediately preceding load.
    pub replay_buffer_bypass: bool,
    /// Meltdown knob (part 1): issue cache requests even for instructions
    /// being killed by a trap flush in the same cycle.
    pub issue_killed_requests: bool,
    /// Meltdown knob (part 2): when `false`, an in-flight refill is *not*
    /// cancelled by a pipeline flush.
    pub cancel_refill_on_flush: bool,
    /// PMP bug knob: omit the "TOR lock also locks the preceding address
    /// register" rule required by the RISC-V privileged specification.
    pub pmp_tor_lock_bug: bool,
}

impl SocConfig {
    /// Creates the configuration for a design variant with default geometry.
    pub fn new(variant: SocVariant) -> Self {
        let mut config = Self {
            variant,
            num_registers: 8,
            cache_lines: 4,
            miss_latency: 3,
            store_latency: 2,
            secret_addr: 0x200,
            protected_base: 0x200,
            protected_top: 0x240,
            trap_vector: 0x100,
            replay_buffer_bypass: false,
            issue_killed_requests: false,
            cancel_refill_on_flush: true,
            pmp_tor_lock_bug: false,
        };
        match variant {
            SocVariant::Secure => {}
            SocVariant::MeltdownStyle => {
                config.issue_killed_requests = true;
                config.cancel_refill_on_flush = false;
            }
            SocVariant::Orc => {
                config.replay_buffer_bypass = true;
            }
            SocVariant::PmpLockBug => {
                config.pmp_tor_lock_bug = true;
            }
        }
        config
    }

    /// The design variant this configuration was derived from.
    pub fn variant(&self) -> SocVariant {
        self.variant
    }

    /// Sets the number of cache lines (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `lines` is not a power of two or is smaller than 2.
    pub fn with_cache_lines(mut self, lines: u32) -> Self {
        assert!(
            lines.is_power_of_two() && lines >= 2,
            "cache lines must be a power of two >= 2"
        );
        self.cache_lines = lines;
        self
    }

    /// Sets the number of architectural registers (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two in `2..=32`.
    pub fn with_registers(mut self, n: u32) -> Self {
        assert!(
            n.is_power_of_two() && (2..=32).contains(&n),
            "register count must be a power of two in 2..=32"
        );
        self.num_registers = n;
        self
    }

    /// Sets the refill miss latency (builder style).
    pub fn with_miss_latency(mut self, cycles: u32) -> Self {
        assert!(cycles >= 1, "miss latency must be at least one cycle");
        self.miss_latency = cycles;
        self
    }

    /// Sets the pending-store drain latency (builder style).
    pub fn with_store_latency(mut self, cycles: u32) -> Self {
        assert!(cycles >= 1, "store latency must be at least one cycle");
        self.store_latency = cycles;
        self
    }

    /// Number of index bits used by the direct-mapped cache.
    pub fn index_bits(&self) -> u32 {
        self.cache_lines.trailing_zeros()
    }

    /// Number of bits used to select an architectural register.
    pub fn reg_bits(&self) -> u32 {
        self.num_registers.trailing_zeros().max(1)
    }

    /// The cache line index the secret address maps to.
    pub fn secret_index(&self) -> u32 {
        (self.secret_addr >> 2) & (self.cache_lines - 1)
    }

    /// The tag of the secret address.
    pub fn secret_tag(&self) -> u32 {
        (self.secret_addr >> 2) >> self.index_bits()
    }

    /// Memory-transaction depth `d_MEM` of the paper (Sec. V): the number of
    /// clock cycles of the longest memory transaction, used as the default
    /// UPEC window length. When the secret can be in the cache this is the
    /// hit/stall path; when it is not cached it includes a full refill.
    pub fn d_mem(&self, secret_in_cache: bool) -> usize {
        let pipeline_depth = 5;
        if secret_in_cache {
            pipeline_depth + self.store_latency as usize
        } else {
            pipeline_depth + (self.miss_latency as usize) + self.store_latency as usize
        }
    }
}

impl Default for SocConfig {
    fn default() -> Self {
        Self::new(SocVariant::Secure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_set_their_knobs() {
        let secure = SocConfig::new(SocVariant::Secure);
        assert!(!secure.replay_buffer_bypass);
        assert!(!secure.issue_killed_requests);
        assert!(secure.cancel_refill_on_flush);
        assert!(!secure.pmp_tor_lock_bug);

        let orc = SocConfig::new(SocVariant::Orc);
        assert!(orc.replay_buffer_bypass);
        assert!(orc.cancel_refill_on_flush);

        let meltdown = SocConfig::new(SocVariant::MeltdownStyle);
        assert!(meltdown.issue_killed_requests);
        assert!(!meltdown.cancel_refill_on_flush);

        let pmp = SocConfig::new(SocVariant::PmpLockBug);
        assert!(pmp.pmp_tor_lock_bug);
    }

    #[test]
    fn geometry_helpers() {
        let c = SocConfig::new(SocVariant::Secure)
            .with_cache_lines(8)
            .with_registers(16);
        assert_eq!(c.index_bits(), 3);
        assert_eq!(c.reg_bits(), 4);
        // secret_addr 0x200 => word 0x80 => index 0 for 8 lines, tag 0x10.
        assert_eq!(c.secret_index(), 0);
        assert_eq!(c.secret_tag(), 0x10);
    }

    #[test]
    fn d_mem_is_longer_when_secret_is_not_cached() {
        let c = SocConfig::default();
        assert!(c.d_mem(false) > c.d_mem(true));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_cache_lines_rejected() {
        let _ = SocConfig::default().with_cache_lines(3);
    }

    #[test]
    fn variant_names() {
        assert_eq!(SocVariant::Secure.name(), "secure");
        assert_eq!(SocVariant::Orc.name(), "orc");
        assert!(SocVariant::Secure.is_secure());
        assert!(!SocVariant::MeltdownStyle.is_secure());
    }
}
