//! Fuzzed properties of the deterministic budget and cancellation layer
//! ([`sat::Budget`] / [`sat::CancelToken`]), on random CNFs generated with
//! [`rtl::SplitMix64`].
//!
//! Properties:
//! 1. resume-after-exhaustion agrees with the uninterrupted solve: driving
//!    a budgeted solver through as many tiny episodes as it takes reaches
//!    exactly the verdict a twin without a budget reaches in one call;
//! 2. identical budgets give byte-identical stats: two budgeted runs of the
//!    same formula produce equal [`sat::SolverStats`] (the whole struct,
//!    not just the verdict) and stop with the same [`sat::StopCause`];
//! 3. cancellation never corrupts a later un-budgeted solve on the same
//!    solver: after a cancelled episode (raised token, then reset) the
//!    solver still reaches the uninterrupted verdict and its internal
//!    invariants hold.

use rtl::SplitMix64;
use sat::{Budget, CancelToken, Lit, SatResult, Solver, SolverStats, StopCause, Var};

/// A random clause with 2..=3 distinct variables.
fn random_clause(rng: &mut SplitMix64, num_vars: usize) -> Vec<Lit> {
    let len = rng.gen_range(2..=3) as usize;
    let mut vars: Vec<usize> = Vec::new();
    while vars.len() < len {
        let v = rng.gen_u64_below(num_vars as u64) as usize;
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    vars.iter()
        .map(|&v| Lit::new(Var::from_index(v), rng.gen_bool()))
        .collect()
}

/// A random formula near the phase transition, so the case mix covers both
/// verdicts and the budget checkpoints actually fire.
fn random_formula(rng: &mut SplitMix64) -> (usize, Vec<Vec<Lit>>) {
    let num_vars = rng.gen_range(8..16) as usize;
    let num_clauses = (num_vars as u64 * 5).saturating_sub(rng.gen_u64_below(num_vars as u64));
    let clauses = (0..num_clauses)
        .map(|_| random_clause(rng, num_vars))
        .collect();
    (num_vars, clauses)
}

fn fresh_solver(num_vars: usize, clauses: &[Vec<Lit>]) -> Solver {
    let mut solver = Solver::new();
    solver.reserve_vars(num_vars);
    for c in clauses {
        solver.add_clause(c.iter().copied());
    }
    solver
}

/// Drives a budgeted solver to a definitive verdict, counting the episodes
/// spent. Every `Unknown` must carry `StopCause::BudgetExhausted`. Slices
/// grow geometrically — the documented progress contract for decision and
/// propagation caps, which leave no trace when they fire before the first
/// conflict of an episode.
fn solve_in_slices(solver: &mut Solver, mut budget: Budget) -> (SatResult, u64) {
    let mut episodes = 0u64;
    loop {
        solver.set_budget(budget);
        episodes += 1;
        assert!(episodes < 10_000, "budgeted solve failed to converge");
        match solver.solve() {
            SatResult::Unknown => {
                assert_eq!(solver.last_stop(), Some(StopCause::BudgetExhausted));
                budget = Budget {
                    conflicts: budget.conflicts.map(|c| c.saturating_mul(2)),
                    propagations: budget.propagations.map(|c| c.saturating_mul(2)),
                    decisions: budget.decisions.map(|c| c.saturating_mul(2)),
                };
            }
            other => return (other, episodes),
        }
    }
}

#[test]
fn resume_after_exhaustion_agrees_with_the_uninterrupted_solve() {
    let mut rng = SplitMix64::new(0xb0d6_0001);
    let mut exhausted_cases = 0u64;
    for case in 0..60 {
        let (num_vars, clauses) = random_formula(&mut rng);
        let uninterrupted = fresh_solver(num_vars, &clauses).solve();

        // Cycle through all three budget units so every checkpoint is hit.
        let budget = match case % 3 {
            0 => Budget::conflicts(1),
            1 => Budget::default().with_decisions(1),
            _ => Budget::default().with_propagations(8),
        };
        let mut budgeted = fresh_solver(num_vars, &clauses);
        let (verdict, episodes) = solve_in_slices(&mut budgeted, budget);
        if episodes > 1 {
            exhausted_cases += 1;
        }
        assert_eq!(
            matches!(uninterrupted, SatResult::Unsat),
            matches!(verdict, SatResult::Unsat),
            "case {case}: resumed verdict diverges from the uninterrupted one"
        );
        if let SatResult::Sat(model) = &verdict {
            for (i, c) in clauses.iter().enumerate() {
                assert!(
                    c.iter().any(|&l| model.lit_is_true(l)),
                    "case {case}: clause {i} unsatisfied by the resumed model"
                );
            }
        }
        budgeted
            .debug_validate()
            .unwrap_or_else(|e| panic!("case {case}: invariants violated after resume: {e}"));
    }
    assert!(
        exhausted_cases >= 20,
        "only {exhausted_cases} cases ever exhausted a budget; the fuzz is toothless"
    );
}

#[test]
fn identical_budgets_give_byte_identical_stats() {
    let mut rng = SplitMix64::new(0xb0d6_0002);
    for case in 0..40 {
        let (num_vars, clauses) = random_formula(&mut rng);
        let budget = Budget::conflicts(4).with_propagations(500);
        let run = || {
            let mut solver = fresh_solver(num_vars, &clauses);
            solver.set_budget(budget);
            let mut trace: Vec<(bool, Option<StopCause>, SolverStats)> = Vec::new();
            for _ in 0..5 {
                let result = solver.solve();
                trace.push((
                    matches!(result, SatResult::Unknown),
                    solver.last_stop(),
                    solver.stats(),
                ));
                if !matches!(result, SatResult::Unknown) {
                    break;
                }
            }
            trace
        };
        let first = run();
        let second = run();
        assert_eq!(
            first, second,
            "case {case}: identical budgeted runs diverged in stats or stop causes"
        );
    }
}

#[test]
fn cancellation_never_corrupts_a_later_unbudgeted_solve() {
    let mut rng = SplitMix64::new(0xb0d6_0003);
    let mut cancelled_cases = 0u64;
    for case in 0..60 {
        let (num_vars, clauses) = random_formula(&mut rng);
        let uninterrupted = fresh_solver(num_vars, &clauses).solve();

        let mut solver = fresh_solver(num_vars, &clauses);
        let token = CancelToken::new();
        solver.set_cancel_token(Some(token.clone()));
        // Even cases cancel before the episode; odd cases leave the token
        // installed but unset, checking that an idle token never disturbs
        // the run. (The restart-boundary poll itself is exercised
        // deterministically by the solver's fault-injection unit tests —
        // `FaultKind::SpuriousCancellation` fires at exactly that point.)
        let raised = case % 2 == 0;
        if raised {
            token.cancel();
        }
        let cancelled = solver.solve();
        if raised {
            assert_eq!(cancelled, SatResult::Unknown, "case {case}");
            assert_eq!(solver.last_stop(), Some(StopCause::Cancelled));
            cancelled_cases += 1;
        }

        // Reset: the same solver must reach the uninterrupted verdict with
        // its invariants intact.
        token.reset();
        let resumed = solver.solve();
        assert_eq!(
            matches!(uninterrupted, SatResult::Unsat),
            matches!(resumed, SatResult::Unsat),
            "case {case}: verdict corrupted by a cancelled episode"
        );
        if let SatResult::Sat(model) = &resumed {
            for (i, c) in clauses.iter().enumerate() {
                assert!(
                    c.iter().any(|&l| model.lit_is_true(l)),
                    "case {case}: clause {i} unsatisfied after cancellation"
                );
            }
        }
        solver
            .debug_validate()
            .unwrap_or_else(|e| panic!("case {case}: invariants violated after cancel: {e}"));
        if raised {
            assert!(solver.stats().cancellations >= 1, "case {case}");
        }
    }
    assert_eq!(cancelled_cases, 30);
}
