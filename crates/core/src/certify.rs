//! Checkable verdict certificates (paper-level trust story).
//!
//! A UPEC verdict is only as trustworthy as the solver stack that produced
//! it. This module packages each query's outcome as a [`VerdictCertificate`]
//! that can be re-checked *without re-solving*, by machinery independent of
//! the CDCL search, clause-database reduction and CNF simplification that
//! could silently corrupt a verdict:
//!
//! * a **proven** bound carries the trimmed DRAT refutation of the query's
//!   frame CNF, replayed by the reverse-unit-propagation checker in
//!   [`sat::drat`];
//! * a **violated** bound carries the counterexample decoded into a concrete
//!   [`sim::WitnessTrace`], replayed on the word-level simulator to confirm
//!   that the committed register pairs really diverge as the alert claims.
//!
//! Certificates are produced by
//! [`IncrementalSession::check_bound_certified`](crate::engine::IncrementalSession::check_bound_certified)
//! and [`UpecEngine::check_certified`](crate::UpecEngine::check_certified);
//! the format and its soundness argument are documented in
//! `docs/certificates.md` at the repository root.

use crate::UpecModel;
use rtl::BitVec;
use sat::drat::{self, CheckError, CheckReport};
use sat::{Lit, ProofLog};
use sim::WitnessTrace;

/// Certificate of a *proven* bound: a trimmed DRAT refutation of the query's
/// CNF under its activation-literal assumptions.
#[derive(Debug, Clone)]
pub struct UnsatCertificate {
    /// Window length of the certified query.
    pub window: usize,
    /// The trimmed refutation log. Axioms are the clauses of the unrolled
    /// frame CNF (plus the guarded obligation clause) that the refutation
    /// actually touches — an unsatisfiable core — and lemmas are the derived
    /// clauses it depends on.
    pub proof: ProofLog,
    /// Literals the query assumed (the obligation's activation literal);
    /// the certificate claims *axioms ∧ assumptions* is unsatisfiable.
    pub assumptions: Vec<Lit>,
}

/// Certificate of a *violated* bound: a replayable counterexample stimulus
/// plus the register divergences it must reproduce.
#[derive(Debug, Clone)]
pub struct WitnessCertificate {
    /// Window length of the certified query.
    pub window: usize,
    /// The decoded per-cycle input/state stimulus.
    pub trace: WitnessTrace,
    /// Final-frame values `(pair name, instance 1, instance 2)` of every
    /// differing committed register pair, exactly as the alert reported them.
    pub expected_divergences: Vec<(String, BitVec, BitVec)>,
}

/// A checkable proof artifact for one UPEC query.
#[derive(Debug, Clone)]
pub enum VerdictCertificate {
    /// The bound was proven; the certificate is a DRAT refutation.
    Proof(UnsatCertificate),
    /// The bound was violated; the certificate is a replayable witness.
    Witness(WitnessCertificate),
}

/// Successful result of re-checking a certificate.
#[derive(Debug, Clone)]
pub enum CertificateCheck {
    /// The DRAT refutation replayed; the report carries checker effort
    /// counters (see [`sat::drat::CheckReport`]).
    Proof(CheckReport),
    /// The witness replayed and reproduced every expected divergence.
    Witness {
        /// Clock cycles simulated.
        cycles: usize,
        /// Number of register-pair divergences confirmed.
        divergences_confirmed: usize,
    },
}

/// Why a certificate failed to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// The DRAT checker rejected the refutation.
    Proof(CheckError),
    /// The witness trace failed to replay (a name did not resolve).
    Replay(sim::SimError),
    /// The witness claims a divergence on a register pair the model does not
    /// have.
    UnknownPair(String),
    /// The witness carries no divergences, so it certifies nothing.
    EmptyWitness,
    /// Replaying the witness produced different final register values than
    /// the alert recorded.
    DivergenceMismatch {
        /// Name of the mismatching register pair.
        name: String,
        /// Values the alert recorded (instance 1, instance 2).
        expected: (BitVec, BitVec),
        /// Values the replay produced (instance 1, instance 2).
        replayed: (BitVec, BitVec),
    },
}

impl std::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateError::Proof(e) => write!(f, "DRAT refutation rejected: {e}"),
            CertificateError::Replay(e) => write!(f, "witness replay failed: {e}"),
            CertificateError::UnknownPair(name) => {
                write!(f, "witness names unknown register pair `{name}`")
            }
            CertificateError::EmptyWitness => {
                write!(f, "witness certificate carries no divergences")
            }
            CertificateError::DivergenceMismatch {
                name,
                expected,
                replayed,
            } => write!(
                f,
                "register pair `{name}` diverged as {:?}/{:?} in replay, \
                 alert recorded {:?}/{:?}",
                replayed.0, replayed.1, expected.0, expected.1
            ),
        }
    }
}

impl std::error::Error for CertificateError {}

impl VerdictCertificate {
    /// Window length of the certified query.
    pub fn window(&self) -> usize {
        match self {
            VerdictCertificate::Proof(c) => c.window,
            VerdictCertificate::Witness(c) => c.window,
        }
    }

    /// Stable kind name (`"proof"` or `"witness"`), shared by telemetry and
    /// the bench binaries.
    pub fn kind_name(&self) -> &'static str {
        match self {
            VerdictCertificate::Proof(_) => "proof",
            VerdictCertificate::Witness(_) => "witness",
        }
    }

    /// Approximate in-memory size of the certificate, for reporting.
    pub fn size_bytes(&self) -> usize {
        match self {
            VerdictCertificate::Proof(c) => c.proof.size_bytes(),
            VerdictCertificate::Witness(c) => c.trace.size_bytes(),
        }
    }

    /// Re-checks the certificate against `model` without re-solving.
    ///
    /// * [`VerdictCertificate::Proof`]: replays the DRAT log through the
    ///   independent reverse-unit-propagation checker.
    /// * [`VerdictCertificate::Witness`]: replays the stimulus on a fresh
    ///   [`sim::Simulator`] for the miter netlist and confirms every
    ///   recorded divergence — values of both instances at the final cycle
    ///   must match the alert, and must actually differ.
    ///
    /// The check is wrapped in a `cert.check` telemetry span carrying the
    /// certificate's kind, window and size.
    ///
    /// # Errors
    ///
    /// Returns a [`CertificateError`] describing the first discrepancy.
    pub fn check(&self, model: &UpecModel) -> Result<CertificateCheck, CertificateError> {
        let mut span = obs::span("cert.check");
        span.attr_str("kind", self.kind_name());
        span.attr_u64("window", self.window() as u64);
        span.attr_u64("size_bytes", self.size_bytes() as u64);
        let result = match self {
            VerdictCertificate::Proof(c) => {
                span.attr_u64("events", c.proof.num_events() as u64);
                drat::check(&c.proof, &c.assumptions)
                    .map(CertificateCheck::Proof)
                    .map_err(CertificateError::Proof)
            }
            VerdictCertificate::Witness(c) => check_witness(c, model),
        };
        span.attr_str("result", if result.is_ok() { "ok" } else { "rejected" });
        result
    }
}

/// Replays a witness certificate and confirms its divergences.
fn check_witness(
    cert: &WitnessCertificate,
    model: &UpecModel,
) -> Result<CertificateCheck, CertificateError> {
    if cert.expected_divergences.is_empty() {
        return Err(CertificateError::EmptyWitness);
    }
    let sim = cert
        .trace
        .replay(model.netlist().clone())
        .map_err(CertificateError::Replay)?;
    for (name, value1, value2) in &cert.expected_divergences {
        if model.pair(name).is_none() {
            return Err(CertificateError::UnknownPair(name.clone()));
        }
        let full1 = format!("{}.{name}", model.soc1().prefix);
        let full2 = format!("{}.{name}", model.soc2().prefix);
        let replayed1 = sim
            .register_by_name(&full1)
            .map_err(CertificateError::Replay)?;
        let replayed2 = sim
            .register_by_name(&full2)
            .map_err(CertificateError::Replay)?;
        if replayed1 != *value1 || replayed2 != *value2 || value1 == value2 {
            return Err(CertificateError::DivergenceMismatch {
                name: name.clone(),
                expected: (*value1, *value2),
                replayed: (replayed1, replayed2),
            });
        }
    }
    Ok(CertificateCheck::Witness {
        cycles: cert.trace.cycles(),
        divergences_confirmed: cert.expected_divergences.len(),
    })
}
