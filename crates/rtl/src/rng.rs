//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace builds without any external dependencies, so the randomized
//! property tests, the co-simulation fuzzers and the portfolio scheduler's
//! diversification seeds all draw from this generator instead of the `rand`
//! crate. It is a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! implementation: tiny, fast, statistically solid for test-case generation
//! and — most importantly here — *reproducible*: a seed fully determines the
//! sequence on every platform.
//!
//! This is **not** a cryptographic generator and must never be used for
//! anything security-sensitive.

/// Deterministic SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use rtl::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same sequence
///
/// let roll = a.gen_range(1..=6);
/// assert!((1..=6).contains(&roll));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal sequences.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in a range (inclusive or exclusive), like
    /// `rand::Rng::gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R>(&mut self, range: R) -> i64
    where
        R: std::ops::RangeBounds<i64>,
    {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&x) => x,
            std::ops::Bound::Excluded(&x) => x + 1,
            std::ops::Bound::Unbounded => i64::MIN,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&x) => x,
            std::ops::Bound::Excluded(&x) => x - 1,
            std::ops::Bound::Unbounded => i64::MAX,
        };
        assert!(lo <= hi, "gen_range called with an empty range");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let value = (u128::from(self.next_u64()) % span) as i128 + i128::from(lo);
        value as i64
    }

    /// Uniform `u64` below `bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_u64_below(0)");
        self.next_u64() % bound
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(3..=3);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        // Sanity: all 8 buckets of the low bits get hit over 800 draws.
        let mut rng = SplitMix64::new(99);
        let mut buckets = [0u32; 8];
        for _ in 0..800 {
            buckets[(rng.next_u64() % 8) as usize] += 1;
        }
        assert!(buckets.iter().all(|&b| b > 40), "buckets: {buckets:?}");
    }
}
