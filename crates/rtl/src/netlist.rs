//! The word-level netlist: an expression DAG plus registers, ports and tags.

use crate::{BinaryOp, BitVec, Node, RegisterId, RtlError, SignalId, UnaryOp};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Information kept for each declared register.
#[derive(Debug, Clone)]
pub struct RegisterInfo {
    /// Signal that reads the register's current value.
    pub signal: SignalId,
    /// Hierarchical name of the register.
    pub name: String,
    /// Bit width of the register.
    pub width: u32,
    /// Next-state expression, if one has been attached yet.
    pub next: Option<SignalId>,
    /// Reset/initial value, if the register has one. Registers without an
    /// initial value start in a *symbolic* state, which is exactly what the
    /// UPEC interval-property proofs require.
    pub init: Option<BitVec>,
}

/// A named output port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputPort {
    /// Port name.
    pub name: String,
    /// Driven signal.
    pub signal: SignalId,
}

/// A word-level synchronous netlist.
///
/// A netlist is a DAG of [`Node`]s. Expression nodes may only refer to
/// signals created earlier, so the node vector is always in topological
/// order and combinational cycles cannot be constructed. Registers break the
/// sequential cycles: their current value is a leaf of the DAG and their
/// next-state function is attached with [`Netlist::set_next`].
///
/// # Examples
///
/// Building a 4-bit counter with an enable input:
///
/// ```
/// use rtl::{Netlist, BitVec};
///
/// let mut n = Netlist::new("counter");
/// let enable = n.input("enable", 1);
/// let count = n.register_init("count", 4, BitVec::zero(4));
/// let one = n.lit(1, 4);
/// let incremented = n.add(count.signal(&n), one);
/// let next = n.mux(enable, incremented, count.signal(&n));
/// n.set_next(count, next);
/// n.output("value", count.signal(&n));
/// n.validate().expect("counter netlist is well formed");
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    registers: Vec<RegisterInfo>,
    inputs: Vec<SignalId>,
    outputs: Vec<OutputPort>,
    /// Optional human-readable names for intermediate signals.
    signal_names: HashMap<SignalId, String>,
    /// Free-form tags attached to signals (used e.g. to classify registers as
    /// architectural vs. microarchitectural state).
    tags: BTreeMap<String, BTreeSet<SignalId>>,
    scope: Vec<String>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            registers: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            signal_names: HashMap::new(),
            tags: BTreeMap::new(),
            scope: Vec::new(),
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes (signals) in the netlist.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the netlist contains no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind a signal id.
    ///
    /// # Panics
    ///
    /// Panics if the signal does not belong to this netlist.
    pub fn node(&self, id: SignalId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Width in bits of a signal.
    pub fn width(&self, id: SignalId) -> u32 {
        self.node(id).width()
    }

    /// Iterates over all signals in topological (creation) order.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.nodes.len()).map(SignalId::from_index)
    }

    /// All primary inputs in declaration order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// All output ports in declaration order.
    pub fn outputs(&self) -> &[OutputPort] {
        &self.outputs
    }

    /// All registers in declaration order.
    pub fn registers(&self) -> &[RegisterInfo] {
        &self.registers
    }

    /// Number of declared registers.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Register info behind a register handle.
    pub fn register_info(&self, id: RegisterId) -> &RegisterInfo {
        &self.registers[id.index()]
    }

    /// Iterates over register handles in declaration order.
    pub fn register_ids(&self) -> impl Iterator<Item = RegisterId> + '_ {
        (0..self.registers.len()).map(RegisterId::from_index)
    }

    /// Looks up a register by its full hierarchical name.
    pub fn find_register(&self, name: &str) -> Option<RegisterId> {
        self.registers
            .iter()
            .position(|r| r.name == name)
            .map(RegisterId::from_index)
    }

    /// Looks up an input by name.
    pub fn find_input(&self, name: &str) -> Option<SignalId> {
        self.inputs.iter().copied().find(|&s| match self.node(s) {
            Node::Input { name: n, .. } => n == name,
            _ => false,
        })
    }

    /// Looks up an output port by name.
    pub fn find_output(&self, name: &str) -> Option<SignalId> {
        self.outputs
            .iter()
            .find(|o| o.name == name)
            .map(|o| o.signal)
    }

    // ------------------------------------------------------------------
    // Scoping and naming
    // ------------------------------------------------------------------

    /// Pushes a hierarchical scope; subsequent registers/inputs are named
    /// `scope.name`.
    pub fn push_scope(&mut self, scope: impl Into<String>) {
        self.scope.push(scope.into());
    }

    /// Pops the innermost hierarchical scope.
    pub fn pop_scope(&mut self) {
        self.scope.pop();
    }

    fn scoped(&self, name: &str) -> String {
        if self.scope.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.scope.join("."), name)
        }
    }

    /// Attaches a debug name to an intermediate signal.
    pub fn set_signal_name(&mut self, id: SignalId, name: impl Into<String>) {
        let scoped = self.scoped(&name.into());
        self.signal_names.insert(id, scoped);
    }

    /// Best-known name of a signal: port/register name, explicit debug name,
    /// or a generated `s<N>` fallback.
    pub fn signal_name(&self, id: SignalId) -> String {
        match self.node(id) {
            Node::Input { name, .. } => name.clone(),
            Node::Register { name, .. } => name.clone(),
            _ => self
                .signal_names
                .get(&id)
                .cloned()
                .unwrap_or_else(|| format!("{id}")),
        }
    }

    // ------------------------------------------------------------------
    // Tags
    // ------------------------------------------------------------------

    /// Attaches a free-form tag to a signal.
    pub fn add_tag(&mut self, id: SignalId, tag: impl Into<String>) {
        self.tags.entry(tag.into()).or_default().insert(id);
    }

    /// Whether a signal carries the given tag.
    pub fn has_tag(&self, id: SignalId, tag: &str) -> bool {
        self.tags.get(tag).is_some_and(|set| set.contains(&id))
    }

    /// All signals carrying the given tag, in creation order.
    pub fn signals_with_tag(&self, tag: &str) -> Vec<SignalId> {
        self.tags
            .get(tag)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All tag names used in the netlist.
    pub fn tag_names(&self) -> impl Iterator<Item = &str> {
        self.tags.keys().map(String::as_str)
    }

    // ------------------------------------------------------------------
    // Node construction
    // ------------------------------------------------------------------

    fn push(&mut self, node: Node) -> SignalId {
        let id = SignalId::from_index(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Declares a primary input of the given width.
    ///
    /// # Panics
    ///
    /// Panics if the width is zero or exceeds [`crate::MAX_WIDTH`].
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        assert!(
            (1..=crate::MAX_WIDTH).contains(&width),
            "input width {width} out of range"
        );
        let name = self.scoped(&name.into());
        let id = self.push(Node::Input { name, width });
        self.inputs.push(id);
        id
    }

    /// Creates a constant signal from a [`BitVec`].
    pub fn constant(&mut self, value: BitVec) -> SignalId {
        self.push(Node::Const(value))
    }

    /// Creates a constant signal of `width` bits holding `value`.
    pub fn lit(&mut self, value: u64, width: u32) -> SignalId {
        self.constant(BitVec::new(value, width))
    }

    /// Single-bit constant one.
    pub fn one(&mut self) -> SignalId {
        self.lit(1, 1)
    }

    /// Single-bit constant zero.
    pub fn zero(&mut self) -> SignalId {
        self.lit(0, 1)
    }

    /// Declares a register with a *symbolic* (unconstrained) initial state.
    ///
    /// The register's current value can be read through
    /// [`RegisterHandle::signal`]; its next-state function must be attached
    /// with [`Netlist::set_next`] before the netlist validates.
    pub fn register(&mut self, name: impl Into<String>, width: u32) -> RegisterHandle {
        self.register_impl(name.into(), width, None)
    }

    /// Declares a register with a concrete reset value.
    pub fn register_init(
        &mut self,
        name: impl Into<String>,
        width: u32,
        init: BitVec,
    ) -> RegisterHandle {
        assert_eq!(init.width(), width, "register init width mismatch");
        self.register_impl(name.into(), width, Some(init))
    }

    fn register_impl(&mut self, name: String, width: u32, init: Option<BitVec>) -> RegisterHandle {
        assert!(
            (1..=crate::MAX_WIDTH).contains(&width),
            "register width {width} out of range"
        );
        let name = self.scoped(&name);
        let register = RegisterId::from_index(self.registers.len());
        let signal = self.push(Node::Register {
            register,
            name: name.clone(),
            width,
        });
        self.registers.push(RegisterInfo {
            signal,
            name,
            width,
            next: None,
            init,
        });
        RegisterHandle {
            id: register,
            signal,
        }
    }

    /// Attaches the next-state expression of a register.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or if the register already has a
    /// next-state expression.
    pub fn set_next(&mut self, register: RegisterHandle, next: SignalId) {
        let width = self.width(next);
        let info = &mut self.registers[register.id.index()];
        assert_eq!(
            info.width, width,
            "next-state width mismatch for register `{}`: {} vs {}",
            info.name, info.width, width
        );
        assert!(
            info.next.is_none(),
            "register `{}` already has a next-state expression",
            info.name
        );
        info.next = Some(next);
    }

    /// Declares a named output port driven by `signal`.
    pub fn output(&mut self, name: impl Into<String>, signal: SignalId) {
        let name = self.scoped(&name.into());
        self.outputs.push(OutputPort { name, signal });
    }

    fn unary(&mut self, op: UnaryOp, a: SignalId) -> SignalId {
        let width = op.result_width(self.width(a));
        self.push(Node::Unary { op, a, width })
    }

    fn binary(&mut self, op: BinaryOp, a: SignalId, b: SignalId) -> SignalId {
        let wa = self.width(a);
        let wb = self.width(b);
        if op.requires_equal_widths() {
            assert_eq!(
                wa,
                wb,
                "width mismatch in {op:?}: {} ({wa} bits) vs {} ({wb} bits)",
                self.signal_name(a),
                self.signal_name(b)
            );
        }
        let width = op.result_width(wa, wb);
        self.push(Node::Binary { op, a, b, width })
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: SignalId) -> SignalId {
        self.unary(UnaryOp::Not, a)
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: SignalId) -> SignalId {
        self.unary(UnaryOp::Neg, a)
    }

    /// OR-reduction to a single bit.
    pub fn reduce_or(&mut self, a: SignalId) -> SignalId {
        self.unary(UnaryOp::ReduceOr, a)
    }

    /// AND-reduction to a single bit.
    pub fn reduce_and(&mut self, a: SignalId) -> SignalId {
        self.unary(UnaryOp::ReduceAnd, a)
    }

    /// XOR-reduction (parity) to a single bit.
    pub fn reduce_xor(&mut self, a: SignalId) -> SignalId {
        self.unary(UnaryOp::ReduceXor, a)
    }

    /// Bitwise AND. Panics on width mismatch.
    pub fn and(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.binary(BinaryOp::And, a, b)
    }

    /// Bitwise OR. Panics on width mismatch.
    pub fn or(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.binary(BinaryOp::Or, a, b)
    }

    /// Bitwise XOR. Panics on width mismatch.
    pub fn xor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.binary(BinaryOp::Xor, a, b)
    }

    /// Modular addition. Panics on width mismatch.
    pub fn add(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.binary(BinaryOp::Add, a, b)
    }

    /// Modular subtraction. Panics on width mismatch.
    pub fn sub(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.binary(BinaryOp::Sub, a, b)
    }

    /// Equality comparison (single-bit result). Panics on width mismatch.
    pub fn eq(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.binary(BinaryOp::Eq, a, b)
    }

    /// Inequality comparison (single-bit result). Panics on width mismatch.
    pub fn ne(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.binary(BinaryOp::Ne, a, b)
    }

    /// Unsigned less-than (single-bit result). Panics on width mismatch.
    pub fn ult(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.binary(BinaryOp::Ult, a, b)
    }

    /// Unsigned less-or-equal (single-bit result). Panics on width mismatch.
    pub fn ule(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.binary(BinaryOp::Ule, a, b)
    }

    /// Signed less-than (single-bit result). Panics on width mismatch.
    pub fn slt(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.binary(BinaryOp::Slt, a, b)
    }

    /// Logical shift left by a (possibly narrower) variable amount.
    pub fn shl(&mut self, a: SignalId, amount: SignalId) -> SignalId {
        self.binary(BinaryOp::Shl, a, amount)
    }

    /// Logical shift right by a (possibly narrower) variable amount.
    pub fn shr(&mut self, a: SignalId, amount: SignalId) -> SignalId {
        self.binary(BinaryOp::Shr, a, amount)
    }

    /// Two-way multiplexer `cond ? then_ : else_`.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not a single bit or the branches' widths differ.
    pub fn mux(&mut self, cond: SignalId, then_: SignalId, else_: SignalId) -> SignalId {
        assert_eq!(self.width(cond), 1, "mux condition must be a single bit");
        let wt = self.width(then_);
        let we = self.width(else_);
        assert_eq!(
            wt,
            we,
            "mux branch width mismatch: {} ({wt} bits) vs {} ({we} bits)",
            self.signal_name(then_),
            self.signal_name(else_)
        );
        self.push(Node::Mux {
            cond,
            then_,
            else_,
            width: wt,
        })
    }

    /// Extracts bits `hi..=lo` of a signal.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi` is out of range.
    pub fn slice(&mut self, a: SignalId, hi: u32, lo: u32) -> SignalId {
        let w = self.width(a);
        assert!(hi >= lo, "slice hi {hi} < lo {lo}");
        assert!(hi < w, "slice hi {hi} out of range for width {w}");
        self.push(Node::Slice { a, hi, lo })
    }

    /// Extracts a single bit of a signal.
    pub fn bit(&mut self, a: SignalId, index: u32) -> SignalId {
        self.slice(a, index, index)
    }

    /// Concatenation; `hi` supplies the most-significant bits.
    pub fn concat(&mut self, hi: SignalId, lo: SignalId) -> SignalId {
        let width = self.width(hi) + self.width(lo);
        assert!(
            width <= crate::MAX_WIDTH,
            "concat width {width} exceeds {}",
            crate::MAX_WIDTH
        );
        self.push(Node::Concat { hi, lo, width })
    }

    /// Zero-extends a signal to `width` bits (no-op if already that width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the signal's width.
    pub fn zext(&mut self, a: SignalId, width: u32) -> SignalId {
        let w = self.width(a);
        assert!(width >= w, "zext to narrower width ({w} -> {width})");
        if width == w {
            return a;
        }
        let zeros = self.lit(0, width - w);
        self.concat(zeros, a)
    }

    /// Sign-extends a signal to `width` bits (no-op if already that width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the signal's width.
    pub fn sext(&mut self, a: SignalId, width: u32) -> SignalId {
        let w = self.width(a);
        assert!(width >= w, "sext to narrower width ({w} -> {width})");
        if width == w {
            return a;
        }
        let sign = self.bit(a, w - 1);
        let ones = self.lit(u64::MAX, width - w);
        let zeros = self.lit(0, width - w);
        let ext = self.mux(sign, ones, zeros);
        self.concat(ext, a)
    }

    /// Single-bit test for "signal equals the literal `value`".
    pub fn eq_lit(&mut self, a: SignalId, value: u64) -> SignalId {
        let w = self.width(a);
        let c = self.lit(value, w);
        self.eq(a, c)
    }

    /// Single-bit test for "signal is all zeros".
    pub fn is_zero(&mut self, a: SignalId) -> SignalId {
        let any = self.reduce_or(a);
        self.not(any)
    }

    /// Boolean implication `a -> b` for single-bit signals.
    pub fn implies(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let na = self.not(a);
        self.or(na, b)
    }

    /// AND over an arbitrary, possibly empty, set of single-bit signals.
    pub fn and_all<I>(&mut self, signals: I) -> SignalId
    where
        I: IntoIterator<Item = SignalId>,
    {
        let mut acc: Option<SignalId> = None;
        for s in signals {
            acc = Some(match acc {
                None => s,
                Some(a) => self.and(a, s),
            });
        }
        acc.unwrap_or_else(|| self.one())
    }

    /// OR over an arbitrary, possibly empty, set of single-bit signals.
    pub fn or_all<I>(&mut self, signals: I) -> SignalId
    where
        I: IntoIterator<Item = SignalId>,
    {
        let mut acc: Option<SignalId> = None;
        for s in signals {
            acc = Some(match acc {
                None => s,
                Some(a) => self.or(a, s),
            });
        }
        acc.unwrap_or_else(|| self.zero())
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Checks the structural well-formedness of the netlist.
    ///
    /// # Errors
    ///
    /// Returns an error if a register lacks a next-state expression, a
    /// next-state expression has the wrong width, or port names collide.
    pub fn validate(&self) -> Result<(), RtlError> {
        for reg in &self.registers {
            match reg.next {
                None => {
                    return Err(RtlError::RegisterWithoutNext {
                        register: reg.name.clone(),
                    })
                }
                Some(next) => {
                    let next_width = self.width(next);
                    if next_width != reg.width {
                        return Err(RtlError::NextWidthMismatch {
                            register: reg.name.clone(),
                            register_width: reg.width,
                            next_width,
                        });
                    }
                }
            }
        }
        let mut seen = BTreeSet::new();
        for out in &self.outputs {
            if out.signal.index() >= self.nodes.len() {
                return Err(RtlError::DanglingOutput {
                    output: out.name.clone(),
                });
            }
            if !seen.insert(out.name.clone()) {
                return Err(RtlError::DuplicatePortName {
                    name: out.name.clone(),
                });
            }
        }
        let mut seen = BTreeSet::new();
        for &input in &self.inputs {
            if let Node::Input { name, .. } = self.node(input) {
                if !seen.insert(name.clone()) {
                    return Err(RtlError::DuplicatePortName { name: name.clone() });
                }
            }
        }
        Ok(())
    }

    /// Total number of state bits held in registers.
    pub fn state_bits(&self) -> u64 {
        self.registers.iter().map(|r| u64::from(r.width)).sum()
    }
}

/// Handle returned by register declaration; bundles the register id with the
/// signal that reads its current value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegisterHandle {
    id: RegisterId,
    signal: SignalId,
}

impl RegisterHandle {
    /// The register id (for use with [`Netlist::register_info`]).
    pub fn id(&self) -> RegisterId {
        self.id
    }

    /// The signal carrying the register's current value.
    ///
    /// The netlist argument is accepted only to make call sites read
    /// naturally (`reg.signal(&n)`); the handle already knows its signal.
    pub fn signal(&self, _netlist: &Netlist) -> SignalId {
        self.signal
    }

    /// The signal carrying the register's current value.
    pub fn value(&self) -> SignalId {
        self.signal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> (Netlist, RegisterHandle) {
        let mut n = Netlist::new("counter");
        let enable = n.input("enable", 1);
        let count = n.register_init("count", 4, BitVec::zero(4));
        let one = n.lit(1, 4);
        let inc = n.add(count.value(), one);
        let next = n.mux(enable, inc, count.value());
        n.set_next(count, next);
        n.output("value", count.value());
        (n, count)
    }

    #[test]
    fn counter_netlist_validates() {
        let (n, _) = counter();
        n.validate().expect("valid netlist");
        assert_eq!(n.register_count(), 1);
        assert_eq!(n.inputs().len(), 1);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.state_bits(), 4);
    }

    #[test]
    fn register_without_next_fails_validation() {
        let mut n = Netlist::new("bad");
        let _ = n.register("dangling", 8);
        let err = n.validate().unwrap_err();
        assert!(matches!(err, RtlError::RegisterWithoutNext { .. }));
    }

    #[test]
    fn duplicate_output_name_fails_validation() {
        let mut n = Netlist::new("bad");
        let a = n.lit(0, 1);
        n.output("x", a);
        n.output("x", a);
        let err = n.validate().unwrap_err();
        assert!(matches!(err, RtlError::DuplicatePortName { .. }));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn add_width_mismatch_panics() {
        let mut n = Netlist::new("bad");
        let a = n.lit(0, 4);
        let b = n.lit(0, 8);
        let _ = n.add(a, b);
    }

    #[test]
    #[should_panic(expected = "already has a next-state")]
    fn double_set_next_panics() {
        let mut n = Netlist::new("bad");
        let r = n.register("r", 1);
        let v = n.lit(0, 1);
        n.set_next(r, v);
        n.set_next(r, v);
    }

    #[test]
    fn scoped_names() {
        let mut n = Netlist::new("top");
        n.push_scope("core");
        n.push_scope("fetch");
        let pc = n.register("pc", 8);
        n.pop_scope();
        let x = n.input("irq", 1);
        n.pop_scope();
        assert_eq!(n.register_info(pc.id()).name, "core.fetch.pc");
        assert_eq!(n.signal_name(x), "core.irq");
        assert!(n.find_register("core.fetch.pc").is_some());
        assert!(n.find_register("pc").is_none());
    }

    #[test]
    fn tags_classify_signals() {
        let (mut n, count) = counter();
        n.add_tag(count.value(), "architectural");
        assert!(n.has_tag(count.value(), "architectural"));
        assert!(!n.has_tag(count.value(), "microarchitectural"));
        assert_eq!(n.signals_with_tag("architectural"), vec![count.value()]);
        assert_eq!(n.tag_names().collect::<Vec<_>>(), vec!["architectural"]);
    }

    #[test]
    fn zext_sext_build_expected_widths() {
        let mut n = Netlist::new("ext");
        let a = n.input("a", 4);
        let z = n.zext(a, 8);
        let s = n.sext(a, 8);
        assert_eq!(n.width(z), 8);
        assert_eq!(n.width(s), 8);
        // zext of the same width is the identity.
        assert_eq!(n.zext(a, 4), a);
    }

    #[test]
    fn and_all_or_all_handle_empty_sets() {
        let mut n = Netlist::new("fold");
        let t = n.and_all(std::iter::empty());
        let f = n.or_all(std::iter::empty());
        assert!(matches!(n.node(t), Node::Const(c) if c.is_true()));
        assert!(matches!(n.node(f), Node::Const(c) if c.is_zero()));
    }

    #[test]
    fn lookup_by_name() {
        let (n, _) = counter();
        assert!(n.find_input("enable").is_some());
        assert!(n.find_output("value").is_some());
        assert!(n.find_input("nonexistent").is_none());
        assert!(n.find_output("nonexistent").is_none());
    }

    #[test]
    fn creation_order_is_topological() {
        let (n, _) = counter();
        for id in n.signals() {
            for op in n.node(id).operands() {
                assert!(op.index() < id.index(), "operand created after user");
            }
        }
    }
}
