//! Transition-relation unrolling with word-level bit-blasting.
//!
//! Since PR 3 the unrolling has two encoding strategies:
//!
//! * **Compiled** (the default): the netlist is first run through the
//!   [`CompiledTransition`] compiler — cone-of-influence pruning, structural
//!   hashing, constant folding — and each frame instantiates the resulting
//!   dense schedule *lazily*: a slot is only Tseitin-encoded in a frame when
//!   a constraint, obligation or extraction actually reaches it. The final
//!   frame of a bounded proof therefore never pays for next-state logic, and
//!   logic outside the property cone is never encoded at all.
//! * **Eager** ([`UnrollOptions::eager`]): the original seed behavior — every
//!   netlist signal is encoded in every frame. Kept as the baseline for the
//!   `compile_stats` benchmark and for differential testing.

use crate::{CompileStats, CompiledOp, CompiledTransition, GateBuilder};
use rtl::{BinaryOp, BitVec, Netlist, Node, SignalId, UnaryOp};
use sat::{Lit, Model, SatResult};
use std::collections::HashMap;
use std::sync::Arc;

/// Options controlling how a netlist is unrolled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnrollOptions {
    /// When `true`, registers that declare an initial value start there in
    /// frame 0. When `false` every register starts fully *symbolic*, which is
    /// the "any-state proof" setting used by interval property checking
    /// (IPC) and by all UPEC proofs.
    pub use_initial_values: bool,
    /// Optional conflict budget handed to the SAT solver; `None` means solve
    /// to completion.
    pub conflict_limit: Option<u64>,
    /// Deterministic resource budget for each [`Unrolling::solve`] call
    /// (conflicts / propagations / decisions; see [`sat::Budget`]). Unlike
    /// [`UnrollOptions::conflict_limit`] — which caps each *solver episode*
    /// — the budget covers the whole call including the trial solve and the
    /// post-simplification full solve: the remainder is threaded through
    /// the pipeline, and an exhausted call answers
    /// [`SatResult::Unknown`] with
    /// [`sat::StopCause::BudgetExhausted`] while keeping the session
    /// resumable. Unlimited by default.
    pub budget: sat::Budget,
    /// When `true`, bypass the transition-relation compiler and encode every
    /// netlist signal in every frame (the pre-compiler baseline). Used by
    /// benchmarks and differential tests; real proofs keep this `false`.
    pub eager_encoding: bool,
    /// When `true`, skip the incremental-safe CNF simplification pipeline
    /// that otherwise runs before a solve whenever the clause database has
    /// grown substantially (e.g. after a bound extension). Kept as an escape
    /// hatch for differential testing and the `solver_stats` benchmark; real
    /// proofs keep this `false`.
    pub no_simplify: bool,
    /// Conflict budget of the *trial solve* that gates the simplification
    /// pipeline: after a substantial database growth the query is first
    /// attempted under this cap, and only queries that exhaust it pay for
    /// simplification (the trial's learned clauses are kept, so its effort
    /// is never wasted). Queries that finish inside the cap — small added
    /// frames, bounds the solver cruises through — skip the pipeline
    /// entirely. Lowering the value makes simplification more eager; `0`
    /// simplifies before any query that hits a single conflict.
    pub simplify_trial_conflicts: u64,
    /// When `true`, the underlying solver records a DRAT-style proof log
    /// from the first clause on (see [`sat::Solver::start_proof_log`]), so
    /// unsat answers can be packaged as independently checkable
    /// certificates. Off by default: logging costs memory proportional to
    /// the search.
    pub proof_log: bool,
    /// Search-loop feature toggles handed to the underlying solver (EMA
    /// restarts, phase saving, rephasing, chronological backtracking), plus
    /// the `vivify` flag that gates the clause-vivification inprocessing the
    /// unrolling runs after each simplification pass. Defaults to all
    /// features on; [`sat::SearchConfig::baseline`] restores the PR 5
    /// behavior for differential testing.
    pub search: sat::SearchConfig,
}

impl Default for UnrollOptions {
    fn default() -> Self {
        Self {
            use_initial_values: false,
            conflict_limit: None,
            budget: sat::Budget::unlimited(),
            eager_encoding: false,
            no_simplify: false,
            simplify_trial_conflicts: 4000,
            proof_log: false,
            search: sat::SearchConfig::default(),
        }
    }
}

impl UnrollOptions {
    /// Symbolic-initial-state unrolling (the IPC default).
    pub fn symbolic_initial_state() -> Self {
        Self::default()
    }

    /// Reset-state bounded model checking (used by the ablation experiments).
    pub fn from_reset_state() -> Self {
        Self {
            use_initial_values: true,
            ..Self::default()
        }
    }

    /// Sets the solver conflict budget.
    pub fn with_conflict_limit(mut self, limit: Option<u64>) -> Self {
        self.conflict_limit = limit;
        self
    }

    /// Sets the deterministic per-call resource budget (see
    /// [`UnrollOptions::budget`]).
    pub fn with_budget(mut self, budget: sat::Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Disables the transition-relation compiler (baseline encoding).
    pub fn eager(mut self) -> Self {
        self.eager_encoding = true;
        self
    }

    /// Disables the CNF simplification pipeline (baseline solving).
    pub fn no_simplify(mut self) -> Self {
        self.no_simplify = true;
        self
    }

    /// Sets the conflict budget of the trial solve that gates the
    /// simplification pipeline (see
    /// [`UnrollOptions::simplify_trial_conflicts`]).
    pub fn with_simplify_trial(mut self, conflicts: u64) -> Self {
        self.simplify_trial_conflicts = conflicts;
        self
    }

    /// Enables DRAT-style proof logging on the underlying solver (see
    /// [`UnrollOptions::proof_log`]).
    pub fn with_proof_log(mut self) -> Self {
        self.proof_log = true;
        self
    }

    /// Sets the search-loop feature toggles (see [`UnrollOptions::search`]).
    pub fn with_search(mut self, search: sat::SearchConfig) -> Self {
        self.search = search;
        self
    }
}

/// A learned clause exported for cross-query sharing, expressed over
/// *canonical term ids* instead of session-local CNF variables.
///
/// Each literal packs a `(frame, slot, bit)` position of the shared
/// compiled schedule (`frame << 40 | slot << 16 | bit`, shifted left once)
/// with a polarity bit relative to that position's representative literal.
/// Because two unrollings with equal [`Unrolling::share_fingerprint`]
/// encode the same term at the same position, the clause can be re-read in
/// any such session ([`Unrolling::import_shared`]). `ceiling` is the
/// highest frame the clause's derivation touched — the frame-tag filter of
/// the sharing pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedClause {
    /// Canonical literals (packed position + relative polarity).
    pub lits: Vec<u64>,
    /// Highest frame tag in the clause's derivation.
    pub ceiling: u32,
}

/// Aggregate description of what an unrolling has encoded so far.
#[derive(Debug, Clone, Copy)]
pub struct EncodeStats {
    /// `"compiled"` or `"eager"`.
    pub strategy: &'static str,
    /// Slots in the compiled schedule (netlist signals for eager mode).
    pub scheduled_slots: usize,
    /// Slot instances actually Tseitin-encoded, summed over all frames.
    pub encoded_slots: usize,
    /// CNF variables allocated.
    pub variables: usize,
    /// CNF problem clauses added.
    pub clauses: usize,
    /// Compiler counters (`None` in eager mode).
    pub compile: Option<CompileStats>,
}

/// A netlist unrolled over `k+1` time frames and bit-blasted into CNF.
///
/// Frame `t` describes the state *at* clock cycle `t`; the register values of
/// frame `t+1` are the bit-blasted next-state functions evaluated in frame
/// `t`. Primary inputs receive fresh variables in every frame, so the solver
/// searches over *all* input sequences — for the UPEC miter this is what
/// makes the program symbolic.
///
/// # Examples
///
/// ```
/// use rtl::{Netlist, BitVec};
/// use bmc::{Unrolling, UnrollOptions};
///
/// let mut n = Netlist::new("counter");
/// let c = n.register_init("c", 4, BitVec::zero(4));
/// let one = n.lit(1, 4);
/// let next = n.add(c.value(), one);
/// n.set_next(c, next);
/// n.output("c", c.value());
///
/// let mut unrolling = Unrolling::new(&n, UnrollOptions::from_reset_state());
/// unrolling.extend_to(3);
/// // After 3 cycles from reset the counter must hold 3.
/// let must_be_three = unrolling.assume_signal_equals_const(3, c.value(), 3);
/// assert!(must_be_three.is_ok());
/// assert!(unrolling.solve(&[]).is_sat());
/// ```
#[derive(Debug)]
pub struct Unrolling<'n> {
    netlist: &'n Netlist,
    gates: GateBuilder,
    options: UnrollOptions,
    backend: Backend,
    /// Registers whose frame-0 value shares the literals of another register
    /// (used by miter-style proofs to state "these start equal" structurally
    /// instead of through equality clauses). Keyed by signal index.
    frame0_aliases: HashMap<usize, SignalId>,
    /// Total slot instances encoded across all frames.
    encoded_slots: usize,
    /// Problem-clause count at the end of the last simplification run, used
    /// to decide when the database has grown enough to be worth another
    /// pass.
    clauses_at_last_simplify: usize,
}

#[derive(Debug)]
enum Backend {
    /// Every signal encoded in every frame: `frames[t][signal]` = literals.
    Eager { frames: Vec<Vec<Vec<Lit>>> },
    /// Compiled schedule, lazily instantiated: `frames[t][slot]`.
    Compiled {
        transition: Arc<CompiledTransition>,
        frames: Vec<Vec<Option<Vec<Lit>>>>,
    },
}

/// Error returned when a constraint refers to a signal of the wrong shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnrollError {
    /// A single-bit signal was required.
    NotABit {
        /// The offending signal.
        signal: SignalId,
        /// Its actual width.
        width: u32,
    },
    /// Two signals that must have equal widths do not.
    WidthMismatch {
        /// Left signal width.
        left: u32,
        /// Right signal width.
        right: u32,
    },
    /// The requested frame has not been built yet.
    FrameOutOfRange {
        /// Requested frame.
        frame: usize,
        /// Number of frames built.
        built: usize,
    },
    /// The signal was pruned from the compiled schedule (outside the cone of
    /// influence of the declared roots).
    NotInSchedule {
        /// The pruned signal.
        signal: SignalId,
    },
    /// The signal is scheduled but was never reached by any query in this
    /// frame, so it has no literals (and no value in a model).
    NotEncoded {
        /// The signal.
        signal: SignalId,
        /// The frame.
        frame: usize,
    },
}

impl std::fmt::Display for UnrollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnrollError::NotABit { signal, width } => {
                write!(
                    f,
                    "signal {signal} is {width} bits wide, expected a single bit"
                )
            }
            UnrollError::WidthMismatch { left, right } => {
                write!(
                    f,
                    "width mismatch between constrained signals: {left} vs {right}"
                )
            }
            UnrollError::FrameOutOfRange { frame, built } => {
                write!(f, "frame {frame} not built yet (only {built} frames exist)")
            }
            UnrollError::NotInSchedule { signal } => {
                write!(f, "signal {signal} was pruned from the compiled schedule")
            }
            UnrollError::NotEncoded { signal, frame } => {
                write!(f, "signal {signal} was never encoded in frame {frame}")
            }
        }
    }
}

impl std::error::Error for UnrollError {}

impl<'n> Unrolling<'n> {
    /// Creates an unrolling with frame 0 built.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::validate`].
    pub fn new(netlist: &'n Netlist, options: UnrollOptions) -> Self {
        Self::with_frame0_aliases(netlist, options, &[])
    }

    /// Creates an unrolling in which, for every `(register, source)` pair in
    /// `aliases`, the frame-0 value of `register` reuses the literals of
    /// `source` (both must be register-value signals of equal width).
    ///
    /// This expresses "these two registers start out equal" *structurally*,
    /// which — combined with the gate-level structural hashing — lets the two
    /// halves of a miter collapse onto shared variables wherever they have
    /// not yet diverged. The UPEC checks use it for the `micro_soc_state1 =
    /// micro_soc_state2` assumption of the paper's Fig. 4.
    ///
    /// In the default (compiled) mode this constructor compiles the full
    /// netlist on the spot. Flows that open many unrollings of the same
    /// design should compile once and share the schedule through
    /// [`Unrolling::with_compiled`].
    ///
    /// # Panics
    ///
    /// Panics if the netlist is invalid or an alias pair has mismatched
    /// widths or refers to non-register signals.
    pub fn with_frame0_aliases(
        netlist: &'n Netlist,
        options: UnrollOptions,
        aliases: &[(SignalId, SignalId)],
    ) -> Self {
        let transition = if options.eager_encoding {
            None
        } else {
            Some(Arc::new(CompiledTransition::compile(netlist)))
        };
        Self::build(netlist, transition, options, aliases)
    }

    /// Creates an unrolling over a pre-compiled transition relation
    /// (compile once, clone per frame — and per session).
    ///
    /// # Panics
    ///
    /// Panics if the netlist is invalid, an alias pair is malformed, or
    /// `options.eager_encoding` is set (a compiled schedule cannot drive the
    /// eager baseline).
    pub fn with_compiled(
        netlist: &'n Netlist,
        transition: Arc<CompiledTransition>,
        options: UnrollOptions,
        aliases: &[(SignalId, SignalId)],
    ) -> Self {
        assert!(
            !options.eager_encoding,
            "eager encoding ignores the compiled schedule"
        );
        Self::build(netlist, Some(transition), options, aliases)
    }

    fn build(
        netlist: &'n Netlist,
        transition: Option<Arc<CompiledTransition>>,
        options: UnrollOptions,
        aliases: &[(SignalId, SignalId)],
    ) -> Self {
        netlist
            .validate()
            .expect("netlist must be valid before unrolling");
        let mut frame0_aliases = HashMap::new();
        for &(register, source) in aliases {
            assert!(
                netlist.node(register).is_register() && netlist.node(source).is_register(),
                "frame-0 aliases must pair register signals"
            );
            assert_eq!(
                netlist.width(register),
                netlist.width(source),
                "frame-0 alias width mismatch"
            );
            assert!(
                source.index() < register.index(),
                "the alias source must be created before the aliased register"
            );
            frame0_aliases.insert(register.index(), source);
        }
        let mut gates = GateBuilder::new();
        gates.solver_mut().set_search_config(options.search);
        if options.proof_log {
            // Logging starts before any frame is encoded, so the axiom set of
            // the certificate is exactly the frame CNF (plus the builder's
            // constant-true unit).
            gates.solver_mut().start_proof_log();
        } else if transition.is_some() {
            // The builder's constant-true unit is part of every session's
            // theory, so derivations through it stay shareable. (Certified
            // sessions never share — imports are refused under proof
            // logging — so the tag is skipped there.)
            gates.solver_mut().mark_root_facts_shared(0);
        }
        if let Some(limit) = options.conflict_limit {
            gates.solver_mut().set_conflict_limit(Some(limit));
        }
        let backend = match transition {
            Some(transition) => Backend::Compiled {
                transition,
                frames: Vec::new(),
            },
            None => Backend::Eager { frames: Vec::new() },
        };
        let mut unrolling = Self {
            netlist,
            gates,
            options,
            backend,
            frame0_aliases,
            encoded_slots: 0,
            clauses_at_last_simplify: 0,
        };
        unrolling.extend_to(0);
        unrolling
    }

    /// The unrolled netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Number of frames built so far (at least 1).
    pub fn frame_count(&self) -> usize {
        match &self.backend {
            Backend::Eager { frames } => frames.len(),
            Backend::Compiled { frames, .. } => frames.len(),
        }
    }

    /// Number of CNF variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.gates.solver().num_vars()
    }

    /// Number of problem clauses generated so far.
    pub fn num_clauses(&self) -> usize {
        self.gates.solver().num_clauses()
    }

    /// What has been encoded so far, and by which strategy.
    pub fn encode_stats(&self) -> EncodeStats {
        let (strategy, scheduled_slots, compile) = match &self.backend {
            Backend::Eager { .. } => ("eager", self.netlist.len(), None),
            Backend::Compiled { transition, .. } => {
                ("compiled", transition.len(), Some(transition.stats()))
            }
        };
        EncodeStats {
            strategy,
            scheduled_slots,
            encoded_slots: self.encoded_slots,
            variables: self.num_vars(),
            clauses: self.num_clauses(),
            compile,
        }
    }

    /// The compiled transition relation driving this unrolling, if any.
    pub fn compiled(&self) -> Option<&Arc<CompiledTransition>> {
        match &self.backend {
            Backend::Compiled { transition, .. } => Some(transition),
            Backend::Eager { .. } => None,
        }
    }

    /// Ensures frames `0..=k` exist.
    ///
    /// Frames are fed into one *persistent* solver: extending an unrolling
    /// that has already been solved at a shallower bound only bit-blasts the
    /// new frames and appends their clauses — the solver keeps its
    /// learned-clause database, variable activities and saved phases from the
    /// earlier bounds, which is what makes walking a property up through
    /// bounds `1..=k` much cheaper than `k` independent solves. The
    /// incremental UPEC engine in the `upec` crate relies on exactly this
    /// contract.
    ///
    /// In compiled mode a new frame is merely *declared* here; its slots are
    /// bit-blasted on demand when queries reach them.
    ///
    /// ```
    /// use rtl::{Netlist, BitVec};
    /// use bmc::{Unrolling, UnrollOptions};
    ///
    /// let mut n = Netlist::new("counter");
    /// let c = n.register_init("c", 8, BitVec::zero(8));
    /// let one = n.lit(1, 8);
    /// let next = n.add(c.value(), one);
    /// n.set_next(c, next);
    /// n.output("c", c.value());
    ///
    /// let mut u = Unrolling::new(&n, UnrollOptions::from_reset_state());
    /// for k in 1..=4 {
    ///     u.extend_to(k); // appends only the new frame each iteration
    ///     let act = u.fresh_lit();
    ///     let wrong = u.lits(k, c.value()).unwrap()[0]; // LSB of k is k % 2
    ///     let expected_lsb = k % 2 == 1;
    ///     let obligation = if expected_lsb { !wrong } else { wrong };
    ///     u.add_clause_activated(act, [obligation]);
    ///     assert!(u.solve(&[act]).is_unsat(), "counter LSB is determined");
    ///     u.retire_activation(act);
    /// }
    /// ```
    pub fn extend_to(&mut self, k: usize) {
        match &mut self.backend {
            Backend::Eager { .. } => {
                while self.frame_count() <= k {
                    self.build_eager_frame();
                }
            }
            Backend::Compiled { transition, frames } => {
                let slots = transition.len();
                while frames.len() <= k {
                    frames.push(vec![None; slots]);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Eager encoding (the pre-compiler baseline)
    // ------------------------------------------------------------------

    fn build_eager_frame(&mut self) {
        let t = self.frame_count();
        let mut span = obs::span("bmc.encode_frame");
        span.attr_u64("frame", t as u64);
        let mut frame: Vec<Vec<Lit>> = Vec::with_capacity(self.netlist.len());
        for id in self.netlist.signals() {
            let lits = self.encode_netlist_node(t, id, &frame);
            for &l in &lits {
                self.gates.freeze(l);
            }
            frame.push(lits);
        }
        self.encoded_slots += frame.len();
        span.attr_u64("slots", frame.len() as u64);
        match &mut self.backend {
            Backend::Eager { frames } => frames.push(frame),
            Backend::Compiled { .. } => unreachable!("eager frame on compiled backend"),
        }
    }

    fn encode_netlist_node(&mut self, t: usize, id: SignalId, frame: &[Vec<Lit>]) -> Vec<Lit> {
        match self.netlist.node(id) {
            Node::Input { width, .. } => self.fresh_word(*width),
            Node::Const(v) => self.const_word(*v),
            Node::Register {
                register, width, ..
            } => {
                let info = &self.netlist.registers()[register.index()];
                if t == 0 {
                    if let Some(&source) = self.frame0_aliases.get(&id.index()) {
                        return frame[source.index()].clone();
                    }
                    match (self.options.use_initial_values, info.init) {
                        (true, Some(init)) => self.const_word(init),
                        _ => self.fresh_word(*width),
                    }
                } else {
                    // The register's value in frame t is its next-state
                    // expression evaluated in frame t-1.
                    let next = info
                        .next
                        .expect("validated netlists give every register a next-state");
                    match &self.backend {
                        Backend::Eager { frames } => frames[t - 1][next.index()].clone(),
                        Backend::Compiled { .. } => unreachable!(),
                    }
                }
            }
            Node::Unary { op, a, .. } => {
                let a = frame[a.index()].clone();
                self.encode_unary(*op, &a)
            }
            Node::Binary { op, a, b, .. } => {
                let a = frame[a.index()].clone();
                let b = frame[b.index()].clone();
                self.encode_binary(*op, &a, &b)
            }
            Node::Mux {
                cond, then_, else_, ..
            } => {
                let c = frame[cond.index()][0];
                let t_lits = frame[then_.index()].clone();
                let e_lits = frame[else_.index()].clone();
                t_lits
                    .iter()
                    .zip(&e_lits)
                    .map(|(&tl, &el)| self.gates.mux(c, tl, el))
                    .collect()
            }
            Node::Slice { a, hi, lo } => {
                let a = &frame[a.index()];
                a[*lo as usize..=*hi as usize].to_vec()
            }
            Node::Concat { hi, lo, .. } => {
                let mut lits = frame[lo.index()].clone();
                lits.extend_from_slice(&frame[hi.index()]);
                lits
            }
        }
    }

    // ------------------------------------------------------------------
    // Compiled, lazy encoding
    // ------------------------------------------------------------------

    /// Makes sure `slot` has literals in `frame`, bit-blasting it and its
    /// not-yet-encoded transitive support first (iteratively; the support
    /// spans earlier frames through register feedback).
    fn ensure_slot(&mut self, frame: usize, slot: u32) {
        let mut stack: Vec<(usize, u32)> = vec![(frame, slot)];
        while let Some(&(f, s)) = stack.last() {
            if self.slot_lits(f, s).is_some() {
                stack.pop();
                continue;
            }
            let deps = self.slot_deps(f, s);
            let mut all_ready = true;
            for &(df, ds) in &deps {
                if self.slot_lits(df, ds).is_none() {
                    all_ready = false;
                    stack.push((df, ds));
                }
            }
            if all_ready {
                // The slot's Tseitin clauses are purely definitional over
                // the shared compiled transition, so they open a shareable
                // section at this frame's ceiling. Scenario constraints and
                // obligations are added outside any section and stay
                // untagged.
                self.gates.solver_mut().set_share_ceiling(Some(f as u32));
                let lits = self.encode_slot(f, s);
                self.gates.solver_mut().set_share_ceiling(None);
                // Slot literals outlive this encoding step: deeper frames
                // read them through register feedback, later queries reach
                // them as dependencies, and model extraction reads them
                // after a solve. They must survive CNF simplification.
                for &l in &lits {
                    self.gates.freeze(l);
                }
                match &mut self.backend {
                    Backend::Compiled { frames, .. } => frames[f][s as usize] = Some(lits),
                    Backend::Eager { .. } => unreachable!(),
                }
                self.encoded_slots += 1;
                stack.pop();
            }
        }
    }

    fn slot_lits(&self, frame: usize, slot: u32) -> Option<&[Lit]> {
        match &self.backend {
            Backend::Compiled { frames, .. } => frames[frame][slot as usize].as_deref(),
            Backend::Eager { .. } => unreachable!("slot access on eager backend"),
        }
    }

    /// The `(frame, slot)` pairs that must be encoded before this one.
    fn slot_deps(&self, frame: usize, slot: u32) -> Vec<(usize, u32)> {
        let transition = match &self.backend {
            Backend::Compiled { transition, .. } => transition,
            Backend::Eager { .. } => unreachable!(),
        };
        match &transition.ops()[slot as usize] {
            CompiledOp::Input { .. } | CompiledOp::Const(_) => Vec::new(),
            CompiledOp::Register { register, .. } => {
                if frame == 0 {
                    let info = &self.netlist.registers()[register.index()];
                    match self.frame0_aliases.get(&info.signal.index()) {
                        Some(&source) => {
                            let source_slot = transition
                                .slot_of(source)
                                .expect("alias sources are register values inside the schedule");
                            vec![(0, source_slot)]
                        }
                        None => Vec::new(),
                    }
                } else {
                    let next = transition
                        .next_slot(*register)
                        .expect("in-cone registers have scheduled next-states");
                    vec![(frame - 1, next)]
                }
            }
            CompiledOp::Unary { a, .. } | CompiledOp::Slice { a, .. } => vec![(frame, *a)],
            CompiledOp::Binary { a, b, .. } => vec![(frame, *a), (frame, *b)],
            CompiledOp::Concat { hi, lo } => vec![(frame, *hi), (frame, *lo)],
            CompiledOp::Mux { cond, then_, else_ } => {
                vec![(frame, *cond), (frame, *then_), (frame, *else_)]
            }
        }
    }

    /// Bit-blasts one slot whose dependencies are already encoded.
    fn encode_slot(&mut self, frame: usize, slot: u32) -> Vec<Lit> {
        let transition = match &self.backend {
            Backend::Compiled { transition, .. } => Arc::clone(transition),
            Backend::Eager { .. } => unreachable!(),
        };
        let word = |me: &Self, f: usize, s: u32| -> Vec<Lit> {
            me.slot_lits(f, s)
                .expect("dependency encoded before use")
                .to_vec()
        };
        match &transition.ops()[slot as usize] {
            CompiledOp::Input { width } => self.fresh_word(*width),
            CompiledOp::Const(v) => self.const_word(*v),
            CompiledOp::Register { register, width } => {
                if frame == 0 {
                    let info = &self.netlist.registers()[register.index()];
                    if let Some(&source) = self.frame0_aliases.get(&info.signal.index()) {
                        let source_slot =
                            transition.slot_of(source).expect("alias source scheduled");
                        return word(self, 0, source_slot);
                    }
                    match (
                        self.options.use_initial_values,
                        transition.init_value(*register),
                    ) {
                        (true, Some(init)) => self.const_word(init),
                        _ => self.fresh_word(*width),
                    }
                } else {
                    let next = transition
                        .next_slot(*register)
                        .expect("in-cone registers have scheduled next-states");
                    word(self, frame - 1, next)
                }
            }
            CompiledOp::Unary { op, a } => {
                let a = word(self, frame, *a);
                self.encode_unary(*op, &a)
            }
            CompiledOp::Binary { op, a, b } => {
                let a_lits = word(self, frame, *a);
                let b_lits = word(self, frame, *b);
                self.encode_binary(*op, &a_lits, &b_lits)
            }
            CompiledOp::Mux { cond, then_, else_ } => {
                let c = word(self, frame, *cond)[0];
                let t_lits = word(self, frame, *then_);
                let e_lits = word(self, frame, *else_);
                t_lits
                    .iter()
                    .zip(&e_lits)
                    .map(|(&tl, &el)| self.gates.mux(c, tl, el))
                    .collect()
            }
            CompiledOp::Slice { a, hi, lo } => {
                let a = word(self, frame, *a);
                a[*lo as usize..=*hi as usize].to_vec()
            }
            CompiledOp::Concat { hi, lo } => {
                let mut lits = word(self, frame, *lo);
                lits.extend_from_slice(&word(self, frame, *hi));
                lits
            }
        }
    }

    // ------------------------------------------------------------------
    // Shared bit-level encoders
    // ------------------------------------------------------------------

    fn fresh_word(&mut self, width: u32) -> Vec<Lit> {
        (0..width).map(|_| self.gates.fresh()).collect()
    }

    fn const_word(&mut self, value: BitVec) -> Vec<Lit> {
        (0..value.width())
            .map(|i| self.gates.constant(value.get_bit(i)))
            .collect()
    }

    fn encode_unary(&mut self, op: UnaryOp, a: &[Lit]) -> Vec<Lit> {
        match op {
            UnaryOp::Not => a.iter().map(|&l| !l).collect(),
            UnaryOp::Neg => {
                // -a = ~a + 1 via a ripple-carry increment.
                let inverted: Vec<Lit> = a.iter().map(|&l| !l).collect();
                let mut carry = self.gates.true_lit();
                let mut out = Vec::with_capacity(a.len());
                for &bit in &inverted {
                    let (sum, c) = self.gates.full_adder(bit, self.gates.false_lit(), carry);
                    out.push(sum);
                    carry = c;
                }
                out
            }
            UnaryOp::ReduceOr => vec![self.gates.or_many(a)],
            UnaryOp::ReduceAnd => vec![self.gates.and_many(a)],
            UnaryOp::ReduceXor => {
                let mut acc = self.gates.false_lit();
                for &l in a {
                    acc = self.gates.xor(acc, l);
                }
                vec![acc]
            }
        }
    }

    fn ripple_add(&mut self, a: &[Lit], b: &[Lit], carry_in: Lit) -> (Vec<Lit>, Lit) {
        let mut carry = carry_in;
        let mut out = Vec::with_capacity(a.len());
        for (&ai, &bi) in a.iter().zip(b) {
            let (sum, c) = self.gates.full_adder(ai, bi, carry);
            out.push(sum);
            carry = c;
        }
        (out, carry)
    }

    fn encode_unsigned_less_than(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // a < b  iff  the subtraction a - b = a + ~b + 1 produces no carry out.
        let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
        let (_, carry) = self.ripple_add(a, &nb, self.gates.true_lit());
        !carry
    }

    fn encode_binary(&mut self, op: BinaryOp, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        match op {
            BinaryOp::And => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.gates.and(x, y))
                .collect(),
            BinaryOp::Or => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.gates.or(x, y))
                .collect(),
            BinaryOp::Xor => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.gates.xor(x, y))
                .collect(),
            BinaryOp::Add => {
                let (sum, _) = self.ripple_add(a, b, self.gates.false_lit());
                sum
            }
            BinaryOp::Sub => {
                let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
                let (diff, _) = self.ripple_add(a, &nb, self.gates.true_lit());
                diff
            }
            BinaryOp::Eq => {
                let bits: Vec<Lit> = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| self.gates.xnor(x, y))
                    .collect();
                vec![self.gates.and_many(&bits)]
            }
            BinaryOp::Ne => {
                let bits: Vec<Lit> = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| self.gates.xor(x, y))
                    .collect();
                vec![self.gates.or_many(&bits)]
            }
            BinaryOp::Ult => vec![self.encode_unsigned_less_than(a, b)],
            BinaryOp::Ule => {
                let gt = self.encode_unsigned_less_than(b, a);
                vec![!gt]
            }
            BinaryOp::Slt => {
                let sa = *a.last().expect("slt operand is at least one bit");
                let sb = *b.last().expect("slt operand is at least one bit");
                let ult = self.encode_unsigned_less_than(a, b);
                // If the sign bits differ, a < b iff a is negative; otherwise
                // the unsigned comparison gives the right answer.
                let signs_differ = self.gates.xor(sa, sb);
                vec![self.gates.mux(signs_differ, sa, ult)]
            }
            BinaryOp::Shl => self.encode_shift(a, b, true),
            BinaryOp::Shr => self.encode_shift(a, b, false),
        }
    }

    fn encode_shift(&mut self, a: &[Lit], amount: &[Lit], left: bool) -> Vec<Lit> {
        let width = a.len();
        let mut current = a.to_vec();
        let mut overflow = self.gates.false_lit();
        for (i, &amount_bit) in amount.iter().enumerate() {
            let shift = 1usize << i.min(63);
            if shift >= width {
                overflow = self.gates.or(overflow, amount_bit);
                continue;
            }
            let shifted: Vec<Lit> = (0..width)
                .map(|bit| {
                    let source = if left {
                        bit.checked_sub(shift)
                    } else {
                        let s = bit + shift;
                        (s < width).then_some(s)
                    };
                    match source {
                        Some(s) => current[s],
                        None => self.gates.false_lit(),
                    }
                })
                .collect();
            current = current
                .iter()
                .zip(&shifted)
                .map(|(&keep, &moved)| self.gates.mux(amount_bit, moved, keep))
                .collect();
        }
        // Shift amounts >= width produce zero.
        current
            .iter()
            .map(|&bit| self.gates.mux(overflow, self.gates.false_lit(), bit))
            .collect()
    }

    // ------------------------------------------------------------------
    // Constraints, queries and model extraction
    // ------------------------------------------------------------------

    fn check_frame(&self, frame: usize) -> Result<(), UnrollError> {
        if frame >= self.frame_count() {
            Err(UnrollError::FrameOutOfRange {
                frame,
                built: self.frame_count(),
            })
        } else {
            Ok(())
        }
    }

    /// Literals of a signal in a frame (LSB first), bit-blasting the signal's
    /// transitive support on first access in compiled mode.
    ///
    /// # Errors
    ///
    /// Returns [`UnrollError::FrameOutOfRange`] if the frame is not built, or
    /// [`UnrollError::NotInSchedule`] if the signal was pruned by a rooted
    /// compilation.
    pub fn lits(&mut self, frame: usize, signal: SignalId) -> Result<Vec<Lit>, UnrollError> {
        self.check_frame(frame)?;
        match &self.backend {
            Backend::Eager { frames } => Ok(frames[frame][signal.index()].clone()),
            Backend::Compiled { transition, .. } => {
                let slot = transition
                    .slot_of(signal)
                    .ok_or(UnrollError::NotInSchedule { signal })?;
                self.ensure_slot(frame, slot);
                Ok(self.slot_lits(frame, slot).expect("just encoded").to_vec())
            }
        }
    }

    /// Literals of a signal in a frame, **without** encoding anything:
    /// read-only companion of [`Unrolling::lits`] for use after a solve.
    fn peek_lits(&self, frame: usize, signal: SignalId) -> Result<Vec<Lit>, UnrollError> {
        self.check_frame(frame)?;
        match &self.backend {
            Backend::Eager { frames } => Ok(frames[frame][signal.index()].clone()),
            Backend::Compiled { transition, frames } => {
                let slot = transition
                    .slot_of(signal)
                    .ok_or(UnrollError::NotInSchedule { signal })?;
                frames[frame][slot as usize]
                    .clone()
                    .ok_or(UnrollError::NotEncoded { signal, frame })
            }
        }
    }

    /// Literal of a single-bit signal in a frame.
    ///
    /// # Errors
    ///
    /// Returns an error if the signal is wider than one bit or the frame is
    /// not built.
    pub fn bit_lit(&mut self, frame: usize, signal: SignalId) -> Result<Lit, UnrollError> {
        let lits = self.lits(frame, signal)?;
        if lits.len() != 1 {
            return Err(UnrollError::NotABit {
                signal,
                width: lits.len() as u32,
            });
        }
        Ok(lits[0])
    }

    /// Adds a hard constraint that a single-bit signal is true in a frame.
    ///
    /// # Errors
    ///
    /// Returns an error if the signal is not a single bit or the frame is not
    /// built.
    pub fn assume_signal_true(
        &mut self,
        frame: usize,
        signal: SignalId,
    ) -> Result<(), UnrollError> {
        let lit = self.bit_lit(frame, signal)?;
        self.gates.assert_true(lit);
        Ok(())
    }

    /// Adds a hard constraint that a single-bit signal is false in a frame.
    ///
    /// # Errors
    ///
    /// Returns an error if the signal is not a single bit or the frame is not
    /// built.
    pub fn assume_signal_false(
        &mut self,
        frame: usize,
        signal: SignalId,
    ) -> Result<(), UnrollError> {
        let lit = self.bit_lit(frame, signal)?;
        self.gates.assert_true(!lit);
        Ok(())
    }

    /// Adds a hard constraint that two equally wide signals are equal in a
    /// frame.
    ///
    /// # Errors
    ///
    /// Returns an error on width mismatch or unbuilt frame.
    pub fn assume_signals_equal(
        &mut self,
        frame: usize,
        a: SignalId,
        b: SignalId,
    ) -> Result<(), UnrollError> {
        let a_lits = self.lits(frame, a)?;
        let b_lits = self.lits(frame, b)?;
        if a_lits.len() != b_lits.len() {
            return Err(UnrollError::WidthMismatch {
                left: a_lits.len() as u32,
                right: b_lits.len() as u32,
            });
        }
        for (x, y) in a_lits.into_iter().zip(b_lits) {
            self.gates.assert_equal(x, y);
        }
        Ok(())
    }

    /// Adds a hard constraint that a signal holds a constant value in a frame.
    ///
    /// # Errors
    ///
    /// Returns an error if the frame is not built.
    pub fn assume_signal_equals_const(
        &mut self,
        frame: usize,
        signal: SignalId,
        value: u64,
    ) -> Result<(), UnrollError> {
        let lits = self.lits(frame, signal)?;
        let value = BitVec::new(value, lits.len() as u32);
        for (i, lit) in lits.into_iter().enumerate() {
            if value.get_bit(i as u32) {
                self.gates.assert_true(lit);
            } else {
                self.gates.assert_true(!lit);
            }
        }
        Ok(())
    }

    /// Builds (without asserting) a literal that is true iff two signals are
    /// equal in a frame.
    ///
    /// # Errors
    ///
    /// Returns an error on width mismatch or unbuilt frame.
    pub fn equality_lit(
        &mut self,
        frame: usize,
        a: SignalId,
        b: SignalId,
    ) -> Result<Lit, UnrollError> {
        let a_lits = self.lits(frame, a)?;
        let b_lits = self.lits(frame, b)?;
        if a_lits.len() != b_lits.len() {
            return Err(UnrollError::WidthMismatch {
                left: a_lits.len() as u32,
                right: b_lits.len() as u32,
            });
        }
        let bits: Vec<Lit> = a_lits
            .into_iter()
            .zip(b_lits)
            .map(|(x, y)| self.gates.xnor(x, y))
            .collect();
        let out = self.gates.and_many(&bits);
        // The caller holds on to this literal across solves and possibly
        // across simplification runs.
        self.gates.freeze(out);
        Ok(out)
    }

    /// Adds an arbitrary clause over previously obtained literals.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        self.gates.add_clause(lits);
    }

    /// Allocates a fresh free literal (useful for selector/relaxation
    /// variables in iterative flows). The literal is frozen: it survives CNF
    /// simplification, so it can be assumed or constrained at any later
    /// point of the session.
    pub fn fresh_lit(&mut self) -> Lit {
        let l = self.gates.fresh();
        self.gates.freeze(l);
        l
    }

    /// Adds a clause guarded by an activation literal: the clause only bites
    /// while `activation` is assumed in [`Unrolling::solve`]. This is how an
    /// incremental session poses a *retractable* proof obligation — the
    /// counterpart of [`Unrolling::retire_activation`].
    pub fn add_clause_activated<I>(&mut self, activation: Lit, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        let clause: Vec<Lit> = std::iter::once(!activation).chain(lits).collect();
        self.gates.add_clause(clause);
    }

    /// Permanently disables every clause guarded by `activation` (adds the
    /// unit clause `!activation`). After retiring, the activation literal
    /// must not be assumed again.
    pub fn retire_activation(&mut self, activation: Lit) {
        self.gates.add_clause([!activation]);
    }

    /// Installs (or removes) a shared interrupt flag on the underlying
    /// solver; raising the flag from another thread makes an in-flight
    /// [`Unrolling::solve`] return [`SatResult::Unknown`]. See
    /// [`sat::Solver::set_interrupt`].
    pub fn set_interrupt(&mut self, flag: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>) {
        self.gates.solver_mut().set_interrupt(flag);
    }

    /// Replaces the deterministic per-call resource budget (see
    /// [`UnrollOptions::budget`]); takes effect from the next
    /// [`Unrolling::solve`] call.
    pub fn set_budget(&mut self, budget: sat::Budget) {
        self.options.budget = budget;
    }

    /// The deterministic per-call resource budget currently in force.
    pub fn budget(&self) -> sat::Budget {
        self.options.budget
    }

    /// Installs (or removes) a cooperative [`sat::CancelToken`] on the
    /// underlying solver; raising it makes an in-flight
    /// [`Unrolling::solve`] return [`SatResult::Unknown`] at the next
    /// restart boundary, with [`Unrolling::last_stop`] reporting
    /// [`sat::StopCause::Cancelled`].
    pub fn set_cancel_token(&mut self, token: Option<sat::CancelToken>) {
        self.gates.solver_mut().set_cancel_token(token);
    }

    /// Why the most recent solver episode stopped early (`None` after a
    /// definitive sat/unsat answer). See [`sat::Solver::last_stop`].
    pub fn last_stop(&self) -> Option<sat::StopCause> {
        self.gates.solver().last_stop()
    }

    /// Arms a one-shot deterministic fault on the underlying solver (see
    /// [`sat::Solver::inject_fault`]). Compiled only under the `faults`
    /// feature (which forwards to `sat/faults`).
    #[cfg(feature = "faults")]
    pub fn inject_fault(&mut self, plan: Option<sat::faults::FaultPlan>) {
        self.gates.solver_mut().inject_fault(plan);
    }

    /// Runs the SAT solver under the given assumption literals.
    ///
    /// Unless [`UnrollOptions::no_simplify`] is set, the incremental-safe
    /// CNF simplification pipeline is triggered *adaptively*: after a
    /// substantial database growth (at least 512 new problem clauses and an
    /// eighth of the database — in practice, a bound extension) the query is
    /// first attempted under the
    /// [`UnrollOptions::simplify_trial_conflicts`] conflict cap. Queries
    /// that finish inside the cap never pay for the pipeline; queries that
    /// exhaust it are simplified (with the probing budget scaled to the
    /// growth) and then solved to completion — keeping every clause the
    /// trial learned.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SatResult {
        let user_limit = self.options.conflict_limit;
        let budget = self.options.budget;
        self.gates.solver_mut().set_budget(budget);
        if self.options.no_simplify || !self.simplification_due() {
            return self.gates.solver_mut().solve_with_assumptions(assumptions);
        }

        // Trial solve: cheap queries finish here and skip the pipeline.
        let trial = self.options.simplify_trial_conflicts;
        let trial_limit = user_limit.map_or(trial, |l| l.min(trial));
        let solver = self.gates.solver_mut();
        let stats_before = solver.stats();
        solver.set_conflict_limit(Some(trial_limit));
        let result = {
            let mut span = obs::span("bmc.trial_solve");
            span.attr_u64("trial_limit", trial_limit);
            solver.solve_with_assumptions(assumptions)
        };
        solver.set_conflict_limit(user_limit);
        let spent = solver
            .stats()
            .conflicts
            .saturating_sub(stats_before.conflicts);
        let user_exhausted = user_limit.is_some_and(|l| spent >= l);
        // A budget-exhausted or cancelled trial already is the honest answer
        // for this call: skip the pipeline and let the caller inspect
        // `last_stop` (the session stays resumable).
        let stopped_early = matches!(
            solver.last_stop(),
            Some(sat::StopCause::BudgetExhausted | sat::StopCause::Cancelled)
        );
        if !matches!(result, SatResult::Unknown)
            || user_exhausted
            || stopped_early
            || solver.interrupt_raised()
        {
            return result;
        }

        // The query is hard; simplification effort will pay for itself.
        self.run_simplify();
        if self.options.search.vivify {
            // Vivification as inprocessing: probe-strengthen the database
            // the pipeline just rebuilt, before committing to the full
            // solve. Strengthenings are logged as lemma/delete pairs, so a
            // proof-logging session stays certifiable.
            self.gates.solver_mut().vivify(Self::VIVIFY_PROPAGATIONS);
        }
        let solver = self.gates.solver_mut();
        if let Some(limit) = user_limit {
            solver.set_conflict_limit(Some(limit.saturating_sub(spent).max(1)));
        }
        // Charge the trial episode plus the simplification/vivification work
        // against the per-call budget, so the whole call — not each episode —
        // respects it. An already-exhausted remainder stops the full solve at
        // its first checkpoint with `StopCause::BudgetExhausted`.
        solver.set_budget(budget.minus(&solver.stats().delta_since(&stats_before)));
        let result = solver.solve_with_assumptions(assumptions);
        solver.set_conflict_limit(user_limit);
        solver.set_budget(budget);
        result
    }

    /// Whether the problem-clause count has grown enough since the last
    /// simplification run to make another pass worthwhile (at least 512 new
    /// clauses and at least an eighth of the database).
    fn simplification_due(&self) -> bool {
        let clauses = self.gates.solver().num_clauses();
        let grown = clauses.saturating_sub(self.clauses_at_last_simplify);
        grown >= 512 && grown * 8 >= clauses
    }

    /// Runs the simplification pipeline, with the failed-literal probing
    /// budget capped in proportion to the database growth since the last
    /// pass (small frame extensions do not deserve a full probing sweep).
    fn run_simplify(&mut self) {
        let clauses = self.gates.solver().num_clauses();
        let grown = clauses.saturating_sub(self.clauses_at_last_simplify) as u64;
        let config = sat::SimplifyConfig {
            failed_literal_propagations: (grown * 25).clamp(20_000, 100_000),
            ..sat::SimplifyConfig::default()
        };
        self.gates.simplify(&config);
        self.clauses_at_last_simplify = self.gates.solver().num_clauses();
    }

    /// Sets the initial learned-clause budget of the underlying solver (see
    /// [`sat::Solver::set_learnt_budget`]); stress tests use a small budget
    /// to force frequent database reductions and arena collections.
    pub fn set_learnt_budget(&mut self, budget: usize) {
        self.gates.solver_mut().set_learnt_budget(budget);
    }

    /// Fraction of the solver's clause-literal arena occupied by tombstoned
    /// holes (see [`sat::Solver::arena_wasted_ratio`]).
    pub fn arena_wasted_ratio(&self) -> f64 {
        self.gates.solver().arena_wasted_ratio()
    }

    /// Exhaustive watch-list/reason invariant check of the underlying solver
    /// (see [`sat::Solver::debug_validate`]); used by the arena-GC test
    /// suites.
    pub fn debug_validate(&self) -> Result<(), String> {
        self.gates.solver().debug_validate()
    }

    /// Conflict statistics of the underlying solver.
    pub fn solver_stats(&self) -> sat::SolverStats {
        self.gates.solver().stats()
    }

    /// Counters of the CNF simplification pipeline (all zero when
    /// [`UnrollOptions::no_simplify`] disabled it).
    pub fn simplify_stats(&self) -> sat::SimplifyStats {
        self.gates.solver().simplify_stats()
    }

    /// The DRAT proof log accumulated so far, when
    /// [`UnrollOptions::proof_log`] is on. The log covers every clause of the
    /// unrolled frame CNF (as axioms) plus all derived clauses and deletions;
    /// snapshot it with `.clone()` to package an unsat certificate for a
    /// particular query.
    pub fn proof_log(&self) -> Option<&sat::ProofLog> {
        self.gates.solver().proof_log()
    }

    /// Propagation budget of the vivification pass run after each
    /// simplification (see [`UnrollOptions::search`]).
    const VIVIFY_PROPAGATIONS: u64 = 100_000;

    /// Maximum literal count of an exported learned clause.
    const SHARE_MAX_LEN: usize = 12;
    /// Maximum LBD of an exported learned clause (the quality gate).
    const SHARE_MAX_LBD: u32 = 5;

    /// Fingerprint of the *shareable theory* of this unrolling: the compiled
    /// schedule plus everything that changes what a `(frame, slot, bit)`
    /// term denotes (initial-value mode, frame-0 aliases). Two unrollings
    /// with equal fingerprints encode the same transition terms, so clauses
    /// exported by one are sound in the other. `None` in eager mode, which
    /// does not participate in sharing.
    pub fn share_fingerprint(&self) -> Option<u64> {
        let transition = match &self.backend {
            Backend::Compiled { transition, .. } => transition,
            Backend::Eager { .. } => return None,
        };
        // FNV-1a over a structural rendering of the schedule and options.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        fold(format!("{:?}", transition.ops()).as_bytes());
        fold(&[self.options.use_initial_values as u8]);
        let mut aliases: Vec<(usize, usize)> = self
            .frame0_aliases
            .iter()
            .map(|(&register, source)| (register, source.index()))
            .collect();
        aliases.sort_unstable();
        fold(format!("{aliases:?}").as_bytes());
        Some(hash)
    }

    /// Builds the canonical-term maps of the encoded frames: variable →
    /// first `(frame, slot, bit)` position (with the representative
    /// polarity), and position → local literal. Positions pack into a `u64`
    /// as `frame << 40 | slot << 16 | bit`; iteration order is frame-major
    /// and deterministic, but the *choice* of representative never needs to
    /// match across sessions — a position always denotes the same term.
    fn canon_maps(&self) -> (HashMap<u32, (u64, bool)>, HashMap<u64, Lit>) {
        let frames = match &self.backend {
            Backend::Compiled { frames, .. } => frames,
            Backend::Eager { .. } => return (HashMap::new(), HashMap::new()),
        };
        let mut var_to_pos: HashMap<u32, (u64, bool)> = HashMap::new();
        let mut pos_to_lit: HashMap<u64, Lit> = HashMap::new();
        for (f, slots) in frames.iter().enumerate() {
            for (s, lits) in slots.iter().enumerate() {
                let Some(lits) = lits else { continue };
                for (bit, &l) in lits.iter().enumerate() {
                    let pos = (f as u64) << 40 | (s as u64) << 16 | bit as u64;
                    pos_to_lit.insert(pos, l);
                    var_to_pos
                        .entry(l.var().index() as u32)
                        .or_insert((pos, l.is_positive()));
                }
            }
        }
        (var_to_pos, pos_to_lit)
    }

    /// Drains every exportable learned clause into `sink`, rewritten over
    /// canonical term ids (see [`SharedClause`]). Clauses mentioning a
    /// variable with no canonical position — an internal Tseitin variable
    /// that survived elimination — cannot be expressed in another session
    /// and are skipped. No-op in eager mode.
    pub fn export_shared(&mut self, sink: &mut Vec<SharedClause>) {
        if matches!(self.backend, Backend::Eager { .. }) {
            return;
        }
        let (var_to_pos, _) = self.canon_maps();
        self.gates.solver_mut().drain_exportable(
            Self::SHARE_MAX_LEN,
            Self::SHARE_MAX_LBD,
            |lits, ceiling| {
                let mut canon = Vec::with_capacity(lits.len());
                for &l in lits {
                    let Some(&(pos, rep_positive)) = var_to_pos.get(&(l.var().index() as u32))
                    else {
                        return;
                    };
                    canon.push(pos << 1 | (l.is_positive() == rep_positive) as u64);
                }
                sink.push(SharedClause {
                    lits: canon,
                    ceiling,
                });
            },
        );
    }

    /// Imports clauses exported by another unrolling with the same
    /// [`Unrolling::share_fingerprint`]. A clause is attached only when
    /// every canonical position is already encoded here (the frame-tag
    /// filter falls out of this: positions of unbuilt frames are unknown)
    /// and the solver's freeze-contract check passes; everything else is
    /// skipped. Returns the number of clauses attached.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search (imports happen between solves).
    pub fn import_shared(&mut self, clauses: &[SharedClause]) -> usize {
        if matches!(self.backend, Backend::Eager { .. }) {
            return 0;
        }
        let (_, pos_to_lit) = self.canon_maps();
        let mut imported = 0;
        let mut local = Vec::with_capacity(Self::SHARE_MAX_LEN);
        for clause in clauses {
            local.clear();
            let mut expressible = true;
            for &canon in &clause.lits {
                let Some(&rep) = pos_to_lit.get(&(canon >> 1)) else {
                    expressible = false;
                    break;
                };
                local.push(if canon & 1 == 1 { rep } else { !rep });
            }
            if expressible
                && self
                    .gates
                    .solver_mut()
                    .import_shared(&local, clause.ceiling)
            {
                imported += 1;
            }
        }
        imported
    }

    /// Reads the value of a signal in a frame from a model.
    ///
    /// # Errors
    ///
    /// Returns an error if the frame is not built, or — in compiled mode —
    /// [`UnrollError::NotEncoded`]/[`UnrollError::NotInSchedule`] when the
    /// signal never got literals (it was irrelevant to every query, so the
    /// model genuinely carries no value for it).
    pub fn value_in_model(
        &self,
        model: &Model,
        frame: usize,
        signal: SignalId,
    ) -> Result<BitVec, UnrollError> {
        let lits = self.peek_lits(frame, signal)?;
        let mut v = BitVec::zero(lits.len() as u32);
        for (i, &lit) in lits.iter().enumerate() {
            v = v.with_bit(i as u32, model.lit_is_true(lit));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl::SplitMix64;

    /// Builds a small combinational netlist exercising every operator, then
    /// cross-checks the bit-blasted encoding against the word-level
    /// simulator semantics for random inputs — in both encoding modes.
    #[test]
    fn bitblasting_matches_word_level_semantics() {
        let width = 6u32;
        let mut n = Netlist::new("ops");
        let a = n.input("a", width);
        let b = n.input("b", width);
        let shift_amount = n.input("sh", 3);
        let ops: Vec<(&str, SignalId)> = vec![
            ("and", n.and(a, b)),
            ("or", n.or(a, b)),
            ("xor", n.xor(a, b)),
            ("add", n.add(a, b)),
            ("sub", n.sub(a, b)),
            ("not", n.not(a)),
            ("neg", n.neg(a)),
            ("eq", n.eq(a, b)),
            ("ne", n.ne(a, b)),
            ("ult", n.ult(a, b)),
            ("ule", n.ule(a, b)),
            ("slt", n.slt(a, b)),
            ("shl", n.shl(a, shift_amount)),
            ("shr", n.shr(a, shift_amount)),
            ("redor", n.reduce_or(a)),
            ("redand", n.reduce_and(a)),
            ("redxor", n.reduce_xor(a)),
            ("slice", n.slice(a, 4, 2)),
            ("concat", n.concat(a, b)),
        ];
        let cond = n.bit(b, 0);
        let mux = n.mux(cond, a, b);
        let mut ops = ops;
        ops.push(("mux", mux));

        let mut rng = SplitMix64::new(7);
        for trial in 0..12 {
            let av = rng.gen_u64_below(1u64 << width);
            let bv = rng.gen_u64_below(1u64 << width);
            let sh = rng.gen_u64_below(8);

            // Reference: evaluate through the word-level BitVec semantics.
            let abv = BitVec::new(av, width);
            let bbv = BitVec::new(bv, width);
            let expected: Vec<(String, BitVec)> = ops
                .iter()
                .map(|(name, _)| {
                    let value = match *name {
                        "and" => abv.and(&bbv),
                        "or" => abv.or(&bbv),
                        "xor" => abv.xor(&bbv),
                        "add" => abv.add(&bbv),
                        "sub" => abv.sub(&bbv),
                        "not" => abv.not(),
                        "neg" => abv.neg(),
                        "eq" => abv.eq_bit(&bbv),
                        "ne" => abv.eq_bit(&bbv).not(),
                        "ult" => abv.ult(&bbv),
                        "ule" => abv.ule(&bbv),
                        "slt" => abv.slt(&bbv),
                        "shl" => abv.shl(sh.min(u64::from(width)) as u32),
                        "shr" => abv.shr(sh.min(u64::from(width)) as u32),
                        "redor" => abv.reduce_or(),
                        "redand" => abv.reduce_and(),
                        "redxor" => abv.reduce_xor(),
                        "slice" => abv.slice(4, 2),
                        "concat" => abv.concat(&bbv),
                        "mux" => {
                            if bbv.get_bit(0) {
                                abv
                            } else {
                                bbv
                            }
                        }
                        other => panic!("unknown op {other}"),
                    };
                    (name.to_string(), value)
                })
                .collect();

            // Alternate between the compiled and the eager strategy so both
            // encoders stay pinned to the same word-level semantics.
            let options = if trial % 2 == 0 {
                UnrollOptions::default()
            } else {
                UnrollOptions::default().eager()
            };
            let mut u = Unrolling::new(&n, options);
            u.assume_signal_equals_const(0, a, av).unwrap();
            u.assume_signal_equals_const(0, b, bv).unwrap();
            u.assume_signal_equals_const(0, shift_amount, sh).unwrap();
            // Materialize every observed operator before solving (the lazy
            // compiled mode only encodes what queries touch).
            for (_, signal) in &ops {
                u.lits(0, *signal).unwrap();
            }
            let result = u.solve(&[]);
            let model = result.model().expect("combinational cone is satisfiable");
            for ((name, signal), (ename, evalue)) in ops.iter().zip(&expected) {
                assert_eq!(name, ename);
                let got = u.value_in_model(model, 0, *signal).unwrap();
                assert_eq!(
                    got, *evalue,
                    "operator {name} disagrees for a={av:#x} b={bv:#x} sh={sh}"
                );
            }
        }
    }

    fn counter_netlist() -> (Netlist, rtl::RegisterHandle) {
        let mut n = Netlist::new("counter");
        let c = n.register_init("c", 4, BitVec::zero(4));
        let one = n.lit(1, 4);
        let next = n.add(c.value(), one);
        n.set_next(c, next);
        (n, c)
    }

    #[test]
    fn sequential_unrolling_from_reset_matches_counting() {
        let (n, c) = counter_netlist();
        let mut u = Unrolling::new(&n, UnrollOptions::from_reset_state());
        u.extend_to(5);
        assert_eq!(u.frame_count(), 6);
        // The counter value at frame 5 must be 5; asserting anything else is
        // unsatisfiable.
        u.assume_signal_equals_const(5, c.value(), 5).unwrap();
        assert!(u.solve(&[]).is_sat());
        u.assume_signal_equals_const(4, c.value(), 0).unwrap();
        assert!(u.solve(&[]).is_unsat());
    }

    #[test]
    fn symbolic_initial_state_allows_any_start() {
        let (n, c) = counter_netlist();
        let mut u = Unrolling::new(&n, UnrollOptions::symbolic_initial_state());
        u.extend_to(2);
        // From a symbolic initial state the counter can reach 9 at frame 2
        // (by starting at 7), which is impossible from reset.
        u.assume_signal_equals_const(2, c.value(), 9).unwrap();
        let result = u.solve(&[]);
        let model = result.model().expect("sat");
        let start = u.value_in_model(model, 0, c.value()).unwrap();
        assert_eq!(start.as_u64(), 7);
    }

    #[test]
    fn equality_lit_and_assumptions() {
        let mut n = Netlist::new("eq");
        let a = n.input("a", 4);
        let b = n.input("b", 4);
        n.output("a", a);
        let mut u = Unrolling::new(&n, UnrollOptions::default());
        let eq = u.equality_lit(0, a, b).unwrap();
        // Force inequality and equality through assumptions.
        assert!(u.solve(&[eq]).is_sat());
        assert!(u.solve(&[!eq]).is_sat());
        u.assume_signals_equal(0, a, b).unwrap();
        assert!(u.solve(&[!eq]).is_unsat());
    }

    #[test]
    fn errors_on_misuse() {
        let mut n = Netlist::new("err");
        let a = n.input("a", 4);
        let b = n.input("b", 2);
        n.output("a", a);
        let mut u = Unrolling::new(&n, UnrollOptions::default());
        assert!(matches!(u.bit_lit(0, a), Err(UnrollError::NotABit { .. })));
        assert!(matches!(
            u.assume_signals_equal(0, a, b),
            Err(UnrollError::WidthMismatch { .. })
        ));
        assert!(matches!(
            u.lits(3, a),
            Err(UnrollError::FrameOutOfRange { .. })
        ));
    }

    #[test]
    fn unknown_is_reported_under_tiny_conflict_budget() {
        // A multiplier-free but non-trivial equivalence: (a + b) == (b + a)
        // is easy, so instead make the solver prove a ^ b ^ a ^ b == 0 over
        // many frames with an extremely small budget to trigger Unknown on
        // at least some runs; to stay deterministic we just check that the
        // API accepts a limit and still returns a definitive answer when the
        // limit is generous.
        let (n, c) = counter_netlist();
        let mut u = Unrolling::new(
            &n,
            UnrollOptions::from_reset_state().with_conflict_limit(Some(1_000_000)),
        );
        u.extend_to(2);
        u.assume_signal_equals_const(2, c.value(), 2).unwrap();
        assert!(u.solve(&[]).is_sat());
    }

    /// A design with provably dead logic: compiled encoding must produce a
    /// strictly smaller CNF than the eager baseline while agreeing on the
    /// verdict — the fast "CNF-size snapshot" acceptance check.
    #[test]
    fn compiled_cnf_is_a_strict_subset_of_eager() {
        let mut n = Netlist::new("partly_dead");
        let a = n.input("a", 8);
        let b = n.input("b", 8);
        let live = n.register("live", 8);
        let dead = n.register("dead", 8);
        let live_next = n.add(live.value(), a);
        let dead_next = {
            let sel = n.bit(b, 0);
            let m = n.mux(sel, dead.value(), b);
            n.sub(m, a)
        };
        n.set_next(live, live_next);
        n.set_next(dead, dead_next);
        // Duplicated subterm: encoded once by the compiler.
        let cmp1 = n.ult(live.value(), b);
        let cmp2 = n.ult(live.value(), b);
        n.output("cmp1", cmp1);
        n.output("cmp2", cmp2);

        let run = |options: UnrollOptions| -> (usize, usize, bool) {
            let mut u = Unrolling::new(&n, options);
            u.extend_to(2);
            u.assume_signal_true(2, cmp1).unwrap();
            u.assume_signal_true(2, cmp2).unwrap();
            let sat = u.solve(&[]).is_sat();
            (u.num_vars(), u.num_clauses(), sat)
        };
        let (eager_vars, eager_clauses, eager_sat) = run(UnrollOptions::default().eager());
        let (lazy_vars, lazy_clauses, lazy_sat) = run(UnrollOptions::default());
        assert_eq!(eager_sat, lazy_sat, "strategies must agree on the verdict");
        assert!(
            lazy_vars < eager_vars && lazy_clauses < eager_clauses,
            "compiled encoding must be strictly smaller: {lazy_vars}/{lazy_clauses} \
             vs eager {eager_vars}/{eager_clauses}"
        );
        // The dead register's cone is never encoded by the compiled path.
        let mut u = Unrolling::new(&n, UnrollOptions::default());
        u.extend_to(1);
        u.assume_signal_true(1, cmp1).unwrap();
        let stats = u.encode_stats();
        assert_eq!(stats.strategy, "compiled");
        assert!(stats.encoded_slots < 2 * stats.scheduled_slots);
    }

    /// The final frame of a compiled unrolling never encodes next-state
    /// logic (no deeper frame consumes it) — the "per frame" half of the
    /// cone-of-influence pruning.
    #[test]
    fn final_frame_skips_next_state_logic() {
        let (n, c) = counter_netlist();
        let mut eager = Unrolling::new(&n, UnrollOptions::default().eager());
        eager.extend_to(1);
        eager.assume_signal_equals_const(1, c.value(), 3).unwrap();
        let mut lazy = Unrolling::new(&n, UnrollOptions::default());
        lazy.extend_to(1);
        lazy.assume_signal_equals_const(1, c.value(), 3).unwrap();
        // Eager pays for the adder in both frames; lazy only in frame 0.
        assert!(lazy.num_vars() < eager.num_vars());
        assert!(lazy.encode_stats().encoded_slots < 2 * lazy.encode_stats().scheduled_slots);
    }

    /// Frame-0 register aliases work identically through the compiled path.
    #[test]
    fn compiled_frame0_aliases_share_literals() {
        let mut n = Netlist::new("aliased");
        let r1 = n.register("r1", 4);
        let r2 = n.register("r2", 4);
        let one = n.lit(1, 4);
        let n1 = n.add(r1.value(), one);
        let n2 = n.add(r2.value(), one);
        n.set_next(r1, n1);
        n.set_next(r2, n2);
        let differ = n.ne(r1.value(), r2.value());
        n.output("differ", differ);

        for options in [UnrollOptions::default(), UnrollOptions::default().eager()] {
            let mut u = Unrolling::with_frame0_aliases(&n, options, &[(r2.value(), r1.value())]);
            u.extend_to(1);
            // Registers start structurally equal and step identically, so
            // they can never differ at frame 1.
            u.assume_signal_true(1, differ).unwrap();
            assert!(u.solve(&[]).is_unsat());
        }
    }
}
