//! # `sim` — cycle-accurate simulation of `rtl` netlists
//!
//! The simulator plays three roles in the UPEC reproduction:
//!
//! 1. **Functional validation** of the MiniRV SoC designs (the stand-ins for
//!    RocketChip): the ISA-level golden model in the `soc` crate is checked
//!    against the RTL by co-simulation.
//! 2. **Attack demonstration**: the Orc attack (paper Fig. 2) and the
//!    Meltdown-style cache footprint (paper Fig. 1) are *timing* phenomena.
//!    The examples and benches run the attacker programs on the simulator
//!    and measure cycle counts, exactly as an attacker with access to a
//!    cycle counter would.
//! 3. **Verdict certification**: bounded-model-checking counterexamples are
//!    decoded into [`WitnessTrace`]s and replayed here, confirming each
//!    violation through the word-level semantics with no solver in the loop
//!    (see `docs/certificates.md` at the repository root).
//!
//! The simulator is a straightforward two-value, word-level evaluator: the
//! netlist's creation order is topological, so one in-order sweep per clock
//! edge suffices.
//!
//! # Example
//!
//! ```
//! use rtl::{Netlist, BitVec};
//! use sim::Simulator;
//!
//! let mut n = Netlist::new("toggler");
//! let t = n.register_init("t", 1, BitVec::zero(1));
//! let inverted = n.not(t.value());
//! n.set_next(t, inverted);
//! n.output("t", t.value());
//!
//! let mut sim = Simulator::new(n);
//! sim.step();
//! assert_eq!(sim.peek_output("t")?.as_u64(), 1);
//! sim.step();
//! assert_eq!(sim.peek_output("t")?.as_u64(), 0);
//! # Ok::<(), sim::SimError>(())
//! ```

#![warn(missing_docs)]

mod eval;
mod replay;
mod simulator;
mod trace;

pub use replay::WitnessTrace;
pub use simulator::{SimError, Simulator};
pub use trace::Trace;
