//! TheHuzz-style instruction fuzzing over the SoC variants.
//!
//! This module is the front half of the repository's *fuzz → mine → minimize
//! → promote* pipeline (see `docs/scenarios.md`): a seeded, ISA-complete
//! random-program generator ([`ProgramGen`]), a two-secret execution oracle
//! that flags **unique-execution divergences** ([`divergence`]), a miner that
//! sweeps random programs across design variants ([`mine`]), and a
//! delta-debugging minimizer that shrinks each divergent program to a minimal
//! witness ([`minimize`]).
//!
//! The oracle is exactly UPEC's notion of leakage, evaluated on concrete
//! executions instead of a symbolic miter: a program executes *uniquely* iff
//! none of its observable effects (architectural registers, memory, trap and
//! completion timing, cache tag/valid footprint) depend on the value of the
//! PMP-protected secret. Running the same program twice with two different
//! secret values and diffing the observations is the simulation-level
//! counterpart of the two-instance miter the `upec` crate solves formally —
//! every divergence found here is a candidate scenario for the registry, with
//! the formal engine as the final judge.
//!
//! # Examples
//!
//! ```
//! use soc::fuzz::{FuzzOptions, ProgramGen};
//! use soc::{SocConfig, SocVariant};
//!
//! // Same seed, same program — the whole pipeline is reproducible.
//! let config = SocConfig::new(SocVariant::Secure);
//! let a = ProgramGen::new(7, &config).next_program(8);
//! let b = ProgramGen::new(7, &config).next_program(8);
//! assert_eq!(a, b);
//!
//! // The paper's transient sequence is a divergence witness on the
//! // Meltdown-style variant, and unique execution on the secure design.
//! let opts = FuzzOptions::default();
//! let program = upec_transient_demo(&config);
//! assert!(soc::fuzz::divergence(&config, &program, &opts).is_none());
//! # use soc::{Instruction, Program};
//! # fn upec_transient_demo(config: &SocConfig) -> Program {
//! #     let mut p = Program::new(0);
//! #     p.push(Instruction::Addi { rd: 1, rs1: 0, imm: config.secret_addr as i32 });
//! #     p.push(Instruction::Lw { rd: 4, rs1: 1, offset: 0 });
//! #     p.push(Instruction::Lw { rd: 5, rs1: 4, offset: 0 });
//! #     p.push_nops(2);
//! #     p
//! # }
//! ```

use crate::{Instruction, Program, SocConfig, SocSim, SocVariant};
use rtl::SplitMix64;
use std::time::{Duration, Instant};

/// Word-aligned base of the scratch array every generated program may freely
/// load from and store to.
pub const SCRATCH_BASE: u32 = 0x40;

/// Options of one fuzz-mining run. All fields are plain data so a run is
/// fully described by its options — equal options (and seeds) reproduce
/// byte-identical programs, divergences and witnesses.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Seed of the program generator.
    pub seed: u64,
    /// Number of programs to generate and execute.
    pub programs: usize,
    /// Minimum instruction count of a generated program body.
    pub min_len: usize,
    /// Maximum instruction count of a generated program body.
    pub max_len: usize,
    /// First secret value. Secrets double as transiently-dereferenced
    /// addresses (the paper's Fig. 1 experiment), so both defaults are
    /// word-aligned and map to *different* cache lines and tags.
    pub secret_a: u32,
    /// Second secret value.
    pub secret_b: u32,
    /// Design variants to sweep. The secure design is included by default as
    /// a soundness control: it must never diverge.
    pub variants: Vec<SocVariant>,
    /// Optional wall-clock cap; generation stops early once exceeded. Capped
    /// runs are still deterministic *per machine-independent prefix*: the
    /// programs that do run are identical, only the cut-off point moves —
    /// reproducibility tests should leave this `None`.
    pub time_budget: Option<Duration>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        Self {
            seed: 0xdabd_4c19,
            programs: 200,
            min_len: 6,
            max_len: 16,
            secret_a: 0x184,
            secret_b: 0x190,
            variants: vec![
                SocVariant::Secure,
                SocVariant::MeltdownStyle,
                SocVariant::Orc,
            ],
            time_budget: None,
        }
    }
}

impl FuzzOptions {
    /// Sets the generator seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the program count (builder style).
    pub fn with_programs(mut self, programs: usize) -> Self {
        self.programs = programs;
        self
    }

    /// Sets the wall-clock cap (builder style).
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }
}

/// Seeded random-program generator covering the full co-simulatable MiniRV
/// ISA.
///
/// The instruction mix includes every ALU operation, `lui`, forward branches
/// and `jal`, scratch-array loads/stores through two designated pointer
/// registers, pointer materialization (including a pointer at the protected
/// secret), and *dependent loads* whose base register is the destination of
/// the most recent load — the ingredient transient-execution attacks are made
/// of. CSR accesses and `mret` are deliberately excluded: the golden model's
/// cycle CSR counts retired instructions, not clock cycles, so programs
/// containing them would diverge from the RTL for benign timing reasons and
/// drown real signals.
///
/// `x1` and `x2` are pointer registers: only the pointer-materialization
/// class writes them, so loads and stores through them always target
/// well-known addresses.
#[derive(Debug, Clone)]
pub struct ProgramGen {
    rng: SplitMix64,
    num_registers: u32,
    pointer_pool: [i32; 4],
    pending: Vec<Instruction>,
}

impl ProgramGen {
    /// Creates a generator for programs runnable on `config`'s register file.
    pub fn new(seed: u64, config: &SocConfig) -> Self {
        Self {
            rng: SplitMix64::new(seed),
            num_registers: config.num_registers,
            pointer_pool: [
                SCRATCH_BASE as i32,
                (SCRATCH_BASE + 16) as i32,
                0x80,
                config.secret_addr as i32,
            ],
            pending: Vec::new(),
        }
    }

    fn reg(&mut self) -> u32 {
        self.rng.gen_range(0..i64::from(self.num_registers)) as u32
    }

    /// A register that is not one of the pointer registers `x1`/`x2` (used
    /// as the destination of value-producing instructions, so pointers stay
    /// well-known addresses).
    fn data_reg(&mut self) -> u32 {
        loop {
            let r = self.reg();
            if r != 1 && r != 2 {
                return r;
            }
        }
    }

    fn pointer_reg(&mut self) -> u32 {
        if self.rng.gen_bool() {
            1
        } else {
            2
        }
    }

    /// Generates the next instruction of the stream.
    pub fn next_instruction(&mut self) -> Instruction {
        if !self.pending.is_empty() {
            return self.pending.remove(0);
        }
        let rd = self.data_reg();
        let rs1 = self.reg();
        let rs2 = self.reg();
        match self.rng.gen_range(0..20) {
            0 => Instruction::Addi {
                rd,
                rs1,
                imm: self.rng.gen_range(-512..512) as i32,
            },
            1 => Instruction::Add { rd, rs1, rs2 },
            2 => Instruction::Sub { rd, rs1, rs2 },
            3 => Instruction::Xor { rd, rs1, rs2 },
            4 => Instruction::Or { rd, rs1, rs2 },
            5 => Instruction::And { rd, rs1, rs2 },
            6 => Instruction::Sltu { rd, rs1, rs2 },
            7 => Instruction::Andi {
                rd,
                rs1,
                imm: self.rng.gen_range(0..256) as i32,
            },
            8 => Instruction::Ori {
                rd,
                rs1,
                imm: self.rng.gen_range(0..256) as i32,
            },
            9 => Instruction::Xori {
                rd,
                rs1,
                imm: self.rng.gen_range(-256..256) as i32,
            },
            10 => Instruction::Lui {
                rd,
                imm: (self.rng.gen_range(0..16) as u32) << 12,
            },
            // Forward-only control flow: generated programs always converge,
            // so a fixed cycle budget suffices for both simulators.
            11 => {
                let offset = 4 * self.rng.gen_range(1..=3) as i32;
                match self.rng.gen_range(0..3) {
                    0 => Instruction::Beq { rs1, rs2, offset },
                    1 => Instruction::Bne { rs1, rs2, offset },
                    _ => Instruction::Jal { rd, offset },
                }
            }
            // Scratch loads/stores through the pointer registers.
            12 | 13 => Instruction::Lw {
                rd,
                rs1: self.pointer_reg(),
                offset: 4 * self.rng.gen_range(0..4) as i32,
            },
            14 | 15 => Instruction::Sw {
                rs1: self.pointer_reg(),
                rs2,
                offset: 4 * self.rng.gen_range(0..4) as i32,
            },
            // Pointer materialization: retarget a pointer register at one of
            // the well-known addresses (including the protected secret).
            16 | 17 => {
                let pool = self.rng.gen_range(0..self.pointer_pool.len() as i64) as usize;
                Instruction::Addi {
                    rd: self.pointer_reg(),
                    rs1: 0,
                    imm: self.pointer_pool[pool],
                }
            }
            // Attack window: a load through a pointer register immediately
            // followed by a load that dereferences its result — the
            // back-to-back shape transient-execution attacks are made of
            // (and the shape coverage-guided fuzzers like TheHuzz converge
            // to) — optionally led by a store through a pointer register so
            // the dependent load can collide with the pending store's cache
            // line. Emitted as a unit because the dependent load only sits
            // in the transient window when it directly trails the first
            // load, and the store only creates a hazard while still pending.
            _ => {
                let dep_rd = self.data_reg();
                self.pending.push(Instruction::Lw {
                    rd: dep_rd,
                    rs1: rd,
                    offset: 0,
                });
                let first = Instruction::Lw {
                    rd,
                    rs1: self.pointer_reg(),
                    offset: 0,
                };
                if self.rng.gen_bool() {
                    self.pending.insert(0, first);
                    Instruction::Sw {
                        rs1: self.pointer_reg(),
                        rs2,
                        offset: 4 * self.rng.gen_range(0..4) as i32,
                    }
                } else {
                    first
                }
            }
        }
    }

    /// Generates a complete program: a two-instruction pointer prologue
    /// (`x1`/`x2` at the scratch array), `len` random body instructions and a
    /// four-`nop` drain pad.
    pub fn next_program(&mut self, len: usize) -> Program {
        self.pending.clear();
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: SCRATCH_BASE as i32,
        });
        p.push(Instruction::Addi {
            rd: 2,
            rs1: 0,
            imm: (SCRATCH_BASE + 16) as i32,
        });
        for _ in 0..len {
            let instr = self.next_instruction();
            p.push(instr);
        }
        p.push_nops(4);
        p
    }

    /// Generates a program with a length drawn from `min_len..=max_len`.
    pub fn next_program_in(&mut self, min_len: usize, max_len: usize) -> Program {
        let len = self.rng.gen_range(min_len as i64..=max_len as i64) as usize;
        self.next_program(len)
    }
}

/// The observable channel through which an execution pair diverged, ordered
/// by severity (an architectural divergence is a direct leak; timing and
/// cache-footprint divergences are covert channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Channel {
    /// Architectural state (registers, memory, trap CSRs) depends on the
    /// secret.
    Architectural,
    /// Trap or completion timing depends on the secret.
    Timing,
    /// The data cache's tag/valid footprint depends on the secret.
    CacheFootprint,
}

impl Channel {
    /// Stable machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Channel::Architectural => "architectural",
            Channel::Timing => "timing",
            Channel::CacheFootprint => "cache-footprint",
        }
    }
}

/// Everything the oracle observes about one concrete execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// Final architectural register values `x0..x{n-1}`.
    pub regs: Vec<u32>,
    /// Final `(mode, mcause, mepc)` trap state.
    pub trap_state: (u32, u32, u32),
    /// Final memory image of the low probe window (everything below the
    /// protected region), excluding the secret itself.
    pub memory: Vec<u32>,
    /// Final `(valid, tag)` per cache line. Line *data* is deliberately not
    /// observed: the secret's own cache line differs by construction.
    pub cache: Vec<(u64, u64)>,
    /// Cycle of the first trap, if one was taken.
    pub cycles_to_trap: Option<u64>,
    /// Cycle at which the PC first left the program, if it did.
    pub cycles_to_done: Option<u64>,
    /// Final program counter.
    pub pc: u32,
}

/// Runs `program` on `config` with the protected secret set to `secret`
/// (both in memory and preloaded in the cache, the paper's "D in cache"
/// starting point) and captures the full observation.
pub fn observe(config: &SocConfig, program: &Program, secret: u32) -> Observation {
    let mut sim = SocSim::new(config.clone(), program.clone());
    sim.protect_secret_region();
    sim.preload_secret_in_cache(secret);
    let end = program.base() + 4 * program.len() as u32;
    let max_cycles = 60 + 20 * program.len() as u64;
    let mut cycles_to_trap = None;
    let mut cycles_to_done = None;
    for cycle in 0..max_cycles {
        if cycles_to_trap.is_none() && sim.mode() == 1 {
            cycles_to_trap = Some(cycle);
        }
        if cycles_to_done.is_none() && sim.pc() == end {
            cycles_to_done = Some(cycle);
        }
        sim.step();
    }
    let regs = (0..config.num_registers).map(|r| sim.reg(r)).collect();
    let memory = (0..config.protected_base / 4)
        .map(|w| sim.load_word(4 * w))
        .collect();
    let cache = (0..config.cache_lines)
        .map(|i| {
            (
                sim.register(&format!("dcache.valid{i}")),
                sim.register(&format!("dcache.tag{i}")),
            )
        })
        .collect();
    Observation {
        regs,
        trap_state: (
            sim.mode(),
            sim.register("mcause") as u32,
            sim.register("mepc") as u32,
        ),
        memory,
        cache,
        cycles_to_trap,
        cycles_to_done,
        pc: sim.pc(),
    }
}

/// The unique-execution oracle: runs `program` under both secrets of `opts`
/// and reports the most severe channel through which the two executions
/// differ, or `None` if the program executes uniquely.
pub fn divergence(config: &SocConfig, program: &Program, opts: &FuzzOptions) -> Option<Channel> {
    let a = observe(config, program, opts.secret_a);
    let b = observe(config, program, opts.secret_b);
    if a.regs != b.regs || a.memory != b.memory || a.trap_state != b.trap_state {
        return Some(Channel::Architectural);
    }
    if a.cycles_to_trap != b.cycles_to_trap || a.cycles_to_done != b.cycles_to_done || a.pc != b.pc
    {
        return Some(Channel::Timing);
    }
    if a.cache != b.cache {
        return Some(Channel::CacheFootprint);
    }
    None
}

/// Co-simulates `program` on the RTL and the ISA-level golden model (without
/// PMP protection, so no instruction traps) and checks that architectural
/// registers and the memory behind every pointer-pool address agree.
///
/// This is the TheHuzz-style golden-model check the miner runs alongside the
/// two-secret oracle, and the same routine the `cosim_random` integration
/// test drives: one shared generator, one shared comparison.
pub fn cosim_check(config: &SocConfig, program: &Program) -> Result<(), String> {
    let mut sim = SocSim::new(config.clone(), program.clone());
    // Deterministic nonzero scratch data so loads observe real values.
    for w in 0..8u32 {
        sim.store_word(SCRATCH_BASE + 4 * w, 0x1010 + w);
    }
    let mut golden = sim.golden();
    sim.run(60 + 20 * program.len() as u64);
    golden.run(program, config, 8 * program.len().max(16));
    for r in 1..config.num_registers {
        let rtl = sim.reg(r);
        let isa = golden.regs[r as usize];
        if rtl != isa {
            return Err(format!("x{r}: rtl={rtl:#x} golden={isa:#x}"));
        }
    }
    for base in [SCRATCH_BASE, SCRATCH_BASE + 16, 0x80, config.secret_addr] {
        for w in 0..4u32 {
            let addr = base + 4 * w;
            let rtl = sim.load_word(addr);
            let isa = golden.load_word(addr);
            if rtl != isa {
                return Err(format!("mem[{addr:#x}]: rtl={rtl:#x} golden={isa:#x}"));
            }
        }
    }
    Ok(())
}

/// One mined divergence: the program, where it was found and what it leaked
/// through.
#[derive(Debug, Clone)]
pub struct DivergenceWitness {
    /// Design variant the divergence occurred on.
    pub variant: SocVariant,
    /// Channel the secret leaked through.
    pub channel: Channel,
    /// The (unminimized) divergent program.
    pub program: Program,
    /// Index of the generated program (0-based) — together with the seed this
    /// pins the witness's provenance.
    pub case_index: usize,
}

/// Result of one mining run.
#[derive(Debug, Clone)]
pub struct MineReport {
    /// First witness per `(variant, channel)` pair, in discovery order.
    pub witnesses: Vec<DivergenceWitness>,
    /// Programs generated and executed.
    pub programs_run: usize,
    /// `(program, variant)` pairs that diverged (including duplicates of
    /// already-witnessed channels).
    pub divergent_runs: usize,
    /// Divergences observed on the secure design (each one is a soundness
    /// bug in either the SoC or the oracle; tests pin this to zero).
    pub secure_divergences: usize,
    /// RTL-vs-golden-model co-simulation mismatches across all variants
    /// (expected zero: the variants only change *micro*-architecture).
    pub cosim_mismatches: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl MineReport {
    /// The witness for a `(variant, channel)` pair, if one was mined.
    pub fn witness(&self, variant: SocVariant, channel: Channel) -> Option<&DivergenceWitness> {
        self.witnesses
            .iter()
            .find(|w| w.variant == variant && w.channel == channel)
    }
}

/// Mines divergence witnesses: generates `opts.programs` random programs and
/// executes each on every variant under both secrets, recording the first
/// witness per `(variant, channel)` pair.
pub fn mine(opts: &FuzzOptions) -> MineReport {
    let mut span = obs::span("fuzz.mine");
    span.attr_u64("seed", opts.seed);
    span.attr_u64("programs", opts.programs as u64);
    let start = Instant::now();
    let mut gen = ProgramGen::new(opts.seed, &SocConfig::new(SocVariant::Secure));
    let mut report = MineReport {
        witnesses: Vec::new(),
        programs_run: 0,
        divergent_runs: 0,
        secure_divergences: 0,
        cosim_mismatches: 0,
        elapsed: Duration::ZERO,
    };
    for case_index in 0..opts.programs {
        if let Some(budget) = opts.time_budget {
            if start.elapsed() > budget {
                break;
            }
        }
        let program = gen.next_program_in(opts.min_len, opts.max_len);
        report.programs_run += 1;
        for &variant in &opts.variants {
            let config = SocConfig::new(variant);
            if cosim_check(&config, &program).is_err() {
                report.cosim_mismatches += 1;
                obs::counter("fuzz.cosim_mismatches", 1);
            }
            if let Some(channel) = divergence(&config, &program, opts) {
                report.divergent_runs += 1;
                obs::counter("fuzz.divergences", 1);
                if variant.is_secure() {
                    report.secure_divergences += 1;
                } else if report.witness(variant, channel).is_none() {
                    report.witnesses.push(DivergenceWitness {
                        variant,
                        channel,
                        program: program.clone(),
                        case_index,
                    });
                }
            }
        }
    }
    report.elapsed = start.elapsed();
    span.attr_u64("programs_run", report.programs_run as u64);
    span.attr_u64("witnesses", report.witnesses.len() as u64);
    obs::counter("fuzz.programs", report.programs_run as u64);
    report
}

/// Result of one delta-debugging minimization.
#[derive(Debug, Clone)]
pub struct MinimizeReport {
    /// The minimized witness (still divergent through the same channel).
    pub program: Program,
    /// Instruction count before minimization.
    pub original_len: usize,
    /// Instruction count after minimization.
    pub minimized_len: usize,
    /// Oracle executions spent.
    pub oracle_runs: usize,
}

/// Shrinks a divergent program to a 1-minimal witness with the classic
/// `ddmin` algorithm: repeatedly remove instruction chunks (halving
/// granularity down to single instructions) as long as the program still
/// diverges through exactly `channel` on `config`.
///
/// # Panics
///
/// Panics if `program` does not diverge through `channel` in the first place.
pub fn minimize(
    config: &SocConfig,
    program: &Program,
    channel: Channel,
    opts: &FuzzOptions,
) -> MinimizeReport {
    let mut span = obs::span("fuzz.minimize");
    span.attr_str("variant", config.variant().name());
    span.attr_str("channel", channel.name());
    let original: Vec<Instruction> = program.iter().map(|(_, i)| i).collect();
    let mut oracle_runs = 0usize;
    let base = program.base();
    let mut check = |instrs: &[Instruction]| -> bool {
        oracle_runs += 1;
        let mut p = Program::new(base);
        for &i in instrs {
            p.push(i);
        }
        divergence(config, &p, opts) == Some(channel)
    };
    assert!(
        check(&original),
        "minimize: the input program does not diverge through {channel:?}"
    );
    let mut current = original.clone();
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = None;
        for i in 0..granularity {
            let lo = i * chunk;
            if lo >= current.len() {
                break;
            }
            let hi = ((i + 1) * chunk).min(current.len());
            let candidate: Vec<Instruction> = current[..lo]
                .iter()
                .chain(&current[hi..])
                .copied()
                .collect();
            if candidate.len() < current.len() && check(&candidate) {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(c) => {
                current = c;
                granularity = granularity.saturating_sub(1).max(2);
            }
            None if granularity >= current.len() => break,
            None => granularity = (granularity * 2).min(current.len()),
        }
    }
    let mut minimized = Program::new(base);
    for &i in &current {
        minimized.push(i);
    }
    span.attr_u64("original_len", original.len() as u64);
    span.attr_u64("minimized_len", current.len() as u64);
    span.attr_u64("oracle_runs", oracle_runs as u64);
    MinimizeReport {
        program: minimized,
        original_len: original.len(),
        minimized_len: current.len(),
        oracle_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let config = SocConfig::new(SocVariant::Secure);
        let mut a = ProgramGen::new(11, &config);
        let mut b = ProgramGen::new(11, &config);
        for _ in 0..8 {
            assert_eq!(a.next_program(12), b.next_program(12));
        }
        let mut c = ProgramGen::new(12, &config);
        assert_ne!(a.next_program(12), c.next_program(12));
    }

    #[test]
    fn generator_never_writes_pointer_registers_outside_the_pool() {
        let config = SocConfig::new(SocVariant::Secure);
        let mut gen = ProgramGen::new(3, &config);
        let pool: Vec<i32> = gen.pointer_pool.to_vec();
        for _ in 0..400 {
            let instr = gen.next_instruction();
            if let Some(rd) = instr.rd() {
                if rd == 1 || rd == 2 {
                    match instr {
                        Instruction::Addi { rs1: 0, imm, .. } => {
                            assert!(pool.contains(&imm), "unexpected pointer imm {imm:#x}")
                        }
                        other => panic!("pointer register written by {other}"),
                    }
                }
            }
        }
    }

    #[test]
    fn secure_design_executes_the_transient_demo_uniquely() {
        let opts = FuzzOptions::default();
        let config = SocConfig::new(SocVariant::Secure);
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: config.secret_addr as i32,
        });
        p.push(Instruction::Lw {
            rd: 4,
            rs1: 1,
            offset: 0,
        });
        p.push(Instruction::Lw {
            rd: 5,
            rs1: 4,
            offset: 0,
        });
        p.push_nops(2);
        assert_eq!(divergence(&config, &p, &opts), None);
        // The same program leaks through the cache footprint when the
        // transient refill is not cancelled.
        let meltdown = SocConfig::new(SocVariant::MeltdownStyle);
        assert_eq!(
            divergence(&meltdown, &p, &opts),
            Some(Channel::CacheFootprint)
        );
    }
}
