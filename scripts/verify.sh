#!/usr/bin/env bash
# Repository verification: formatting, lints, and the tier-1 build/test gate.
#
# Usage: scripts/verify.sh [--full]
#
# Keep this script in sync with the README's "Tests and verification"
# section. The tier-1 gate is the same command CI (and the PR driver) runs:
#   cargo build --release && cargo test -q
#
# --full additionally runs the release-mode `--ignored` acceptance sweeps
# (full-registry simplification differential, full instance-registry scan,
# default-seed fuzz-witness reproduction, full clause-sharing differential,
# full certified-verdict sweep, fault-injection differential sweep) —
# several minutes of SAT solving.
set -euo pipefail
cd "$(dirname "$0")/.."

full=0
for arg in "$@"; do
  case "$arg" in
    --full) full=1 ;;
    *) echo "unknown argument: $arg (expected --full)" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings (broken intra-doc links fail here)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> bench smoke: solver_stats --smoke (search + simplification verdict agreement, k=1 subset)"
# Fast gate: the default (adaptive simplification, all search features on),
# no_simplify and baseline-search (plain Luby loop — no EMA restarts,
# rephasing, chronological backtracking or vivification) solve paths must
# agree on every verdict of the smoke subset, so solver performance work can
# never silently flip a verdict. Exits non-zero on any mismatch; writes no
# JSON.
cargo run --release -q -p bench --bin solver_stats -- --smoke

echo "==> bench smoke: trace_report --smoke (telemetry trace, k=1 query)"
# Fast gate for the obs telemetry layer: one traced k=1 query through the
# real JSONL sink — every emitted line must parse, the root span's verdict
# attribute must match the engine's verdict, and the per-phase durations
# must sum to within tolerance of the query wall time. Exits non-zero on
# any failure; writes no tracked JSON.
cargo run --release -q -p bench --bin trace_report -- --smoke

echo "==> bench smoke: fuzz_stats --smoke (bounded deterministic mining run)"
# Fast gate for the fuzz-mining pipeline: a fixed-seed, wall-clock-capped
# run (60 programs max) asserting the soundness invariants — zero
# secure-design divergences, zero RTL/golden co-simulation mismatches, at least
# one witness, a minimizer round trip on every witness, and byte-identical
# witnesses on a same-seed rerun. Exits non-zero on any violation; writes
# no JSON.
cargo run --release -q -p bench --bin fuzz_stats -- --smoke

echo "==> bench smoke: cert_stats --smoke (certified verdicts re-checked, k=1 subset)"
# Fast gate for checkable verdicts (docs/certificates.md): three k=1
# queries are solved with DRAT logging on, packaged as certificates
# (trimmed refutation or replayable witness), and re-checked by the
# independent checkers. Verdicts must agree with the plain solve path and
# every certificate must check. Exits non-zero otherwise; writes no JSON.
cargo run --release -q -p bench --bin cert_stats -- --smoke

echo "==> bench smoke: portfolio_stats --smoke (deterministic portfolio race, k=1 subset)"
# Fast gate for the budgeted portfolio scheduler (docs/robustness.md): on
# the smoke subset the portfolio race must reach the same verdict as the
# single-configuration path, and two races of the same query must be
# byte-identical (slice schedule, budgets, winner, member stats — no
# wall-clock anywhere). Exits non-zero on any mismatch; writes no JSON.
cargo run --release -q -p bench --bin portfolio_stats -- --smoke

if [ "$full" -eq 1 ]; then
  echo "==> full: simplification differential over the whole registry (--ignored, release)"
  cargo test --release -q -p upec --test simplify_differential -- --ignored

  echo "==> full: instance-registry sweep + fuzz-witness reproduction (--ignored, release)"
  cargo test --release -q -p upec --test scenario_instances -- --ignored

  echo "==> full: clause-sharing differential over the whole instance registry (--ignored, release)"
  cargo test --release -q -p upec --test clause_sharing_differential -- --ignored

  echo "==> full: certified registry sweep (--ignored, release)"
  cargo test --release -q -p upec --test certificates -- --ignored

  echo "==> full: fault-injection differential sweep (--features faults, --ignored, release)"
  # Deterministic faults (forced budget exhaustion, spurious cancellation,
  # mid-slice abort) are armed at SplitMix64-chosen points inside engine
  # queries; every faulted query must either reach the fault-free verdict or
  # answer Unknown with an honest stop cause, and the session must resume to
  # the exact fault-free verdict (docs/robustness.md).
  cargo test --release -q -p upec --features faults --test fault_injection
  cargo test --release -q -p upec --features faults --test fault_injection -- --ignored
fi

echo "verify.sh: all checks passed"
