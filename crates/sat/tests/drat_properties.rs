//! Fuzzed validation of the DRAT proof logger and the independent checker on
//! random CNFs, generated deterministically with [`rtl::SplitMix64`].
//!
//! Properties:
//! 1. every unsat verdict's proof log checks (with and without the
//!    simplification pipeline in the loop), and the trimmed log re-checks,
//! 2. corrupting the proof — dropping every lemma, or replacing a lemma with
//!    a clause that is not a consequence — makes the checker reject,
//! 3. verdicts with logging on and logging off agree.

use rtl::SplitMix64;
use sat::drat::{check, trim, CheckError, ProofLog, ProofStep};
use sat::{Lit, SatResult, SimplifyConfig, Solver, Var};

/// A random clause with 2..=3 distinct variables (no unit clauses: a
/// unit-free axiom set cannot be refuted by propagation alone, which property
/// 2's lemma-free rejection relies on).
fn random_clause(rng: &mut SplitMix64, num_vars: usize) -> Vec<Lit> {
    let len = rng.gen_range(2..=3) as usize;
    let mut vars: Vec<usize> = Vec::new();
    while vars.len() < len {
        let v = rng.gen_u64_below(num_vars as u64) as usize;
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    vars.iter()
        .map(|&v| Lit::new(Var::from_index(v), rng.gen_bool()))
        .collect()
}

fn random_formula(rng: &mut SplitMix64) -> (usize, Vec<Vec<Lit>>) {
    // Around the 3-SAT phase transition so a healthy share of cases is unsat.
    let num_vars = rng.gen_range(5..12) as usize;
    let num_clauses = (num_vars as u64 * 5).saturating_sub(rng.gen_u64_below(num_vars as u64));
    let clauses = (0..num_clauses)
        .map(|_| random_clause(rng, num_vars))
        .collect();
    (num_vars, clauses)
}

fn solve_logged(clauses: &[Vec<Lit>], num_vars: usize, simplify: bool) -> (SatResult, ProofLog) {
    let mut solver = Solver::new();
    solver.reserve_vars(num_vars);
    solver.start_proof_log();
    for c in clauses {
        solver.add_clause(c.iter().copied());
    }
    if simplify {
        // Frozen variables keep the clause set meaningful to outside
        // observers; here nothing needs freezing — the certificate claim is
        // about the axiom set, which is already logged.
        let _ = solver.simplify_with(&SimplifyConfig::default());
    }
    let result = solver.solve();
    let log = solver.take_proof_log().expect("logging was on");
    (result, log)
}

/// Property 1: every unsat log checks and its trimmed form re-checks with
/// no more lemmas than the original.
#[test]
fn unsat_logs_check_and_trim() {
    let mut rng = SplitMix64::new(0xd8a7_0001);
    let mut unsat_seen = 0;
    for case in 0..48 {
        let (num_vars, clauses) = random_formula(&mut rng);
        for simplify in [false, true] {
            let (result, log) = solve_logged(&clauses, num_vars, simplify);
            if !matches!(result, SatResult::Unsat) {
                continue;
            }
            unsat_seen += 1;
            let report =
                check(&log, &[]).unwrap_or_else(|e| panic!("case {case} simplify={simplify}: {e}"));
            assert_eq!(report.axioms, clauses.len(), "case {case}");
            let (trimmed, _) = trim(&log, &[])
                .unwrap_or_else(|e| panic!("case {case} simplify={simplify} trim: {e}"));
            let report2 = check(&trimmed, &[])
                .unwrap_or_else(|e| panic!("case {case} simplify={simplify} recheck: {e}"));
            assert!(
                report2.lemmas_checked <= report.lemmas_checked,
                "case {case}: trim must not grow the proof"
            );
        }
    }
    assert!(unsat_seen >= 8, "generator produced too few unsat cases");
}

/// Property 2: mutating the proof makes the checker reject. Two deterministic
/// corruption modes: (a) dropping every lemma leaves a unit-free axiom set
/// that propagation alone cannot refute; (b) replacing a lemma of the trimmed
/// proof with a unit over a fresh, unconstrained variable is never RUP.
#[test]
fn corrupted_logs_are_rejected() {
    let mut rng = SplitMix64::new(0xd8a7_0002);
    let mut tested = 0;
    for _case in 0..48 {
        let (num_vars, clauses) = random_formula(&mut rng);
        let (result, log) = solve_logged(&clauses, num_vars, false);
        if !matches!(result, SatResult::Unsat) {
            continue;
        }
        tested += 1;

        // (a) Axioms alone: no refutation reachable by unit propagation.
        let mut axioms_only = ProofLog::new();
        for (step, lits) in log.events() {
            if step == ProofStep::Axiom {
                axioms_only.push(ProofStep::Axiom, lits);
            }
        }
        assert_eq!(check(&axioms_only, &[]), Err(CheckError::NoRefutation));

        // (b) Replace each lemma of the trimmed proof (bounded sample) with a
        // unit over a fresh variable; the lemma is unconstrained, so it can
        // never be a RUP consequence, and because the trimmed proof has no
        // unused lemmas the corruption cannot be skipped over.
        let (trimmed, _) = trim(&log, &[]).expect("valid log trims");
        let events: Vec<(ProofStep, Vec<Lit>)> =
            trimmed.events().map(|(s, l)| (s, l.to_vec())).collect();
        let lemma_positions: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, (s, _))| *s == ProofStep::Add)
            .map(|(i, _)| i)
            .collect();
        let fresh = Lit::new(Var::from_index(num_vars + 7), true);
        for &target in lemma_positions.iter().take(6) {
            let mut mutated = ProofLog::new();
            for (i, (step, lits)) in events.iter().enumerate() {
                if i == target {
                    mutated.push(ProofStep::Add, &[fresh]);
                } else {
                    mutated.push(*step, lits);
                }
            }
            match check(&mutated, &[]) {
                Err(_) => {}
                Ok(report) => {
                    // The corrupted lemma must at minimum have been rejected
                    // or the refutation reached without it; reaching a
                    // refutation before the mutated event is the only honest
                    // way this can still pass.
                    let refutation = report
                        .refutation_event
                        .expect("successful check has a refutation");
                    assert!(
                        refutation < target,
                        "mutated lemma at {target} must be rejected, \
                         refutation claimed at {refutation}"
                    );
                }
            }
        }
    }
    assert!(tested >= 4, "generator produced too few unsat cases");
}

/// Property 3: proof logging is observational — verdicts with logging on and
/// off agree in every configuration.
#[test]
fn logging_does_not_change_verdicts() {
    let mut rng = SplitMix64::new(0xd8a7_0003);
    for case in 0..48 {
        let (num_vars, clauses) = random_formula(&mut rng);
        for simplify in [false, true] {
            let (logged, _) = solve_logged(&clauses, num_vars, simplify);
            let mut plain = Solver::new();
            plain.reserve_vars(num_vars);
            for c in &clauses {
                plain.add_clause(c.iter().copied());
            }
            if simplify {
                let _ = plain.simplify_with(&SimplifyConfig::default());
            }
            let unlogged = plain.solve();
            assert_eq!(
                matches!(logged, SatResult::Unsat),
                matches!(unlogged, SatResult::Unsat),
                "case {case} simplify={simplify}: verdicts diverge"
            );
        }
    }
}

/// Vivification under the proof log: every strengthened clause must enter
/// the log as a lemma (the shortened clause, a RUP consequence) *followed*
/// by a deletion of its original, and the resulting log must check. A
/// vivified log that later refutes must also still check and trim.
#[test]
fn vivification_logs_lemma_delete_pairs() {
    let mut rng = SplitMix64::new(0xd8a7_0005);
    let mut strengthened_total = 0u64;
    for case in 0..64 {
        let (num_vars, clauses) = random_formula(&mut rng);
        let mut solver = Solver::new();
        solver.reserve_vars(num_vars);
        solver.start_proof_log();
        for c in clauses.iter() {
            solver.add_clause(c.iter().copied());
        }
        // Give vivification material to work on: learned clauses from a
        // first solve plus the original near-phase-transition clause set.
        if matches!(solver.solve(), SatResult::Unsat) {
            continue;
        }
        let events_before = solver.proof_log().expect("logging was on").events().count();
        let strengthened = solver.vivify(50_000);
        strengthened_total += strengthened;
        let log = solver.proof_log().expect("logging was on");

        // Each strengthening appends exactly one Add (the shortened clause)
        // and one Delete (its original), in that order, so the shortened
        // clause is derivable while the original is still present.
        let new_events: Vec<(ProofStep, Vec<Lit>)> = log
            .events()
            .skip(events_before)
            .map(|(s, l)| (s, l.to_vec()))
            .collect();
        let adds = new_events
            .iter()
            .filter(|(s, _)| *s == ProofStep::Add)
            .count() as u64;
        let deletes = new_events
            .iter()
            .filter(|(s, _)| *s == ProofStep::Delete)
            .count() as u64;
        assert_eq!(
            adds, strengthened,
            "case {case}: one lemma per vivification"
        );
        assert_eq!(
            deletes, strengthened,
            "case {case}: one deletion per vivification"
        );
        for pair in new_events.chunks(2) {
            let [(first, shortened), (second, original)] = pair else {
                panic!("case {case}: vivification events must come in pairs");
            };
            assert_eq!(*first, ProofStep::Add, "case {case}");
            assert_eq!(*second, ProofStep::Delete, "case {case}");
            assert!(
                shortened.len() < original.len(),
                "case {case}: vivification must shorten the clause"
            );
        }

        // The vivified solver must still refute honestly: force
        // unsatisfiability with fresh contradictory obligations and check
        // the complete log, vivification events included.
        if strengthened > 0 {
            let x = solver.new_var().positive();
            solver.add_clause([x]);
            solver.add_clause([!x]);
            assert!(matches!(solver.solve(), SatResult::Unsat), "case {case}");
            let log = solver.take_proof_log().expect("logging was on");
            check(&log, &[]).unwrap_or_else(|e| panic!("case {case}: vivified log rejected: {e}"));
            let (trimmed, _) = trim(&log, &[]).expect("vivified log trims");
            check(&trimmed, &[]).unwrap_or_else(|e| panic!("case {case}: trimmed recheck: {e}"));
        }
    }
    assert!(
        strengthened_total > 0,
        "the generator never produced a vivifiable clause; the property is vacuous"
    );
}

/// Tampering with a vivification lemma — flipping a single literal of the
/// shortened clause — must make the checker reject (or provably not rely on
/// the mutated event).
#[test]
fn tampered_vivification_lemmas_are_rejected() {
    let mut rng = SplitMix64::new(0xd8a7_0006);
    let mut tampered = 0;
    for _case in 0..192 {
        if tampered >= 8 {
            break;
        }
        let (num_vars, clauses) = random_formula(&mut rng);
        let mut solver = Solver::new();
        solver.reserve_vars(num_vars);
        solver.start_proof_log();
        for c in clauses.iter() {
            solver.add_clause(c.iter().copied());
        }
        if matches!(solver.solve(), SatResult::Unsat) {
            continue;
        }
        let events_before = solver.proof_log().expect("logging was on").events().count();
        if solver.vivify(50_000) == 0 {
            continue;
        }
        let log = solver.take_proof_log().expect("logging was on");
        let events: Vec<(ProofStep, Vec<Lit>)> =
            log.events().map(|(s, l)| (s, l.to_vec())).collect();
        let target = events[events_before..]
            .iter()
            .position(|(s, _)| *s == ProofStep::Add)
            .map(|i| events_before + i)
            .expect("a strengthening logs a lemma");

        // Replace the vivification lemma with a unit over a fresh variable:
        // unconstrained, so never a RUP consequence.
        let fresh = Lit::new(Var::from_index(num_vars + 7), true);
        let mut mutated = ProofLog::new();
        for (i, (step, lits)) in events.iter().enumerate() {
            if i == target {
                mutated.push(ProofStep::Add, &[fresh]);
            } else {
                mutated.push(*step, lits);
            }
        }
        // The log so far has no refutation at all, so a strict checker must
        // reject — either at the bogus lemma or for the missing refutation.
        assert!(
            check(&mutated, &[]).is_err(),
            "a tampered vivification lemma in a refutation-free log must not check"
        );
        tampered += 1;
    }
    assert!(tampered >= 2, "too few vivification cases were generated");
}

/// Certificates under assumptions: an activation-literal query that comes
/// back unsat yields a log that checks with the same assumptions, exactly as
/// the BMC engine uses it.
#[test]
fn assumption_certificates_check() {
    let mut rng = SplitMix64::new(0xd8a7_0004);
    let mut tested = 0;
    for _case in 0..48 {
        let (num_vars, clauses) = random_formula(&mut rng);
        let mut solver = Solver::new();
        solver.reserve_vars(num_vars);
        solver.start_proof_log();
        for c in &clauses {
            solver.add_clause(c.iter().copied());
        }
        let act = solver.new_var().positive();
        // Guarded obligation: under `act`, the first clause must be falsified.
        let Some(first) = clauses.first() else {
            continue;
        };
        for &l in first {
            solver.add_clause([!act, !l]);
        }
        if solver.solve_with_assumptions(&[act]).is_unsat() {
            tested += 1;
            let log = solver.take_proof_log().expect("logging was on");
            check(&log, &[act]).expect("assumption certificate checks");
            let (trimmed, _) = trim(&log, &[act]).expect("trims");
            check(&trimmed, &[act]).expect("trimmed assumption certificate checks");
        }
    }
    assert!(tested >= 4, "generator produced too few unsat cases");
}
