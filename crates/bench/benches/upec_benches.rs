//! Wall-clock benchmarks: one group per table/figure of the paper's
//! evaluation, plus the ablations.
//!
//! The workspace builds without external dependencies, so this is a plain
//! `harness = false` binary rather than a criterion bench: each workload runs
//! a fixed, small number of iterations and reports min/mean wall time. The
//! numbers track relative cost; they are not statistically tight.
//!
//! Run with `cargo bench -p bench` (all groups) or
//! `cargo bench -p bench -- table1 fig2` (substring filter).

use bench::{formal_config, orc_attack_program, secs, sim_config, transient_program};
use soc::{SocSim, SocVariant};
use std::time::{Duration, Instant};
use upec::{
    prove_alert_closure, run_methodology, SecretScenario, UpecChecker, UpecModel, UpecOptions,
};

/// Times `iterations` runs of `f` and prints one report line.
fn bench(filters: &[String], group: &str, name: &str, iterations: u32, mut f: impl FnMut()) {
    let full = format!("{group}/{name}");
    if !filters.is_empty() && !filters.iter().any(|pat| full.contains(pat.as_str())) {
        return;
    }
    let mut times: Vec<Duration> = Vec::with_capacity(iterations as usize);
    for _ in 0..iterations {
        let start = Instant::now();
        f();
        times.push(start.elapsed());
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let mean = times.iter().sum::<Duration>() / iterations.max(1);
    println!("{full:<44} min {:>8}  mean {:>8}", secs(min), secs(mean));
}

fn main() {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--bench")
        .collect();

    // Table I: the methodology run on the secure design, both scenarios.
    for (label, scenario) in [
        ("d_cached", SecretScenario::InCache),
        ("d_not_cached", SecretScenario::NotInCache),
    ] {
        let model = UpecModel::new(&formal_config(SocVariant::Secure), scenario);
        let window = model.d_mem().min(2);
        bench(&filters, "table1_methodology", label, 2, || {
            run_methodology(&model, UpecOptions::window(window));
        });
    }

    // Table I (second half): the inductive closure proof.
    {
        let model = UpecModel::new(&formal_config(SocVariant::Secure), SecretScenario::InCache);
        let report = run_methodology(&model, UpecOptions::window(2));
        bench(&filters, "table1_inductive_proof", "closure", 2, || {
            prove_alert_closure(&model, &report.p_alert_registers, None);
        });
    }

    // Table II: first P-alert and first L-alert for each vulnerable variant.
    for variant in [SocVariant::Orc, SocVariant::MeltdownStyle] {
        let model = UpecModel::new(&formal_config(variant), SecretScenario::InCache);
        let checker = UpecChecker::new();
        bench(
            &filters,
            "table2_vulnerable_variants",
            &format!("{}_p_alert", variant.name()),
            2,
            || {
                checker.check_full(&model, UpecOptions::window(2));
            },
        );
        bench(
            &filters,
            "table2_vulnerable_variants",
            &format!("{}_l_alert", variant.name()),
            1,
            || {
                checker.check_architectural(&model, UpecOptions::window(3));
            },
        );
    }

    // Fig. 1: the transient-sequence cache-footprint simulation.
    for variant in [SocVariant::MeltdownStyle, SocVariant::Secure] {
        let config = sim_config(variant);
        bench(&filters, "fig1_cache_footprint", variant.name(), 10, || {
            let mut sim = SocSim::new(config.clone(), transient_program(&config));
            sim.protect_secret_region();
            sim.preload_secret_in_cache(0x184);
            sim.store_word(0x184, 0x1234_5678);
            sim.run(60);
            sim.register("dcache.valid1");
        });
    }

    // Fig. 2: one full Orc attack sweep over all cache-index guesses.
    for variant in [SocVariant::Orc, SocVariant::Secure] {
        let config = sim_config(variant);
        bench(&filters, "fig2_orc_attack_sweep", variant.name(), 5, || {
            for guess in 0..config.cache_lines {
                let mut sim = SocSim::new(config.clone(), orc_attack_program(&config, guess));
                sim.protect_secret_region();
                sim.preload_secret_in_cache(0x184);
                sim.run_until_trap(300).expect("traps");
            }
        });
    }

    // Ablation: symbolic initial state vs reset-state BMC.
    {
        let model = UpecModel::new(&formal_config(SocVariant::Orc), SecretScenario::InCache);
        let checker = UpecChecker::new();
        bench(
            &filters,
            "ablation_symbolic_init",
            "ipc_symbolic",
            1,
            || {
                checker.check_architectural(&model, UpecOptions::window(3));
            },
        );
        bench(
            &filters,
            "ablation_symbolic_init",
            "bmc_from_reset",
            1,
            || {
                checker.check_architectural(&model, UpecOptions::window(3).from_reset());
            },
        );
    }
}
