//! Property-based tests of the MiniRV instruction encoding and of the golden
//! model's architectural invariants.

use proptest::prelude::*;
use soc::isa::{csr, Instruction};
use soc::{GoldenModel, Program, SocConfig, SocVariant};

fn reg() -> impl Strategy<Value = u32> {
    0u32..32
}

fn aligned_offset() -> impl Strategy<Value = i32> {
    (-512i32..512).prop_map(|o| o & !3)
}

fn instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (reg(), aligned_offset()).prop_map(|(rd, o)| Instruction::Jal { rd, offset: o & !1 }),
        (reg(), reg(), aligned_offset()).prop_map(|(rs1, rs2, o)| Instruction::Beq { rs1, rs2, offset: o & !1 }),
        (reg(), reg(), aligned_offset()).prop_map(|(rs1, rs2, o)| Instruction::Bne { rs1, rs2, offset: o & !1 }),
        (reg(), reg(), -2048i32..2048).prop_map(|(rd, rs1, imm)| Instruction::Addi { rd, rs1, imm }),
        (reg(), reg(), -2048i32..2048).prop_map(|(rd, rs1, imm)| Instruction::Xori { rd, rs1, imm }),
        (reg(), reg(), -2048i32..2048).prop_map(|(rd, rs1, o)| Instruction::Lw { rd, rs1, offset: o }),
        (reg(), reg(), -2048i32..2048).prop_map(|(rs1, rs2, o)| Instruction::Sw { rs1, rs2, offset: o }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Instruction::Add { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Instruction::Sub { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Instruction::Sltu { rd, rs1, rs2 }),
        (reg(), any::<u32>()).prop_map(|(rd, imm)| Instruction::Lui { rd, imm: imm & 0xffff_f000 }),
        (reg(), reg()).prop_map(|(rd, rs1)| Instruction::Csrrw { rd, csr: csr::PMPADDR0, rs1 }),
        (reg(), reg()).prop_map(|(rd, rs1)| Instruction::Csrrs { rd, csr: csr::CYCLE, rs1 }),
        Just(Instruction::Mret),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every instruction survives an encode/decode round trip.
    #[test]
    fn encode_decode_roundtrip(ins in instruction()) {
        let encoded = ins.encode();
        prop_assert_eq!(Instruction::decode(encoded), ins);
    }

    /// Decoding never panics, whatever the word.
    #[test]
    fn decode_is_total(word: u32) {
        let _ = Instruction::decode(word);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Architectural invariants of the golden model: x0 stays zero, the PC
    /// stays word aligned, and a locked PMP region keeps protecting the
    /// secret no matter what user-mode code runs.
    #[test]
    fn golden_model_invariants(body in prop::collection::vec(instruction(), 1..30)) {
        let config = SocConfig::new(SocVariant::Secure);
        let mut program = Program::new(0);
        for ins in &body {
            program.push(*ins);
        }
        let mut model = GoldenModel::new(&config);
        model.protect_region(config.protected_base, config.protected_top);
        model.store_word(config.secret_addr, 0x5ec2e7);
        for _ in 0..body.len() * 2 {
            model.step(&program, &config);
            prop_assert_eq!(model.regs[0], 0, "x0 must stay zero");
            prop_assert_eq!(model.pc % 4, 0, "pc must stay word aligned");
            if model.mode == soc::Mode::Machine {
                // A trap was taken; from here on the random words execute as
                // "kernel" code, which is architecturally allowed to read the
                // secret, so the user-mode confidentiality check stops.
                break;
            }
            // While execution stays in user mode, no architectural register
            // may ever hold the protected secret.
            for (i, &r) in model.regs.iter().enumerate() {
                prop_assert_ne!(r, 0x5ec2e7, "x{} received the protected secret", i);
            }
        }
    }
}
