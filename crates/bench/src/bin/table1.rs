//! Regenerates **Table I** of the paper: UPEC methodology experiments on the
//! original (secure) design, for the two scenarios "D in cache" and "D not in
//! cache".
//!
//! ```text
//! cargo run --release -p bench --bin table1
//! ```

use bench::secs;
use upec::scenarios;
use upec::{prove_alert_closure, run_methodology, UpecOptions, Verdict};

fn main() {
    println!("Table I — UPEC methodology experiments (original design)");
    println!("paper reference: d_MEM 5/34, feasible k 9/34, 20/0 P-alerts, 23/0 registers\n");
    println!("{:<38} {:>12} {:>14}", "", "D cached", "D not cached");

    let mut reports = Vec::new();
    for id in ["secure-cached", "secure-uncached"] {
        let spec = scenarios::by_id(id).expect("registered scenario");
        let model = spec.build_model();
        let d_mem = model.d_mem();
        // "Feasible k": the largest window we attempt within a conflict
        // budget; with the reduced design this is simply d_MEM.
        let options = UpecOptions::window(d_mem).with_conflict_limit(Some(2_000_000));
        let report = run_methodology(&model, options);
        let closure = if report.verdict == Verdict::Secure && !report.p_alert_registers.is_empty() {
            Some(prove_alert_closure(&model, &report.p_alert_registers, None))
        } else {
            None
        };
        reports.push((spec.secret, d_mem, report, closure));
    }

    let mut rows: Vec<(String, String, String)> = Vec::new();
    let value = |f: &dyn Fn(usize) -> String| (f(0), f(1));
    let (a, b) = value(&|i| reports[i].1.to_string());
    rows.push(("d_MEM (window length)".into(), a, b));
    let (a, b) = value(&|i| reports[i].2.window.to_string());
    rows.push(("feasible k".into(), a, b));
    let (a, b) = value(&|i| reports[i].2.p_alert_count().to_string());
    rows.push(("# of P-alerts".into(), a, b));
    let (a, b) = value(&|i| reports[i].2.p_alert_registers.len().to_string());
    rows.push(("# of RTL registers causing P-alerts".into(), a, b));
    let (a, b) = value(&|i| secs(reports[i].2.proof_runtime));
    rows.push(("proof runtime".into(), a, b));
    let (a, b) = value(&|i| {
        reports[i]
            .3
            .as_ref()
            .map(|c| match c {
                upec::ClosureOutcome::Closed { runtime } => secs(*runtime),
                other => format!("{other:?}"),
            })
            .unwrap_or_else(|| "n/a".into())
    });
    rows.push(("inductive proof runtime".into(), a, b));
    let (a, b) = value(&|i| format!("{:?}", reports[i].2.verdict));
    rows.push(("verdict".into(), a, b));

    for (label, cached, uncached) in rows {
        println!("{label:<38} {cached:>12} {uncached:>14}");
    }
    println!();
    for (scenario, _, report, closure) in &reports {
        println!("{}: {}", scenario.label(), report.summary());
        if let Some(c) = closure {
            println!("  inductive closure: {c:?}");
        }
        if !report.p_alert_registers.is_empty() {
            println!("  P-alert registers: {:?}", report.p_alert_registers);
        }
    }
    println!("\nShape check vs the paper: the cached case yields P-alerts but no L-alert and");
    println!("needs the inductive closure proof; the uncached case is proven with zero P-alerts.");
}
