//! Randomized validation of the CDCL solver against a brute-force reference
//! on small formulas, generated deterministically with [`rtl::SplitMix64`].

use rtl::SplitMix64;
use sat::{CnfFormula, Lit, SatResult, Solver, Var};

/// Brute-force satisfiability check for formulas with at most 16 variables.
fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    assert!(num_vars <= 16);
    'outer: for assignment in 0u32..(1 << num_vars) {
        for clause in clauses {
            let satisfied = clause.iter().any(|l| {
                let value = (assignment >> l.var().index()) & 1 == 1;
                value == l.is_positive()
            });
            if !satisfied {
                if clause.is_empty() {
                    return false;
                }
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn random_clause(rng: &mut SplitMix64, num_vars: usize) -> Vec<Lit> {
    let len = rng.gen_range(1..=3) as usize;
    (0..len)
        .map(|_| {
            let v = rng.gen_u64_below(num_vars as u64) as usize;
            Lit::new(Var::from_index(v), rng.gen_bool())
        })
        .collect()
}

/// The solver agrees with brute force on random 3-SAT-ish formulas, and the
/// models it returns satisfy every clause.
#[test]
fn solver_agrees_with_brute_force() {
    let mut rng = SplitMix64::new(0x5a7);
    for case in 0..64 {
        let num_vars = rng.gen_range(3..9) as usize;
        let num_clauses = rng.gen_range(1..24) as usize;
        let clauses: Vec<Vec<Lit>> = (0..num_clauses)
            .map(|_| random_clause(&mut rng, num_vars))
            .collect();

        let mut solver = Solver::new();
        solver.reserve_vars(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        let expected = brute_force_sat(num_vars, &clauses);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(expected, "case {case}: solver sat, brute force unsat");
                for clause in &clauses {
                    assert!(
                        clause.iter().any(|&l| model.lit_is_true(l)),
                        "case {case}: model does not satisfy {clause:?}"
                    );
                }
            }
            SatResult::Unsat => {
                assert!(!expected, "case {case}: solver unsat, brute force sat")
            }
            SatResult::Unknown => panic!("no limit was set, Unknown is impossible"),
        }
    }
}

/// DIMACS export/import is an exact round trip.
#[test]
fn dimacs_roundtrip() {
    let mut rng = SplitMix64::new(0xd1_3ac5);
    for _ in 0..64 {
        let num_vars = rng.gen_range(1..8) as usize;
        let num_clauses = rng.gen_range(0..12) as usize;
        let mut cnf = CnfFormula::new();
        cnf.reserve_vars(num_vars.max(8));
        for _ in 0..num_clauses {
            cnf.add_clause(random_clause(&mut rng, 7));
        }
        let parsed = CnfFormula::from_dimacs(&cnf.to_dimacs()).expect("well-formed output");
        assert_eq!(parsed, cnf);
    }
}
