//! Cycle-accurate simulation of a netlist.

use crate::eval::eval_node;
use rtl::{BitVec, Netlist, RegisterId, SignalId};
use std::collections::HashMap;

/// Cycle-accurate two-value simulator for an [`rtl::Netlist`].
///
/// The simulator owns a copy of the netlist and the current register state.
/// Primary inputs are *poked* before each [`Simulator::step`]; any input that
/// has not been poked holds its previous value (initially zero). Registers
/// with an initial value start there; registers declared without one start at
/// zero unless overridden with [`Simulator::set_register`].
///
/// # Examples
///
/// ```
/// use rtl::{Netlist, BitVec};
/// use sim::Simulator;
///
/// let mut n = Netlist::new("counter");
/// let enable = n.input("enable", 1);
/// let count = n.register_init("count", 8, BitVec::zero(8));
/// let one = n.lit(1, 8);
/// let inc = n.add(count.value(), one);
/// let next = n.mux(enable, inc, count.value());
/// n.set_next(count, next);
/// n.output("count", count.value());
///
/// let mut sim = Simulator::new(n);
/// sim.poke_by_name("enable", 1)?;
/// sim.step();
/// sim.step();
/// assert_eq!(sim.peek_output("count")?.as_u64(), 2);
/// # Ok::<(), sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    netlist: Netlist,
    /// Current value of each register, indexed by register index.
    register_values: Vec<BitVec>,
    /// Current value of each primary input, indexed by signal index.
    input_values: HashMap<SignalId, BitVec>,
    /// Value of every signal after the latest combinational evaluation.
    signal_values: Vec<BitVec>,
    cycle: u64,
    dirty: bool,
}

/// Errors reported by the simulator's name-based access methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No input port with the requested name exists.
    UnknownInput(String),
    /// No output port with the requested name exists.
    UnknownOutput(String),
    /// No register with the requested name exists.
    UnknownRegister(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownInput(n) => write!(f, "unknown input port `{n}`"),
            SimError::UnknownOutput(n) => write!(f, "unknown output port `{n}`"),
            SimError::UnknownRegister(n) => write!(f, "unknown register `{n}`"),
        }
    }
}

impl std::error::Error for SimError {}

impl Simulator {
    /// Creates a simulator for a netlist, resetting registers to their
    /// initial values (or zero when they have none).
    pub fn new(netlist: Netlist) -> Self {
        let register_values = netlist
            .registers()
            .iter()
            .map(|r| r.init.unwrap_or_else(|| BitVec::zero(r.width)))
            .collect();
        let signal_values = vec![BitVec::zero(1); netlist.len()];
        let mut sim = Self {
            netlist,
            register_values,
            input_values: HashMap::new(),
            signal_values,
            cycle: 0,
            dirty: true,
        };
        sim.settle();
        sim
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Number of clock cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Resets every register to its declared initial value (zero when none)
    /// and clears the cycle counter. Poked input values are retained.
    pub fn reset(&mut self) {
        for (value, info) in self
            .register_values
            .iter_mut()
            .zip(self.netlist.registers())
        {
            *value = info.init.unwrap_or_else(|| BitVec::zero(info.width));
        }
        self.cycle = 0;
        self.dirty = true;
        self.settle();
    }

    /// Sets a primary input by signal id, truncating the value to the port
    /// width.
    pub fn poke(&mut self, input: SignalId, value: u64) {
        let width = self.netlist.width(input);
        self.input_values.insert(input, BitVec::new(value, width));
        self.dirty = true;
    }

    /// Sets a primary input by port name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownInput`] if no input port has that name.
    pub fn poke_by_name(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        let input = self
            .netlist
            .find_input(name)
            .ok_or_else(|| SimError::UnknownInput(name.to_string()))?;
        self.poke(input, value);
        Ok(())
    }

    /// Overrides the current value of a register (e.g. to preload a memory
    /// image or to start from a specific microarchitectural state).
    pub fn set_register(&mut self, register: RegisterId, value: u64) {
        let width = self.netlist.register_info(register).width;
        self.register_values[register.index()] = BitVec::new(value, width);
        self.dirty = true;
    }

    /// Overrides a register selected by its hierarchical name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownRegister`] if no register has that name.
    pub fn set_register_by_name(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        let reg = self
            .netlist
            .find_register(name)
            .ok_or_else(|| SimError::UnknownRegister(name.to_string()))?;
        self.set_register(reg, value);
        Ok(())
    }

    /// Current value of a register.
    pub fn register_value(&self, register: RegisterId) -> BitVec {
        self.register_values[register.index()]
    }

    /// Current value of a register selected by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownRegister`] if no register has that name.
    pub fn register_by_name(&self, name: &str) -> Result<BitVec, SimError> {
        let reg = self
            .netlist
            .find_register(name)
            .ok_or_else(|| SimError::UnknownRegister(name.to_string()))?;
        Ok(self.register_value(reg))
    }

    fn leaf_value(&self, id: SignalId) -> BitVec {
        match self.netlist.node(id) {
            rtl::Node::Register { register, .. } => self.register_values[register.index()],
            rtl::Node::Input { width, .. } => self
                .input_values
                .get(&id)
                .copied()
                .unwrap_or_else(|| BitVec::zero(*width)),
            _ => unreachable!("leaf_value called on a non-leaf node"),
        }
    }

    /// Re-evaluates the combinational logic for the current inputs and
    /// register state without advancing the clock.
    pub fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        // Evaluation in creation order is valid because the netlist's node
        // order is topological by construction.
        for id in self.netlist.signals() {
            let value = eval_node(&self.netlist, id, &self.signal_values, &|leaf| {
                self.leaf_value(leaf)
            });
            self.signal_values[id.index()] = value;
        }
        self.dirty = false;
    }

    /// Value of an arbitrary signal after the latest evaluation.
    pub fn peek(&mut self, signal: SignalId) -> BitVec {
        self.settle();
        self.signal_values[signal.index()]
    }

    /// Value of a named output port after the latest evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownOutput`] if no output port has that name.
    pub fn peek_output(&mut self, name: &str) -> Result<BitVec, SimError> {
        let signal = self
            .netlist
            .find_output(name)
            .ok_or_else(|| SimError::UnknownOutput(name.to_string()))?;
        Ok(self.peek(signal))
    }

    /// Advances the simulation by one clock cycle: evaluates the
    /// combinational logic and clocks every register's next-state value.
    pub fn step(&mut self) {
        self.settle();
        let mut next_values = Vec::with_capacity(self.register_values.len());
        for info in self.netlist.registers() {
            let next = info
                .next
                .expect("validated netlists give every register a next-state");
            next_values.push(self.signal_values[next.index()]);
        }
        self.register_values = next_values;
        self.cycle += 1;
        self.dirty = true;
        self.settle();
    }

    /// Runs `cycles` clock cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Steps until `predicate` returns true or `max_cycles` elapse; returns
    /// the number of cycles stepped, or `None` if the bound was hit first.
    pub fn step_until<F>(&mut self, max_cycles: u64, mut predicate: F) -> Option<u64>
    where
        F: FnMut(&mut Simulator) -> bool,
    {
        for i in 0..max_cycles {
            if predicate(self) {
                return Some(i);
            }
            self.step();
        }
        if predicate(self) {
            return Some(max_cycles);
        }
        None
    }

    /// Snapshot of all register values, indexed like
    /// [`rtl::Netlist::registers`].
    pub fn register_snapshot(&self) -> Vec<BitVec> {
        self.register_values.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_netlist() -> Netlist {
        let mut n = Netlist::new("counter");
        let enable = n.input("enable", 1);
        let count = n.register_init("count", 8, BitVec::zero(8));
        let one = n.lit(1, 8);
        let inc = n.add(count.value(), one);
        let next = n.mux(enable, inc, count.value());
        n.set_next(count, next);
        n.output("count", count.value());
        n
    }

    #[test]
    fn counter_counts_when_enabled() {
        let mut sim = Simulator::new(counter_netlist());
        sim.poke_by_name("enable", 1).unwrap();
        sim.run(5);
        assert_eq!(sim.peek_output("count").unwrap().as_u64(), 5);
        sim.poke_by_name("enable", 0).unwrap();
        sim.run(3);
        assert_eq!(sim.peek_output("count").unwrap().as_u64(), 5);
        assert_eq!(sim.cycle(), 8);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut sim = Simulator::new(counter_netlist());
        sim.poke_by_name("enable", 1).unwrap();
        sim.run(4);
        sim.reset();
        assert_eq!(sim.cycle(), 0);
        assert_eq!(sim.peek_output("count").unwrap().as_u64(), 0);
    }

    #[test]
    fn set_register_overrides_state() {
        let mut sim = Simulator::new(counter_netlist());
        sim.set_register_by_name("count", 250).unwrap();
        sim.poke_by_name("enable", 1).unwrap();
        sim.run(10);
        // 250 + 10 wraps modulo 256.
        assert_eq!(sim.peek_output("count").unwrap().as_u64(), 4);
    }

    #[test]
    fn unknown_names_error() {
        let mut sim = Simulator::new(counter_netlist());
        assert!(matches!(
            sim.poke_by_name("nope", 1),
            Err(SimError::UnknownInput(_))
        ));
        assert!(matches!(
            sim.peek_output("nope"),
            Err(SimError::UnknownOutput(_))
        ));
        assert!(matches!(
            sim.register_by_name("nope"),
            Err(SimError::UnknownRegister(_))
        ));
    }

    #[test]
    fn step_until_reports_latency() {
        let mut sim = Simulator::new(counter_netlist());
        sim.poke_by_name("enable", 1).unwrap();
        let cycles = sim.step_until(100, |s| s.peek_output("count").unwrap().as_u64() == 7);
        assert_eq!(cycles, Some(7));
        let timeout = sim.step_until(3, |s| s.peek_output("count").unwrap().as_u64() == 200);
        assert_eq!(timeout, None);
    }

    #[test]
    fn poke_truncates_to_width() {
        let mut sim = Simulator::new(counter_netlist());
        sim.poke_by_name("enable", 0xfe).unwrap(); // LSB is 0
        sim.run(2);
        assert_eq!(sim.peek_output("count").unwrap().as_u64(), 0);
    }
}
