//! The parallel, incremental UPEC checking engine.
//!
//! The paper's methodology re-solves the UPEC interval property over and
//! over: once per window length while deepening the proof, once per
//! commitment while diagnosing P-alerts, and once per scenario in the
//! evaluation sweep. The seed implementation rebuilt the unrolled miter and
//! a fresh SAT solver for every single query; this module replaces that
//! with:
//!
//! * [`IncrementalSession`] — one persistent solver per miter. Deepening a
//!   bound only bit-blasts the new frame, learned clauses and branching
//!   heuristics survive across queries, and per-query obligations are
//!   activation-literal guarded so they can be retired without a rebuild.
//! * [`UpecEngine`] — a worker pool that scans many scenarios (and,
//!   optionally, stripes of one scenario's bounds) concurrently, cancelling
//!   work that a racing stripe has already decided through the solver-level
//!   interrupt hook.
//! * [`SharedClausePool`] — the cross-session learned-clause exchange of the
//!   instance sweep: sessions with the same transition fingerprint publish
//!   and import each other's transition-tainted lemmas in canonical
//!   position form.
//! * [`EngineReport`] / [`ScenarioResult`] — aggregation of the per-bound
//!   outcomes back into the paper's vocabulary (P-alerts, L-alerts, proven
//!   windows), with per-scenario expectation checking against the
//!   [scenario registry](crate::scenarios).

mod error;
mod scheduler;
mod session;
mod share;

pub use error::EngineError;
pub use scheduler::{
    BoundStatus, BoundSummary, CertifiedBound, CertifiedResult, EngineOptions, EngineReport,
    InstanceResult, ScanVerdict, ScenarioResult, UpecEngine,
};
pub use session::IncrementalSession;
pub use share::SharedClausePool;
