//! Signal identifiers and word-level node kinds.

use crate::BitVec;
use std::fmt;

/// Handle to a signal (node) inside a [`Netlist`](crate::Netlist).
///
/// Signal ids are only meaningful for the netlist that created them; they are
/// assigned densely in creation order, which — because an expression may only
/// refer to signals that already exist — also is a topological order of the
/// combinational logic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Index of the signal inside its netlist.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a signal id from an index.
    ///
    /// This is intended for engines (simulator, bit-blaster) that store
    /// per-signal side tables indexed by [`SignalId::index`].
    pub fn from_index(index: usize) -> Self {
        SignalId(u32::try_from(index).expect("signal index exceeds u32 range"))
    }
}

impl fmt::Debug for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Handle to a register declared in a [`Netlist`](crate::Netlist).
///
/// A register is also a signal (its current-state value); the register handle
/// additionally identifies the storage element so that a next-state
/// expression and an initial value can be attached to it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegisterId(pub(crate) u32);

impl RegisterId {
    /// Index of the register in the netlist's register table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a register id from an index.
    pub fn from_index(index: usize) -> Self {
        RegisterId(u32::try_from(index).expect("register index exceeds u32 range"))
    }
}

impl fmt::Debug for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Unary word-level operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// OR-reduction to a single bit.
    ReduceOr,
    /// AND-reduction to a single bit.
    ReduceAnd,
    /// XOR-reduction (parity) to a single bit.
    ReduceXor,
}

impl UnaryOp {
    /// Result width for an operand of width `w`.
    pub fn result_width(self, w: u32) -> u32 {
        match self {
            UnaryOp::Not | UnaryOp::Neg => w,
            UnaryOp::ReduceOr | UnaryOp::ReduceAnd | UnaryOp::ReduceXor => 1,
        }
    }
}

/// Binary word-level operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Modular addition.
    Add,
    /// Modular subtraction.
    Sub,
    /// Equality, producing a single bit.
    Eq,
    /// Inequality, producing a single bit.
    Ne,
    /// Unsigned less-than, producing a single bit.
    Ult,
    /// Unsigned less-or-equal, producing a single bit.
    Ule,
    /// Signed less-than, producing a single bit.
    Slt,
    /// Logical shift left; the right operand is the shift amount.
    Shl,
    /// Logical shift right; the right operand is the shift amount.
    Shr,
}

impl BinaryOp {
    /// Result width for operands of width `wa` (left) and `wb` (right).
    pub fn result_width(self, wa: u32, _wb: u32) -> u32 {
        match self {
            BinaryOp::And
            | BinaryOp::Or
            | BinaryOp::Xor
            | BinaryOp::Add
            | BinaryOp::Sub
            | BinaryOp::Shl
            | BinaryOp::Shr => wa,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Ult | BinaryOp::Ule | BinaryOp::Slt => 1,
        }
    }

    /// Whether both operands must have identical widths.
    pub fn requires_equal_widths(self) -> bool {
        !matches!(self, BinaryOp::Shl | BinaryOp::Shr)
    }

    /// Whether the operator is commutative.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinaryOp::And
                | BinaryOp::Or
                | BinaryOp::Xor
                | BinaryOp::Add
                | BinaryOp::Eq
                | BinaryOp::Ne
        )
    }
}

/// A word-level node of the expression DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Free primary input of the netlist.
    Input {
        /// Port name.
        name: String,
        /// Bit width.
        width: u32,
    },
    /// Constant value.
    Const(BitVec),
    /// Current-state value of a register.
    Register {
        /// Register handle (index into the netlist's register table).
        register: RegisterId,
        /// Hierarchical register name.
        name: String,
        /// Bit width.
        width: u32,
    },
    /// Unary operator application.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        a: SignalId,
        /// Result width.
        width: u32,
    },
    /// Binary operator application.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        a: SignalId,
        /// Right operand.
        b: SignalId,
        /// Result width.
        width: u32,
    },
    /// Two-way multiplexer: `cond ? then_ : else_`.
    Mux {
        /// Single-bit select.
        cond: SignalId,
        /// Value when `cond` is one.
        then_: SignalId,
        /// Value when `cond` is zero.
        else_: SignalId,
        /// Result width.
        width: u32,
    },
    /// Bit-field extraction `a[hi..=lo]`.
    Slice {
        /// Operand.
        a: SignalId,
        /// Most-significant extracted bit.
        hi: u32,
        /// Least-significant extracted bit.
        lo: u32,
    },
    /// Concatenation; `hi` supplies the most-significant bits.
    Concat {
        /// Most-significant part.
        hi: SignalId,
        /// Least-significant part.
        lo: SignalId,
        /// Result width (sum of operand widths).
        width: u32,
    },
}

impl Node {
    /// Width of the value produced by the node.
    pub fn width(&self) -> u32 {
        match self {
            Node::Input { width, .. }
            | Node::Register { width, .. }
            | Node::Unary { width, .. }
            | Node::Binary { width, .. }
            | Node::Mux { width, .. }
            | Node::Concat { width, .. } => *width,
            Node::Const(v) => v.width(),
            Node::Slice { hi, lo, .. } => hi - lo + 1,
        }
    }

    /// Whether the node is a state-holding element (a register read).
    pub fn is_register(&self) -> bool {
        matches!(self, Node::Register { .. })
    }

    /// Whether the node is a primary input.
    pub fn is_input(&self) -> bool {
        matches!(self, Node::Input { .. })
    }

    /// Signals this node depends on combinationally.
    pub fn operands(&self) -> Vec<SignalId> {
        match self {
            Node::Input { .. } | Node::Const(_) | Node::Register { .. } => Vec::new(),
            Node::Unary { a, .. } | Node::Slice { a, .. } => vec![*a],
            Node::Binary { a, b, .. } => vec![*a, *b],
            Node::Concat { hi, lo, .. } => vec![*hi, *lo],
            Node::Mux {
                cond, then_, else_, ..
            } => vec![*cond, *then_, *else_],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_widths() {
        assert_eq!(UnaryOp::Not.result_width(8), 8);
        assert_eq!(UnaryOp::ReduceOr.result_width(8), 1);
        assert_eq!(BinaryOp::Add.result_width(8, 8), 8);
        assert_eq!(BinaryOp::Eq.result_width(8, 8), 1);
        assert_eq!(BinaryOp::Shl.result_width(8, 3), 8);
    }

    #[test]
    fn shift_amount_width_is_free() {
        assert!(!BinaryOp::Shl.requires_equal_widths());
        assert!(BinaryOp::Add.requires_equal_widths());
    }

    #[test]
    fn node_width_and_operands() {
        let n = Node::Const(BitVec::new(3, 4));
        assert_eq!(n.width(), 4);
        assert!(n.operands().is_empty());

        let n = Node::Slice {
            a: SignalId(0),
            hi: 7,
            lo: 4,
        };
        assert_eq!(n.width(), 4);
        assert_eq!(n.operands(), vec![SignalId(0)]);

        let n = Node::Mux {
            cond: SignalId(0),
            then_: SignalId(1),
            else_: SignalId(2),
            width: 8,
        };
        assert_eq!(n.operands().len(), 3);
    }

    #[test]
    fn ids_roundtrip_through_index() {
        let s = SignalId::from_index(42);
        assert_eq!(s.index(), 42);
        assert_eq!(format!("{s:?}"), "s42");
        let r = RegisterId::from_index(7);
        assert_eq!(r.index(), 7);
        assert_eq!(format!("{r:?}"), "r7");
    }

    #[test]
    fn commutativity_classification() {
        assert!(BinaryOp::Add.is_commutative());
        assert!(BinaryOp::Xor.is_commutative());
        assert!(!BinaryOp::Sub.is_commutative());
        assert!(!BinaryOp::Ult.is_commutative());
    }
}
