//! Measures the fuzz-mining pipeline end to end: generator throughput
//! through the two-secret divergence oracle, witness yield, delta-debugging
//! minimization ratios, a reproduction check of the registry's pinned
//! fuzz-mined witnesses, and the formal verdict runtime of every
//! `fuzz-*` scenario-family instance.
//!
//! Results are printed as a table and written to `BENCH_fuzz.json` so the
//! repository's bench trajectory can track mining throughput and the
//! fuzz-family proof costs over time.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin fuzz_stats               # full pipeline
//! cargo run --release -p bench --bin fuzz_stats -- --out /tmp/fuzz.json
//! cargo run --release -p bench --bin fuzz_stats -- --smoke    # CI smoke gate
//! ```
//!
//! `--smoke` is the fast CI gate wired into `scripts/verify.sh`: a bounded,
//! fixed-seed mining run (60 programs, 30 s wall-clock cap, no SAT) that
//! asserts the pipeline's soundness invariants — the secure design never
//! diverges, RTL/golden co-simulation never mismatches, at least one witness
//! is found, every minimized witness still diverges through its channel, and
//! a same-seed rerun reproduces the witnesses byte-for-byte. It writes no
//! JSON and exits non-zero on any violation.

use bench::json::{validate, JsonObject};
use soc::fuzz::{self, Channel, FuzzOptions, MineReport};
use soc::{Program, SocConfig, SocVariant};
use std::time::Duration;
use upec::scenarios::{self, fuzz_footprint_witness, fuzz_timing_witness};
use upec::{EngineOptions, UpecEngine};

/// The registry program a mined `(variant, channel)` witness must minimize
/// to, if that pair is pinned as a scenario.
fn pinned_program(variant: SocVariant, channel: Channel) -> Option<(&'static str, Program)> {
    match (variant, channel) {
        (SocVariant::MeltdownStyle, Channel::CacheFootprint) => {
            Some(("fuzz-meltdown-footprint", fuzz_footprint_witness()))
        }
        (SocVariant::Orc, Channel::CacheFootprint) => {
            Some(("fuzz-orc-footprint", fuzz_footprint_witness()))
        }
        (SocVariant::Orc, Channel::Timing) => Some(("fuzz-orc-timing", fuzz_timing_witness())),
        _ => None,
    }
}

fn mining_summary(report: &MineReport) -> String {
    let elapsed = report.elapsed.as_secs_f64();
    format!(
        "mined {} programs in {elapsed:.2}s ({:.1} programs/s): {} divergent runs, \
         {} witnesses, {} secure divergences, {} cosim mismatches",
        report.programs_run,
        report.programs_run as f64 / elapsed.max(1e-9),
        report.divergent_runs,
        report.witnesses.len(),
        report.secure_divergences,
        report.cosim_mismatches,
    )
}

fn smoke() -> ! {
    let opts = FuzzOptions::default()
        .with_programs(60)
        .with_time_budget(Duration::from_secs(30));
    let report = fuzz::mine(&opts);
    println!("{}", mining_summary(&report));
    let mut failed = false;
    if report.secure_divergences != 0 {
        eprintln!(
            "smoke: {} divergences on the secure design (oracle or SoC soundness bug)",
            report.secure_divergences
        );
        failed = true;
    }
    if report.cosim_mismatches != 0 {
        eprintln!(
            "smoke: {} RTL/golden co-simulation mismatches",
            report.cosim_mismatches
        );
        failed = true;
    }
    if report.witnesses.is_empty() {
        eprintln!("smoke: no divergence witness within the bounded run");
        failed = true;
    }
    for witness in &report.witnesses {
        // Minimizer round trip: the shrunk program must still diverge
        // through the same channel on the same variant.
        let config = SocConfig::new(witness.variant);
        let minimized = fuzz::minimize(&config, &witness.program, witness.channel, &opts);
        let still = fuzz::divergence(&config, &minimized.program, &opts);
        if still != Some(witness.channel) || minimized.minimized_len > minimized.original_len {
            eprintln!(
                "smoke: minimizer round trip failed for {:?}/{:?}: {} -> {} instructions, \
                 divergence {still:?}",
                witness.variant, witness.channel, minimized.original_len, minimized.minimized_len
            );
            failed = true;
        }
    }
    // Determinism: replaying exactly the programs that ran (the wall-clock
    // cap may have cut the first run short) must reproduce every witness.
    let rerun = fuzz::mine(&FuzzOptions::default().with_programs(report.programs_run));
    let same = rerun.witnesses.len() == report.witnesses.len()
        && rerun.witnesses.iter().zip(&report.witnesses).all(|(a, b)| {
            a.variant == b.variant
                && a.channel == b.channel
                && a.case_index == b.case_index
                && a.program == b.program
        });
    if !same {
        eprintln!(
            "smoke: same-seed rerun diverged ({} vs {} witnesses)",
            rerun.witnesses.len(),
            report.witnesses.len()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "smoke: {} witnesses minimized and reproduced deterministically",
        report.witnesses.len()
    );
    std::process::exit(0);
}

fn main() {
    let mut out_path = "BENCH_fuzz.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke(),
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                };
                out_path = path;
            }
            other => {
                eprintln!("unknown argument `{other}` (expected --smoke or --out PATH)");
                std::process::exit(2);
            }
        }
    }

    // Phase 1: mine with the pinned default options (the registry's
    // provenance: seed, program count and secrets all come from here).
    let opts = FuzzOptions::default();
    let report = fuzz::mine(&opts);
    println!("{}", mining_summary(&report));
    let mut sound = report.secure_divergences == 0 && report.cosim_mismatches == 0;

    // Phase 2: minimize every witness and check the registry pins.
    println!(
        "\n{:<16} {:<16} {:>5}  {:>9} {:>9} {:>7}  pinned",
        "variant", "channel", "case", "original", "minimal", "oracle"
    );
    let mut minimization_entries = Vec::new();
    let mut total_original = 0usize;
    let mut total_minimized = 0usize;
    for witness in &report.witnesses {
        let config = SocConfig::new(witness.variant);
        let minimized = fuzz::minimize(&config, &witness.program, witness.channel, &opts);
        total_original += minimized.original_len;
        total_minimized += minimized.minimized_len;
        let pin = pinned_program(witness.variant, witness.channel);
        let matches_pin = match &pin {
            Some((id, program)) => {
                let ok = minimized.program == *program;
                if !ok {
                    eprintln!(
                        "PIN MISMATCH on {id}: re-mined witness differs from the registry:\n{}",
                        minimized.program.listing()
                    );
                    sound = false;
                }
                ok
            }
            None => true,
        };
        println!(
            "{:<16} {:<16} {:>5}  {:>9} {:>9} {:>7}  {}",
            witness.variant.name(),
            witness.channel.name(),
            witness.case_index,
            minimized.original_len,
            minimized.minimized_len,
            minimized.oracle_runs,
            pin.as_ref().map_or("-", |(id, _)| id),
        );
        minimization_entries.push(format!(
            "    {}",
            JsonObject::new()
                .field_str("variant", witness.variant.name())
                .field_str("channel", witness.channel.name())
                .field_usize("case_index", witness.case_index)
                .field_usize("original_len", minimized.original_len)
                .field_usize("minimized_len", minimized.minimized_len)
                .field_usize("oracle_runs", minimized.oracle_runs)
                .field_str("pinned_scenario", pin.as_ref().map_or("", |(id, _)| id),)
                .field_raw("matches_pin", if matches_pin { "true" } else { "false" })
                .finish()
        ));
    }
    let minimization_ratio = total_minimized as f64 / (total_original as f64).max(1e-9);

    // Phase 3: formal verdicts of every fuzz-family instance (base geometry
    // plus the swept ones), each against its pinned expectation.
    println!(
        "\n{:<36} {:>13} {:>13} {:>9}",
        "instance", "expected", "verdict", "query"
    );
    let fuzz_instances: Vec<_> = scenarios::instances()
        .into_iter()
        .filter(|i| i.spec.id.starts_with("fuzz-"))
        .collect();
    let engine = UpecEngine::new(EngineOptions::new());
    let results = engine.run_instances(fuzz_instances);
    let mut instance_entries = Vec::new();
    for result in &results {
        let matches = result.matches_expectation();
        if !matches {
            eprintln!(
                "VERDICT MISMATCH on {}: expected {:?}, got {:?}",
                result.instance.id(),
                result.instance.expected,
                result.verdict
            );
            sound = false;
        }
        let query_seconds = result.query_time().as_secs_f64();
        println!(
            "{:<36} {:>13} {:>13} {:>8.2}s",
            result.instance.id(),
            format!("{:?}", result.instance.expected),
            format!("{:?}", result.verdict),
            query_seconds,
        );
        instance_entries.push(format!(
            "    {}",
            JsonObject::new()
                .field_str("id", &result.instance.id())
                .field_str("expected", &format!("{:?}", result.instance.expected))
                .field_str("verdict", &format!("{:?}", result.verdict))
                .field_raw("matches", if matches { "true" } else { "false" })
                .field_f64("query_seconds", query_seconds, 3)
                .field_u64("conflicts", result.conflicts)
                .finish()
        ));
    }

    let elapsed = report.elapsed.as_secs_f64();
    let mining = JsonObject::new()
        .field_u64("seed", opts.seed)
        .field_usize("programs", report.programs_run)
        .field_f64("elapsed_seconds", elapsed, 2)
        .field_f64(
            "programs_per_second",
            report.programs_run as f64 / elapsed.max(1e-9),
            1,
        )
        .field_usize("divergent_runs", report.divergent_runs)
        .field_usize("witnesses", report.witnesses.len())
        .field_usize("secure_divergences", report.secure_divergences)
        .field_usize("cosim_mismatches", report.cosim_mismatches)
        .finish();
    let json = format!(
        "{{\n  \"bench\": \"fuzz_stats\",\n  \"unit\": \"programs/second, instructions, \
         seconds\",\n  \"mining\": {mining},\n  \"minimization_ratio\": \
         {minimization_ratio:.2},\n  \"minimization\": [\n{}\n  ],\n  \"instances\": [\n{}\n  ]\n}}\n",
        minimization_entries.join(",\n"),
        instance_entries.join(",\n"),
    );
    validate(&json).unwrap_or_else(|e| panic!("generated invalid JSON: {e}\n{json}"));
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwrote {out_path} (minimization ratio {minimization_ratio:.2})");
    if !sound {
        std::process::exit(1);
    }
}
