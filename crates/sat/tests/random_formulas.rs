//! Property-based validation of the CDCL solver against a brute-force
//! reference on random small formulas.

use proptest::prelude::*;
use sat::{CnfFormula, Lit, SatResult, Solver, Var};

/// Brute-force satisfiability check for formulas with at most 16 variables.
fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    assert!(num_vars <= 16);
    'outer: for assignment in 0u32..(1 << num_vars) {
        for clause in clauses {
            let satisfied = clause.iter().any(|l| {
                let value = (assignment >> l.var().index()) & 1 == 1;
                value == l.is_positive()
            });
            if !satisfied {
                if clause.is_empty() {
                    return false;
                }
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn clause_strategy(num_vars: usize) -> impl Strategy<Value = Vec<Lit>> {
    prop::collection::vec((0..num_vars, prop::bool::ANY), 1..=3).prop_map(|lits| {
        lits.into_iter()
            .map(|(v, pos)| Lit::new(Var::from_index(v), pos))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The solver agrees with brute force on random 3-SAT-ish formulas, and
    /// the models it returns satisfy every clause.
    #[test]
    fn solver_agrees_with_brute_force(
        num_vars in 3usize..9,
        clauses in prop::collection::vec(clause_strategy(8), 1..24)
    ) {
        let clauses: Vec<Vec<Lit>> = clauses
            .into_iter()
            .map(|c| c.into_iter().filter(|l| l.var().index() < num_vars).collect::<Vec<_>>())
            .filter(|c: &Vec<Lit>| !c.is_empty())
            .collect();
        prop_assume!(!clauses.is_empty());

        let mut solver = Solver::new();
        solver.reserve_vars(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        let expected = brute_force_sat(num_vars, &clauses);
        match solver.solve() {
            SatResult::Sat(model) => {
                prop_assert!(expected, "solver said sat, brute force says unsat");
                for clause in &clauses {
                    prop_assert!(
                        clause.iter().any(|&l| model.lit_is_true(l)),
                        "model does not satisfy {clause:?}"
                    );
                }
            }
            SatResult::Unsat => prop_assert!(!expected, "solver said unsat, brute force says sat"),
            SatResult::Unknown => prop_assert!(false, "no limit was set, Unknown is impossible"),
        }
    }

    /// DIMACS export/import is an exact round trip.
    #[test]
    fn dimacs_roundtrip(num_vars in 1usize..8, clauses in prop::collection::vec(clause_strategy(7), 0..12)) {
        let mut cnf = CnfFormula::new();
        cnf.reserve_vars(num_vars.max(8));
        for clause in &clauses {
            cnf.add_clause(clause.iter().copied());
        }
        let parsed = CnfFormula::from_dimacs(&cnf.to_dimacs()).expect("well-formed output");
        prop_assert_eq!(parsed, cnf);
    }
}
