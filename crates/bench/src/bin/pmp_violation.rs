//! Reproduces the finding of paper Sec. VII-C: UPEC also uncovers the ISA
//! compliance violation in the physical-memory-protection (PMP) locking
//! logic — a "main channel" leak where the attacker gains direct access to
//! the secret.
//!
//! ```text
//! cargo run --release -p bench --bin pmp_violation
//! ```

use bench::secs;
use upec::{scenarios, UpecChecker, UpecOptions};

fn main() {
    println!("Sec. VII-C — PMP TOR-lock violation\n");
    let checker = UpecChecker::new();
    let pmp = scenarios::by_id("pmp-lock").expect("registered scenario");
    for spec in [
        pmp,
        scenarios::by_id("secure-arch-only").expect("registered scenario"),
    ] {
        let model = spec.build_model();
        let mut verdict = "no L-alert up to the window bound".to_string();
        let mut runtime = std::time::Duration::ZERO;
        // The shortest leaking scenario (move the locked base, mret, load the
        // secret) spans about seven cycles; the registry's window range for
        // the pmp-lock scenario starts the search there.
        for k in pmp.start_window..=pmp.max_window {
            let outcome = checker.check_architectural(&model, UpecOptions::window(k));
            runtime += outcome.stats().runtime;
            if let Some(alert) = outcome.alert() {
                verdict = format!(
                    "L-alert at window {k}: architectural registers {:?} receive secret-dependent values",
                    alert.architectural_differences
                );
                break;
            }
        }
        println!(
            "{:>14}: {verdict} ({} total solver time)",
            spec.variant.name(),
            secs(runtime)
        );
    }
    println!("\nShape check vs the paper: the buggy lock implementation lets privileged code");
    println!("move the base of a locked region, after which the 'protected' secret leaks");
    println!("directly into an architectural register; the correct implementation does not.");
}
