//! The parallel scenario/bound scheduler built on incremental sessions.

use crate::certify::{CertificateCheck, CertificateError, VerdictCertificate};
use crate::engine::{EngineError, IncrementalSession, SharedClausePool};
use crate::scenarios::{Expectation, ScenarioInstance, ScenarioSpec};
use crate::{Alert, AlertKind, UpecModel, UpecOptions, UpecOutcome};
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`UpecEngine`] run.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Number of worker threads (default: available parallelism, capped
    /// at 8).
    pub threads: usize,
    /// Optional cap on every scenario's scan range (`None`: each scenario's
    /// own `max_window`).
    pub max_window: Option<usize>,
    /// Optional per-query SAT conflict budget.
    pub conflict_limit: Option<u64>,
    /// Deterministic resource budget of each bound's query (see
    /// [`sat::Budget`]); an exhausted bound is recorded as
    /// [`BoundStatus::Unknown`] and never invents a verdict. Unlimited by
    /// default.
    pub bound_budget: sat::Budget,
    /// Deterministic resource budget of one whole scenario stripe: the spend
    /// of every bound accumulates against it, each bound runs under the
    /// remainder (intersected with `bound_budget`), and bounds reached after
    /// exhaustion are recorded as [`BoundStatus::Unknown`] without solving.
    /// Unlimited by default.
    pub scenario_budget: sat::Budget,
    /// Number of bound stripes per scenario. With `n > 1` stripes, a
    /// scenario's windows are dealt round-robin onto `n` independent
    /// incremental sessions that race in parallel; the first L-alert cancels
    /// the scenario's remaining work through the solvers' interrupt hook.
    pub stripes: usize,
    /// Exchange transition-tainted learned clauses between the sweep's
    /// sessions through a [`SharedClausePool`] (only
    /// [`UpecEngine::run_instances`] shares; certified scans never do).
    /// Defaults to on; the differential tests pin that disabling it does not
    /// change any verdict.
    pub share_clauses: bool,
}

impl EngineOptions {
    /// Defaults: all available cores (max 8), one stripe, no limits.
    pub fn new() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
            max_window: None,
            conflict_limit: None,
            bound_budget: sat::Budget::unlimited(),
            scenario_budget: sat::Budget::unlimited(),
            stripes: 1,
            share_clauses: true,
        }
    }

    /// Sets the per-bound resource budget (builder style).
    pub fn with_bound_budget(mut self, budget: sat::Budget) -> Self {
        self.bound_budget = budget;
        self
    }

    /// Sets the per-scenario-stripe resource budget (builder style).
    pub fn with_scenario_budget(mut self, budget: sat::Budget) -> Self {
        self.scenario_budget = budget;
        self
    }

    /// Sets the worker-thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Caps every scenario's scan range (builder style).
    pub fn with_max_window(mut self, max_window: usize) -> Self {
        self.max_window = Some(max_window);
        self
    }

    /// Sets the per-query conflict budget (builder style).
    pub fn with_conflict_limit(mut self, limit: Option<u64>) -> Self {
        self.conflict_limit = limit;
        self
    }

    /// Enables bound-parallel racing with `n` stripes per scenario (builder
    /// style).
    pub fn with_stripes(mut self, stripes: usize) -> Self {
        self.stripes = stripes.max(1);
        self
    }

    /// Enables or disables cross-session learned-clause sharing in
    /// [`UpecEngine::run_instances`] (builder style).
    pub fn with_clause_sharing(mut self, share: bool) -> Self {
        self.share_clauses = share;
        self
    }
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Status of one checked window length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundStatus {
    /// The property holds at this bound.
    Proven,
    /// A P-alert: secret reached program-invisible state only.
    PAlert,
    /// An L-alert: a covert channel is proven at this bound.
    LAlert,
    /// The solver hit its conflict budget.
    Unknown,
    /// Skipped because a sibling stripe already proved the scenario insecure.
    Cancelled,
}

/// Per-bound record of a scenario scan.
#[derive(Debug, Clone, Copy)]
pub struct BoundSummary {
    /// Window length.
    pub bound: usize,
    /// What the check concluded.
    pub status: BoundStatus,
    /// SAT conflicts attributed to this bound.
    pub conflicts: u64,
    /// Wall-clock time of this bound's query.
    pub runtime: Duration,
    /// Encoded CNF variables in the session when this bound finished.
    pub variables: usize,
    /// Encoded CNF problem clauses in the session when this bound finished.
    pub clauses: usize,
}

/// Aggregate verdict of one scenario scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanVerdict {
    /// Proven at every window in the range.
    Secure,
    /// P-alerts only; no covert channel demonstrated.
    PAlertsOnly,
    /// At least one L-alert: the design leaks.
    Insecure,
    /// Budget exhausted before a verdict.
    Inconclusive,
}

/// Result of scanning one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario that was scanned.
    pub spec: ScenarioSpec,
    /// Aggregate verdict over the scanned range.
    pub verdict: ScanVerdict,
    /// The alert with the smallest window, if any was found. When a sibling
    /// stripe cancels in-flight work the smallest *completed* alert window is
    /// reported.
    pub first_alert: Option<Alert>,
    /// Per-bound outcomes, sorted by window length.
    pub bounds: Vec<BoundSummary>,
    /// Total SAT conflicts across all stripes of this scenario.
    pub conflicts: u64,
    /// Total unit propagations across all stripes of this scenario.
    pub propagations: u64,
    /// Solver episodes stopped by an exhausted [`sat::Budget`] across all
    /// stripes (zero unless the engine ran with a bound or scenario budget).
    pub budget_exhaustions: u64,
    /// Solver episodes stopped by cancellation (a raised interrupt or
    /// [`sat::CancelToken`]) across all stripes.
    pub cancellations: u64,
}

impl ScenarioResult {
    /// Whether the verdict matches the registry's expectation.
    pub fn matches_expectation(&self) -> bool {
        matches!(
            (self.spec.expected, self.verdict),
            (Expectation::Proven, ScanVerdict::Secure)
                | (Expectation::PAlertsOnly, ScanVerdict::PAlertsOnly)
                | (Expectation::LAlert, ScanVerdict::Insecure)
        )
    }

    /// Encoded CNF size at the deepest completed bound: `(variables,
    /// clauses)`. Sessions encode incrementally, so the deepest bound holds
    /// the session's final (largest) encoding.
    pub fn peak_cnf(&self) -> (usize, usize) {
        self.bounds
            .iter()
            .map(|b| (b.variables, b.clauses))
            .max()
            .unwrap_or((0, 0))
    }

    /// Total query wall time across all completed bounds.
    pub fn query_time(&self) -> Duration {
        self.bounds.iter().map(|b| b.runtime).sum()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let alert = match &self.first_alert {
            Some(a) => format!(", first alert ({:?}) at k={}", a.kind, a.window),
            None => String::new(),
        };
        let (vars, clauses) = self.peak_cnf();
        format!(
            "{:<18} {:?}{alert} [{} bounds, {} conflicts, {vars} vars / {clauses} clauses, {:.2?} solve]",
            self.spec.id,
            self.verdict,
            self.bounds.len(),
            self.conflicts,
            self.query_time()
        )
    }
}

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-scenario results, in submission order.
    pub results: Vec<ScenarioResult>,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
}

impl EngineReport {
    /// Total SAT conflicts across every scenario.
    pub fn total_conflicts(&self) -> u64 {
        self.results.iter().map(|r| r.conflicts).sum()
    }

    /// Whether every scenario matched its registered expectation.
    pub fn all_match_expectations(&self) -> bool {
        self.results.iter().all(|r| r.matches_expectation())
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&r.summary());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} scenarios in {:.2?}, {} total conflicts",
            self.results.len(),
            self.wall_time,
            self.total_conflicts()
        ));
        out
    }
}

/// One unit of schedulable work: a scenario stripe.
#[derive(Debug, Clone, Copy)]
struct Job {
    spec_index: usize,
    stripe: usize,
}

/// Result of one stripe (a subset of one scenario's bounds on one session).
struct StripeOutcome {
    bounds: Vec<BoundSummary>,
    first_alert: Option<Alert>,
    conflicts: u64,
    propagations: u64,
    budget_exhaustions: u64,
    cancellations: u64,
}

/// The parallel, incremental UPEC checking engine.
///
/// The engine takes a batch of [`ScenarioSpec`]s (usually straight from
/// [`crate::scenarios::registry`]) and scans each scenario's window range on
/// a pool of worker threads. Every unit of work is an
/// [`IncrementalSession`]: one persistent SAT solver that walks its share of
/// the bounds, reusing learned clauses and activities between bounds instead
/// of re-solving from scratch.
///
/// Two axes of parallelism compose:
///
/// * **scenario-parallel** — independent scenarios are dealt to the worker
///   pool and run concurrently;
/// * **bound-parallel** (portfolio racing, [`EngineOptions::with_stripes`]) —
///   a single scenario's windows are split round-robin across several racing
///   sessions, and the first L-alert cancels the scenario's remaining work
///   through the solver-level interrupt hook
///   ([`sat::Solver::set_interrupt`]).
///
/// # Examples
///
/// The quick proof below runs in a couple of seconds; sweeping the full
/// registry (`engine.run(scenarios::registry())`) is the
/// `cargo run -p bench --bin engine` entry point.
///
/// ```
/// use upec::{scenarios, EngineOptions, ScanVerdict, UpecEngine};
///
/// let engine = UpecEngine::new(EngineOptions::new().with_threads(2).with_max_window(1));
/// let spec = scenarios::by_id("secure-uncached").unwrap();
/// let report = engine.run([spec]);
/// assert_eq!(report.results.len(), 1);
/// assert_eq!(report.results[0].verdict, ScanVerdict::Secure);
/// assert!(report.results[0].matches_expectation());
/// ```
#[derive(Debug, Clone, Default)]
pub struct UpecEngine {
    options: EngineOptions,
}

impl UpecEngine {
    /// Creates an engine with the given options.
    pub fn new(options: EngineOptions) -> Self {
        Self { options }
    }

    /// Scans every scenario and aggregates the results.
    pub fn run<I>(&self, specs: I) -> EngineReport
    where
        I: IntoIterator<Item = ScenarioSpec>,
    {
        let start = Instant::now();
        let specs: Vec<ScenarioSpec> = specs.into_iter().collect();
        let stripes = self.options.stripes;
        let cancels: Vec<Arc<AtomicBool>> = specs
            .iter()
            .map(|_| Arc::new(AtomicBool::new(false)))
            .collect();
        let jobs: Mutex<VecDeque<Job>> = Mutex::new(
            specs
                .iter()
                .enumerate()
                .flat_map(|(spec_index, _)| {
                    (0..stripes).map(move |stripe| Job { spec_index, stripe })
                })
                .collect(),
        );
        let stripe_results: Mutex<Vec<Vec<StripeOutcome>>> =
            Mutex::new(specs.iter().map(|_| Vec::new()).collect());

        let workers = self.options.threads.min(specs.len() * stripes).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = jobs.lock().unwrap().pop_front();
                    let Some(job) = job else { break };
                    let outcome = self.run_stripe(
                        &specs[job.spec_index],
                        job.stripe,
                        stripes,
                        &cancels[job.spec_index],
                    );
                    stripe_results.lock().unwrap()[job.spec_index].push(outcome);
                });
            }
        });

        let results = specs
            .into_iter()
            .zip(stripe_results.into_inner().unwrap())
            .map(|(spec, stripes)| aggregate(spec, stripes))
            .collect();
        EngineReport {
            results,
            wall_time: start.elapsed(),
        }
    }

    /// Runs one stripe of one scenario on a fresh incremental session.
    fn run_stripe(
        &self,
        spec: &ScenarioSpec,
        stripe: usize,
        stride: usize,
        cancel: &Arc<AtomicBool>,
    ) -> StripeOutcome {
        let model = spec.build_model();
        let commitment = spec.commitment_set(&model);
        self.scan_bounds(
            spec.id,
            &model,
            &commitment,
            spec.start_window,
            spec.max_window,
            stripe,
            stride,
            cancel,
            None,
        )
    }

    /// The shared per-bound scan loop: walks one stripe of a window range on
    /// a fresh incremental session. Both the spec path ([`UpecEngine::run`])
    /// and the instance path ([`UpecEngine::run_instances`]) end up here.
    ///
    /// With a `pool`, the loop exchanges transition-tainted learned clauses
    /// with sibling sessions of the same fingerprint: before each bound it
    /// imports pool clauses whose frame ceiling the session has already
    /// encoded, after each bound it publishes its own fresh exportables.
    #[allow(clippy::too_many_arguments)]
    fn scan_bounds(
        &self,
        id: &str,
        model: &UpecModel,
        commitment: &BTreeSet<String>,
        start_window: usize,
        max_window: usize,
        stripe: usize,
        stride: usize,
        cancel: &Arc<AtomicBool>,
        pool: Option<&SharedClausePool>,
    ) -> StripeOutcome {
        let mut scenario_span = obs::span("upec.scenario");
        scenario_span.attr_str("id", id);
        scenario_span.attr_u64("stripe", stripe as u64);
        let mut session = IncrementalSession::new(model, self.options.conflict_limit);
        session.set_interrupt(Some(cancel.clone()));
        let fingerprint = session.share_fingerprint();
        let mut share_cursor = 0usize;
        // Fetched clauses over frames deeper than the session's current
        // bound wait here; the importer itself skips anything the session
        // still cannot express (frame-tag filtering, see
        // [`IncrementalSession::import_shared`]).
        let mut share_pending: Vec<bmc::SharedClause> = Vec::new();
        let mut export_buf: Vec<bmc::SharedClause> = Vec::new();
        // Honor the cap strictly: a cap below the scenario's start window
        // yields an empty scan (reported as Inconclusive) rather than
        // silently running the scenario's cheapest — possibly still
        // multi-minute — bound.
        let max = self
            .options
            .max_window
            .map_or(max_window, |m| m.min(max_window));
        let scan_start = session.solver_stats();
        let mut bounds = Vec::new();
        let mut first_alert: Option<Alert> = None;
        for k in (start_window..=max).filter(|k| (k - start_window) % stride == stripe) {
            if cancel.load(Ordering::Relaxed) {
                bounds.push(BoundSummary {
                    bound: k,
                    status: BoundStatus::Cancelled,
                    conflicts: 0,
                    runtime: Duration::ZERO,
                    variables: 0,
                    clauses: 0,
                });
                continue;
            }
            // Budget policy: each bound runs under its own budget intersected
            // with whatever the scenario budget has left; once the stripe's
            // allotment is spent, remaining bounds are recorded as Unknown
            // without even encoding them. The scan never invents a verdict.
            let scenario_left = self
                .options
                .scenario_budget
                .minus(&session.solver_stats().delta_since(&scan_start));
            if scenario_left.is_exhausted() {
                obs::counter("upec.scan.budget_skipped_bounds", 1);
                bounds.push(BoundSummary {
                    bound: k,
                    status: BoundStatus::Unknown,
                    conflicts: 0,
                    runtime: Duration::ZERO,
                    variables: 0,
                    clauses: 0,
                });
                continue;
            }
            session.set_budget(self.options.bound_budget.min(scenario_left));
            if let (Some(pool), Some(fp)) = (pool, fingerprint) {
                let (batch, next) = pool.fetch(fp, share_cursor);
                share_cursor = next;
                share_pending.extend(batch);
                // Only clauses whose deepest frame the session has encoded
                // (bounds up to k-1 so far) can be expressed right now.
                let (eligible, rest): (Vec<_>, Vec<_>) = share_pending
                    .drain(..)
                    .partition(|c| (c.ceiling as usize) < k);
                share_pending = rest;
                if !eligible.is_empty() {
                    session.import_shared(&eligible);
                }
            }
            let (status, stats) = match session.check_bound(k, commitment) {
                UpecOutcome::Proven(s) => (BoundStatus::Proven, s),
                UpecOutcome::Unknown(s) => {
                    // The solver reports *why* it stopped; only genuine
                    // cancellations (a sibling stripe's L-alert, a raised
                    // token) count as Cancelled — exhausted budgets and
                    // conflict limits stay Unknown.
                    let cancelled = cancel.load(Ordering::Relaxed)
                        || matches!(s.stop, Some(sat::StopCause::Cancelled));
                    let status = if cancelled {
                        BoundStatus::Cancelled
                    } else {
                        BoundStatus::Unknown
                    };
                    (status, s)
                }
                UpecOutcome::Violated(alert, s) => {
                    let status = match alert.kind {
                        AlertKind::PAlert => BoundStatus::PAlert,
                        AlertKind::LAlert => BoundStatus::LAlert,
                    };
                    let is_l = alert.kind == AlertKind::LAlert;
                    if first_alert.is_none() {
                        first_alert = Some(alert);
                    }
                    if is_l {
                        // A covert channel is proven: stop this scenario's
                        // remaining work everywhere.
                        cancel.store(true, Ordering::Relaxed);
                    }
                    (status, s)
                }
            };
            if let (Some(pool), Some(fp)) = (pool, fingerprint) {
                session.export_shared(&mut export_buf);
                if !export_buf.is_empty() {
                    pool.publish(fp, std::mem::take(&mut export_buf));
                }
            }
            bounds.push(BoundSummary {
                bound: k,
                status,
                conflicts: stats.conflicts,
                runtime: stats.runtime,
                variables: stats.variables,
                clauses: stats.clauses,
            });
            if status == BoundStatus::LAlert {
                break;
            }
        }
        let stats = session.solver_stats();
        StripeOutcome {
            bounds,
            first_alert,
            conflicts: stats.conflicts,
            propagations: stats.propagations,
            budget_exhaustions: stats.budget_exhaustions,
            cancellations: stats.cancellations,
        }
    }
}

/// The aggregate verdict implied by a set of per-bound outcomes.
fn verdict_from_bounds(bounds: &[BoundSummary]) -> ScanVerdict {
    let has = |status: BoundStatus| bounds.iter().any(|b| b.status == status);
    if bounds.is_empty() {
        // Nothing was checked (e.g. the engine's window cap lies below the
        // scenario's start window) — never report an unchecked design secure.
        ScanVerdict::Inconclusive
    } else if has(BoundStatus::LAlert) {
        ScanVerdict::Insecure
    } else if has(BoundStatus::Unknown) || has(BoundStatus::Cancelled) {
        ScanVerdict::Inconclusive
    } else if has(BoundStatus::PAlert) {
        ScanVerdict::PAlertsOnly
    } else {
        ScanVerdict::Secure
    }
}

/// Merges a scenario's stripe outcomes into a single result.
fn aggregate(spec: ScenarioSpec, stripes: Vec<StripeOutcome>) -> ScenarioResult {
    let mut bounds: Vec<BoundSummary> = Vec::new();
    let mut first_alert: Option<Alert> = None;
    let mut conflicts = 0;
    let mut propagations = 0;
    let mut budget_exhaustions = 0;
    let mut cancellations = 0;
    for stripe in stripes {
        bounds.extend(stripe.bounds);
        conflicts += stripe.conflicts;
        propagations += stripe.propagations;
        budget_exhaustions += stripe.budget_exhaustions;
        cancellations += stripe.cancellations;
        if let Some(alert) = stripe.first_alert {
            let better = first_alert
                .as_ref()
                .is_none_or(|current| alert.window < current.window);
            if better {
                first_alert = Some(alert);
            }
        }
    }
    bounds.sort_by_key(|b| b.bound);
    let verdict = verdict_from_bounds(&bounds);
    ScenarioResult {
        spec,
        verdict,
        first_alert,
        bounds,
        conflicts,
        propagations,
        budget_exhaustions,
        cancellations,
    }
}

/// Result of scanning one [`ScenarioInstance`].
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// The instance that was scanned.
    pub instance: ScenarioInstance,
    /// Aggregate verdict over the instance's window range.
    pub verdict: ScanVerdict,
    /// The alert with the smallest window, if any was found.
    pub first_alert: Option<Alert>,
    /// Per-bound outcomes, sorted by window length.
    pub bounds: Vec<BoundSummary>,
    /// Total SAT conflicts of the scan.
    pub conflicts: u64,
    /// Total unit propagations of the scan.
    pub propagations: u64,
    /// Solver episodes stopped by an exhausted [`sat::Budget`] during the
    /// scan (zero unless the engine ran with a bound or scenario budget).
    pub budget_exhaustions: u64,
    /// Solver episodes stopped by cancellation during the scan.
    pub cancellations: u64,
}

impl InstanceResult {
    /// Whether the verdict matches the instance's pinned expectation.
    pub fn matches_expectation(&self) -> bool {
        matches!(
            (self.instance.expected, self.verdict),
            (Expectation::Proven, ScanVerdict::Secure)
                | (Expectation::PAlertsOnly, ScanVerdict::PAlertsOnly)
                | (Expectation::LAlert, ScanVerdict::Insecure)
        )
    }

    /// Total query wall time across all completed bounds.
    pub fn query_time(&self) -> Duration {
        self.bounds.iter().map(|b| b.runtime).sum()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let alert = match &self.first_alert {
            Some(a) => format!(", first alert ({:?}) at k={}", a.kind, a.window),
            None => String::new(),
        };
        format!(
            "{:<34} {:?}{alert} [{} bounds, {} conflicts, {:.2?} solve]",
            self.instance.id(),
            self.verdict,
            self.bounds.len(),
            self.conflicts,
            self.query_time()
        )
    }
}

/// Per-bound record of a certified scan: the usual bound summary plus the
/// verdict's proof artifact (absent only for [`BoundStatus::Unknown`]
/// bounds, which carry no verdict to certify).
#[derive(Debug, Clone)]
pub struct CertifiedBound {
    /// The bound's outcome and effort counters.
    pub summary: BoundSummary,
    /// The bound's checkable certificate.
    pub certificate: Option<VerdictCertificate>,
}

/// Result of a certified scan of one [`ScenarioInstance`]: the aggregate
/// verdict plus one [`VerdictCertificate`] per decided bound.
#[derive(Debug, Clone)]
pub struct CertifiedResult {
    /// The instance that was scanned.
    pub instance: ScenarioInstance,
    /// Aggregate verdict over the scanned range.
    pub verdict: ScanVerdict,
    /// Per-bound outcomes with their certificates, sorted by window length.
    pub bounds: Vec<CertifiedBound>,
}

impl CertifiedResult {
    /// Whether the verdict matches the instance's pinned expectation.
    pub fn matches_expectation(&self) -> bool {
        matches!(
            (self.instance.expected, self.verdict),
            (Expectation::Proven, ScanVerdict::Secure)
                | (Expectation::PAlertsOnly, ScanVerdict::PAlertsOnly)
                | (Expectation::LAlert, ScanVerdict::Insecure)
        )
    }

    /// Number of bounds that carry a certificate.
    pub fn certified_bounds(&self) -> usize {
        self.bounds
            .iter()
            .filter(|b| b.certificate.is_some())
            .count()
    }

    /// Re-checks every certificate against `model` (which must be built from
    /// the same instance) and returns the per-bound check reports in scan
    /// order.
    ///
    /// # Errors
    ///
    /// Returns the first [`CertificateError`] encountered.
    pub fn check_all(&self, model: &UpecModel) -> Result<Vec<CertificateCheck>, CertificateError> {
        self.bounds
            .iter()
            .filter_map(|b| b.certificate.as_ref())
            .map(|c| c.check(model))
            .collect()
    }
}

impl UpecEngine {
    /// Scans every [`ScenarioInstance`] on the worker pool (one incremental
    /// session per instance) and returns the results in submission order.
    ///
    /// This is the family-sweep entry point: where [`UpecEngine::run`] walks
    /// the registry's specs at the default formal geometry,
    /// `run_instances` takes the parameterized instance registry
    /// ([`crate::scenarios::instances`]) whose members carry their own
    /// geometry, window range and expectation.
    ///
    /// Unless [`EngineOptions::with_clause_sharing`] disabled it, the
    /// sweep's sessions exchange transition-tainted learned clauses through
    /// a [`SharedClausePool`]: instances whose miters share a transition
    /// fingerprint (same geometry and frame-0 aliasing) reuse each other's
    /// purely-definitional lemmas instead of re-deriving them. Sharing is
    /// verdict-neutral by construction — the differential tests pin it.
    pub fn run_instances<I>(&self, instances: I) -> Vec<InstanceResult>
    where
        I: IntoIterator<Item = ScenarioInstance>,
    {
        let instances: Vec<ScenarioInstance> = instances.into_iter().collect();
        let jobs: Mutex<VecDeque<usize>> = Mutex::new((0..instances.len()).collect());
        let results: Mutex<Vec<Option<InstanceResult>>> =
            Mutex::new(instances.iter().map(|_| None).collect());
        let pool = self.options.share_clauses.then(SharedClausePool::new);
        let workers = self.options.threads.min(instances.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = jobs.lock().unwrap().pop_front();
                    let Some(index) = index else { break };
                    let instance = instances[index];
                    let model = instance.build_model();
                    let commitment = instance.commitment_set(&model);
                    let cancel = Arc::new(AtomicBool::new(false));
                    let outcome = self.scan_bounds(
                        &instance.id(),
                        &model,
                        &commitment,
                        instance.start_window,
                        instance.max_window,
                        0,
                        1,
                        &cancel,
                        pool.as_ref(),
                    );
                    let verdict = verdict_from_bounds(&outcome.bounds);
                    results.lock().unwrap()[index] = Some(InstanceResult {
                        instance,
                        verdict,
                        first_alert: outcome.first_alert,
                        bounds: outcome.bounds,
                        conflicts: outcome.conflicts,
                        propagations: outcome.propagations,
                        budget_exhaustions: outcome.budget_exhaustions,
                        cancellations: outcome.cancellations,
                    });
                });
            }
        });
        results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("every instance job completes"))
            .collect()
    }

    /// Scans one instance with certificate production on: every decided
    /// bound's verdict is packaged as a [`VerdictCertificate`] (DRAT
    /// refutation for proven bounds, replayable witness for violated ones).
    ///
    /// Certificates are *produced*, not yet checked — call
    /// [`CertifiedResult::check_all`] (or each certificate's
    /// [`VerdictCertificate::check`]) to re-validate the verdicts
    /// independently of the solver. The scan is serial: certification is a
    /// per-verdict audit trail, not a throughput path, and a single
    /// incremental session keeps the proof log contiguous.
    ///
    /// The engine's window cap and conflict budget are honored exactly like
    /// [`UpecEngine::run_instances`].
    pub fn check_certified(&self, instance: &ScenarioInstance) -> CertifiedResult {
        let model = instance.build_model();
        let commitment = instance.commitment_set(&model);
        let options = UpecOptions::window(0)
            .with_conflict_limit(self.options.conflict_limit)
            .with_budget(self.options.bound_budget)
            .with_certificates();
        let mut session = IncrementalSession::with_options(&model, options);
        let max = self
            .options
            .max_window
            .map_or(instance.max_window, |m| m.min(instance.max_window));
        let mut bounds = Vec::new();
        for k in instance.start_window..=max {
            let (status, stats, certificate) = match session.check_bound_certified(k, &commitment) {
                Ok((outcome, certificate)) => {
                    let (status, stats) = match &outcome {
                        UpecOutcome::Proven(s) => (BoundStatus::Proven, *s),
                        UpecOutcome::Violated(alert, s) => (
                            match alert.kind {
                                AlertKind::PAlert => BoundStatus::PAlert,
                                AlertKind::LAlert => BoundStatus::LAlert,
                            },
                            *s,
                        ),
                        // Unknown outcomes surface as UncertifiableVerdict.
                        UpecOutcome::Unknown(s) => (BoundStatus::Unknown, *s),
                    };
                    (status, stats, certificate)
                }
                // An undecided bound has no verdict and therefore no
                // certificate; record it honestly and keep scanning — the
                // session stays valid.
                Err(EngineError::UncertifiableVerdict { stats, stop, .. }) => {
                    let status = if matches!(stop, Some(sat::StopCause::Cancelled)) {
                        BoundStatus::Cancelled
                    } else {
                        BoundStatus::Unknown
                    };
                    (status, stats, None)
                }
                Err(e) => panic!("certified scan of {}: {e}", instance.id()),
            };
            bounds.push(CertifiedBound {
                summary: BoundSummary {
                    bound: k,
                    status,
                    conflicts: stats.conflicts,
                    runtime: stats.runtime,
                    variables: stats.variables,
                    clauses: stats.clauses,
                },
                certificate,
            });
            if status == BoundStatus::LAlert {
                break;
            }
        }
        let summaries: Vec<BoundSummary> = bounds.iter().map(|b| b.summary).collect();
        CertifiedResult {
            instance: *instance,
            verdict: verdict_from_bounds(&summaries),
            bounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn engine_matches_expectations_on_a_fast_subset() {
        // A cheap subset keeps the default suite fast on small machines; the
        // `#[ignore]`d sweep below covers the whole registry and `cargo run
        // -p bench --bin engine` runs it as a standalone gate.
        let specs = [
            scenarios::by_id("secure-uncached").unwrap(),
            scenarios::by_id("orc").unwrap(),
        ];
        let engine = UpecEngine::new(EngineOptions::new().with_threads(2).with_max_window(2));
        let report = engine.run(specs);
        for result in &report.results {
            assert!(
                result.matches_expectation(),
                "{}: expected {:?}, got {:?}\n{}",
                result.spec.id,
                result.spec.expected,
                result.verdict,
                result.summary()
            );
        }
    }

    /// The full-registry sweep takes tens of SAT-heavy minutes on a small
    /// machine, so it is opt-in: `cargo test -p upec --release -- --ignored`.
    #[test]
    #[ignore = "multi-minute SAT sweep of every registered scenario; run with --ignored"]
    fn engine_reproduces_every_registry_expectation() {
        let engine = UpecEngine::new(EngineOptions::new());
        let report = engine.run(scenarios::registry());
        assert!(report.all_match_expectations(), "{}", report.summary());
    }

    #[test]
    fn bound_striping_agrees_with_single_stripe() {
        let spec = scenarios::by_id("orc").unwrap();
        let options = EngineOptions::new().with_threads(1).with_max_window(2);
        let single = UpecEngine::new(options).run([spec]);
        let striped = UpecEngine::new(
            EngineOptions::new()
                .with_threads(2)
                .with_stripes(2)
                .with_max_window(2),
        )
        .run([spec]);
        assert_eq!(single.results[0].verdict, ScanVerdict::Insecure);
        assert_eq!(striped.results[0].verdict, ScanVerdict::Insecure);
    }

    #[test]
    fn max_window_caps_the_scan() {
        let spec = scenarios::by_id("secure-uncached").unwrap();
        let report =
            UpecEngine::new(EngineOptions::new().with_threads(1).with_max_window(1)).run([spec]);
        assert_eq!(report.results[0].bounds.len(), 1);
        assert_eq!(report.results[0].verdict, ScanVerdict::Secure);
    }
}
