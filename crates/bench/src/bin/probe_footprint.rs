//! Temporary probe: the Meltdown-style cache-footprint obligation, old
//! implementation vs incremental session, deeper windows.

use bmc::{UnrollOptions, Unrolling};
use sat::SatResult;
use std::collections::BTreeSet;
use std::time::Instant;
use upec::engine::IncrementalSession;
use upec::{scenarios, StateClass, UpecModel};

fn old_check(model: &UpecModel, k: usize, commitment: &BTreeSet<String>) -> bool {
    let aliases: Vec<_> = model
        .pairs()
        .iter()
        .filter(|p| p.class != StateClass::Memory)
        .map(|p| (p.signal2, p.signal1))
        .collect();
    let mut u = Unrolling::with_frame0_aliases(model.netlist(), UnrollOptions::default(), &aliases);
    u.extend_to(k);
    for c in model.initial_constraints() {
        u.assume_signal_true(0, c.signal).unwrap();
    }
    for c in model.window_constraints() {
        for f in 0..=k {
            u.assume_signal_true(f, c.signal).unwrap();
        }
    }
    let lits: Vec<_> = model
        .pairs()
        .iter()
        .filter(|p| p.class != StateClass::Memory && commitment.contains(&p.name))
        .map(|p| u.bit_lit(k, p.equal).unwrap())
        .collect();
    u.add_clause(lits.iter().map(|&l| !l));
    matches!(u.solve(&[]), SatResult::Sat(_))
}

fn main() {
    let spec = scenarios::by_id("cache-footprint").unwrap();
    let model = spec.build_model();
    let commitment = spec.commitment_set(&model);

    let t = Instant::now();
    let sat = old_check(&model, 4, &commitment);
    println!("old  k=4: sat={sat} {:?}", t.elapsed());

    let mut session = IncrementalSession::new(&model, None);
    for k in 1..=7 {
        let t = Instant::now();
        let outcome = session.check_bound(k, &commitment);
        println!(
            "inc  k={k}: alert={:?} conflicts={} {:?}",
            outcome.alert().map(|a| a.kind),
            outcome.stats().conflicts,
            t.elapsed()
        );
    }
}
