//! Transition-relation unrolling with word-level bit-blasting.

use crate::GateBuilder;
use rtl::{BinaryOp, BitVec, Netlist, Node, SignalId, UnaryOp};
use sat::{Lit, Model, SatResult};

/// Options controlling how a netlist is unrolled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnrollOptions {
    /// When `true`, registers that declare an initial value start there in
    /// frame 0. When `false` every register starts fully *symbolic*, which is
    /// the "any-state proof" setting used by interval property checking
    /// (IPC) and by all UPEC proofs.
    pub use_initial_values: bool,
    /// Optional conflict budget handed to the SAT solver; `None` means solve
    /// to completion.
    pub conflict_limit: Option<u64>,
}

impl Default for UnrollOptions {
    fn default() -> Self {
        Self {
            use_initial_values: false,
            conflict_limit: None,
        }
    }
}

impl UnrollOptions {
    /// Symbolic-initial-state unrolling (the IPC default).
    pub fn symbolic_initial_state() -> Self {
        Self::default()
    }

    /// Reset-state bounded model checking (used by the ablation experiments).
    pub fn from_reset_state() -> Self {
        Self {
            use_initial_values: true,
            conflict_limit: None,
        }
    }

    /// Sets the solver conflict budget.
    pub fn with_conflict_limit(mut self, limit: Option<u64>) -> Self {
        self.conflict_limit = limit;
        self
    }
}

/// A netlist unrolled over `k+1` time frames and bit-blasted into CNF.
///
/// Frame `t` describes the state *at* clock cycle `t`; the register values of
/// frame `t+1` are the bit-blasted next-state functions evaluated in frame
/// `t`. Primary inputs receive fresh variables in every frame, so the solver
/// searches over *all* input sequences — for the UPEC miter this is what
/// makes the program symbolic.
///
/// # Examples
///
/// ```
/// use rtl::{Netlist, BitVec};
/// use bmc::{Unrolling, UnrollOptions};
///
/// let mut n = Netlist::new("counter");
/// let c = n.register_init("c", 4, BitVec::zero(4));
/// let one = n.lit(1, 4);
/// let next = n.add(c.value(), one);
/// n.set_next(c, next);
/// n.output("c", c.value());
///
/// let mut unrolling = Unrolling::new(&n, UnrollOptions::from_reset_state());
/// unrolling.extend_to(3);
/// // After 3 cycles from reset the counter must hold 3.
/// let must_be_three = unrolling.assume_signal_equals_const(3, c.value(), 3);
/// assert!(must_be_three.is_ok());
/// assert!(unrolling.solve(&[]).is_sat());
/// ```
#[derive(Debug)]
pub struct Unrolling<'n> {
    netlist: &'n Netlist,
    gates: GateBuilder,
    options: UnrollOptions,
    /// `frames[t][signal]` = literals of the signal in frame `t`, LSB first.
    frames: Vec<Vec<Vec<Lit>>>,
    /// Registers whose frame-0 value shares the literals of another register
    /// (used by miter-style proofs to state "these start equal" structurally
    /// instead of through equality clauses).
    frame0_aliases: std::collections::HashMap<usize, SignalId>,
}

/// Error returned when a constraint refers to a signal of the wrong shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnrollError {
    /// A single-bit signal was required.
    NotABit {
        /// The offending signal.
        signal: SignalId,
        /// Its actual width.
        width: u32,
    },
    /// Two signals that must have equal widths do not.
    WidthMismatch {
        /// Left signal width.
        left: u32,
        /// Right signal width.
        right: u32,
    },
    /// The requested frame has not been built yet.
    FrameOutOfRange {
        /// Requested frame.
        frame: usize,
        /// Number of frames built.
        built: usize,
    },
}

impl std::fmt::Display for UnrollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnrollError::NotABit { signal, width } => {
                write!(f, "signal {signal} is {width} bits wide, expected a single bit")
            }
            UnrollError::WidthMismatch { left, right } => {
                write!(f, "width mismatch between constrained signals: {left} vs {right}")
            }
            UnrollError::FrameOutOfRange { frame, built } => {
                write!(f, "frame {frame} not built yet (only {built} frames exist)")
            }
        }
    }
}

impl std::error::Error for UnrollError {}

impl<'n> Unrolling<'n> {
    /// Creates an unrolling with frame 0 built.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::validate`].
    pub fn new(netlist: &'n Netlist, options: UnrollOptions) -> Self {
        Self::with_frame0_aliases(netlist, options, &[])
    }

    /// Creates an unrolling in which, for every `(register, source)` pair in
    /// `aliases`, the frame-0 value of `register` reuses the literals of
    /// `source` (both must be register-value signals of equal width).
    ///
    /// This expresses "these two registers start out equal" *structurally*,
    /// which — combined with the gate-level structural hashing — lets the two
    /// halves of a miter collapse onto shared variables wherever they have
    /// not yet diverged. The UPEC checks use it for the `micro_soc_state1 =
    /// micro_soc_state2` assumption of the paper's Fig. 4.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is invalid or an alias pair has mismatched
    /// widths or refers to non-register signals.
    pub fn with_frame0_aliases(
        netlist: &'n Netlist,
        options: UnrollOptions,
        aliases: &[(SignalId, SignalId)],
    ) -> Self {
        netlist
            .validate()
            .expect("netlist must be valid before unrolling");
        let mut frame0_aliases = std::collections::HashMap::new();
        for &(register, source) in aliases {
            assert!(
                netlist.node(register).is_register() && netlist.node(source).is_register(),
                "frame-0 aliases must pair register signals"
            );
            assert_eq!(
                netlist.width(register),
                netlist.width(source),
                "frame-0 alias width mismatch"
            );
            assert!(
                source.index() < register.index(),
                "the alias source must be created before the aliased register"
            );
            frame0_aliases.insert(register.index(), source);
        }
        let mut gates = GateBuilder::new();
        if let Some(limit) = options.conflict_limit {
            gates.solver_mut().set_conflict_limit(Some(limit));
        }
        let mut unrolling = Self {
            netlist,
            gates,
            options,
            frames: Vec::new(),
            frame0_aliases,
        };
        unrolling.build_frame();
        unrolling
    }

    /// The unrolled netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Number of frames built so far (at least 1).
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Number of CNF variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.gates.solver().num_vars()
    }

    /// Number of problem clauses generated so far.
    pub fn num_clauses(&self) -> usize {
        self.gates.solver().num_clauses()
    }

    /// Ensures frames `0..=k` exist.
    pub fn extend_to(&mut self, k: usize) {
        while self.frames.len() <= k {
            self.build_frame();
        }
    }

    fn build_frame(&mut self) {
        let t = self.frames.len();
        let mut frame: Vec<Vec<Lit>> = Vec::with_capacity(self.netlist.len());
        for id in self.netlist.signals() {
            let lits = self.encode_node(t, id, &frame);
            frame.push(lits);
        }
        self.frames.push(frame);
    }

    fn fresh_word(&mut self, width: u32) -> Vec<Lit> {
        (0..width).map(|_| self.gates.fresh()).collect()
    }

    fn const_word(&mut self, value: BitVec) -> Vec<Lit> {
        (0..value.width())
            .map(|i| self.gates.constant(value.get_bit(i)))
            .collect()
    }

    fn encode_node(&mut self, t: usize, id: SignalId, frame: &[Vec<Lit>]) -> Vec<Lit> {
        match self.netlist.node(id) {
            Node::Input { width, .. } => self.fresh_word(*width),
            Node::Const(v) => self.const_word(*v),
            Node::Register { register, width, .. } => {
                let info = &self.netlist.registers()[register.index()];
                if t == 0 {
                    if let Some(&source) = self.frame0_aliases.get(&id.index()) {
                        return frame[source.index()].clone();
                    }
                    match (self.options.use_initial_values, info.init) {
                        (true, Some(init)) => self.const_word(init),
                        _ => self.fresh_word(*width),
                    }
                } else {
                    // The register's value in frame t is its next-state
                    // expression evaluated in frame t-1.
                    let next = info
                        .next
                        .expect("validated netlists give every register a next-state");
                    self.frames[t - 1][next.index()].clone()
                }
            }
            Node::Unary { op, a, .. } => {
                let a = frame[a.index()].clone();
                self.encode_unary(*op, &a)
            }
            Node::Binary { op, a, b, .. } => {
                let a = frame[a.index()].clone();
                let b = frame[b.index()].clone();
                self.encode_binary(*op, &a, &b)
            }
            Node::Mux {
                cond, then_, else_, ..
            } => {
                let c = frame[cond.index()][0];
                let t_lits = frame[then_.index()].clone();
                let e_lits = frame[else_.index()].clone();
                t_lits
                    .iter()
                    .zip(&e_lits)
                    .map(|(&tl, &el)| self.gates.mux(c, tl, el))
                    .collect()
            }
            Node::Slice { a, hi, lo } => {
                let a = &frame[a.index()];
                a[*lo as usize..=*hi as usize].to_vec()
            }
            Node::Concat { hi, lo, .. } => {
                let mut lits = frame[lo.index()].clone();
                lits.extend_from_slice(&frame[hi.index()]);
                lits
            }
        }
    }

    fn encode_unary(&mut self, op: UnaryOp, a: &[Lit]) -> Vec<Lit> {
        match op {
            UnaryOp::Not => a.iter().map(|&l| !l).collect(),
            UnaryOp::Neg => {
                // -a = ~a + 1 via a ripple-carry increment.
                let inverted: Vec<Lit> = a.iter().map(|&l| !l).collect();
                let mut carry = self.gates.true_lit();
                let mut out = Vec::with_capacity(a.len());
                for &bit in &inverted {
                    let (sum, c) = self.gates.full_adder(bit, self.gates.false_lit(), carry);
                    out.push(sum);
                    carry = c;
                }
                out
            }
            UnaryOp::ReduceOr => vec![self.gates.or_many(a)],
            UnaryOp::ReduceAnd => vec![self.gates.and_many(a)],
            UnaryOp::ReduceXor => {
                let mut acc = self.gates.false_lit();
                for &l in a {
                    acc = self.gates.xor(acc, l);
                }
                vec![acc]
            }
        }
    }

    fn ripple_add(&mut self, a: &[Lit], b: &[Lit], carry_in: Lit) -> (Vec<Lit>, Lit) {
        let mut carry = carry_in;
        let mut out = Vec::with_capacity(a.len());
        for (&ai, &bi) in a.iter().zip(b) {
            let (sum, c) = self.gates.full_adder(ai, bi, carry);
            out.push(sum);
            carry = c;
        }
        (out, carry)
    }

    fn encode_unsigned_less_than(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // a < b  iff  the subtraction a - b = a + ~b + 1 produces no carry out.
        let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
        let (_, carry) = self.ripple_add(a, &nb, self.gates.true_lit());
        !carry
    }

    fn encode_binary(&mut self, op: BinaryOp, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        match op {
            BinaryOp::And => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.gates.and(x, y))
                .collect(),
            BinaryOp::Or => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.gates.or(x, y))
                .collect(),
            BinaryOp::Xor => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.gates.xor(x, y))
                .collect(),
            BinaryOp::Add => {
                let (sum, _) = self.ripple_add(a, b, self.gates.false_lit());
                sum
            }
            BinaryOp::Sub => {
                let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
                let (diff, _) = self.ripple_add(a, &nb, self.gates.true_lit());
                diff
            }
            BinaryOp::Eq => {
                let bits: Vec<Lit> = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| self.gates.xnor(x, y))
                    .collect();
                vec![self.gates.and_many(&bits)]
            }
            BinaryOp::Ne => {
                let bits: Vec<Lit> = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| self.gates.xor(x, y))
                    .collect();
                vec![self.gates.or_many(&bits)]
            }
            BinaryOp::Ult => vec![self.encode_unsigned_less_than(a, b)],
            BinaryOp::Ule => {
                let gt = self.encode_unsigned_less_than(b, a);
                vec![!gt]
            }
            BinaryOp::Slt => {
                let sa = *a.last().expect("slt operand is at least one bit");
                let sb = *b.last().expect("slt operand is at least one bit");
                let ult = self.encode_unsigned_less_than(a, b);
                // If the sign bits differ, a < b iff a is negative; otherwise
                // the unsigned comparison gives the right answer.
                let signs_differ = self.gates.xor(sa, sb);
                vec![self.gates.mux(signs_differ, sa, ult)]
            }
            BinaryOp::Shl => self.encode_shift(a, b, true),
            BinaryOp::Shr => self.encode_shift(a, b, false),
        }
    }

    fn encode_shift(&mut self, a: &[Lit], amount: &[Lit], left: bool) -> Vec<Lit> {
        let width = a.len();
        let mut current = a.to_vec();
        let mut overflow = self.gates.false_lit();
        for (i, &amount_bit) in amount.iter().enumerate() {
            let shift = 1usize << i.min(63);
            if shift >= width {
                overflow = self.gates.or(overflow, amount_bit);
                continue;
            }
            let shifted: Vec<Lit> = (0..width)
                .map(|bit| {
                    let source = if left {
                        bit.checked_sub(shift)
                    } else {
                        let s = bit + shift;
                        (s < width).then_some(s)
                    };
                    match source {
                        Some(s) => current[s],
                        None => self.gates.false_lit(),
                    }
                })
                .collect();
            current = current
                .iter()
                .zip(&shifted)
                .map(|(&keep, &moved)| self.gates.mux(amount_bit, moved, keep))
                .collect();
        }
        // Shift amounts >= width produce zero.
        current
            .iter()
            .map(|&bit| self.gates.mux(overflow, self.gates.false_lit(), bit))
            .collect()
    }

    // ------------------------------------------------------------------
    // Constraints, queries and model extraction
    // ------------------------------------------------------------------

    fn check_frame(&self, frame: usize) -> Result<(), UnrollError> {
        if frame >= self.frames.len() {
            Err(UnrollError::FrameOutOfRange {
                frame,
                built: self.frames.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Literals of a signal in a frame (LSB first).
    ///
    /// # Errors
    ///
    /// Returns [`UnrollError::FrameOutOfRange`] if the frame is not built.
    pub fn lits(&self, frame: usize, signal: SignalId) -> Result<&[Lit], UnrollError> {
        self.check_frame(frame)?;
        Ok(&self.frames[frame][signal.index()])
    }

    /// Literal of a single-bit signal in a frame.
    ///
    /// # Errors
    ///
    /// Returns an error if the signal is wider than one bit or the frame is
    /// not built.
    pub fn bit_lit(&self, frame: usize, signal: SignalId) -> Result<Lit, UnrollError> {
        let lits = self.lits(frame, signal)?;
        if lits.len() != 1 {
            return Err(UnrollError::NotABit {
                signal,
                width: lits.len() as u32,
            });
        }
        Ok(lits[0])
    }

    /// Adds a hard constraint that a single-bit signal is true in a frame.
    ///
    /// # Errors
    ///
    /// Returns an error if the signal is not a single bit or the frame is not
    /// built.
    pub fn assume_signal_true(&mut self, frame: usize, signal: SignalId) -> Result<(), UnrollError> {
        let lit = self.bit_lit(frame, signal)?;
        self.gates.assert_true(lit);
        Ok(())
    }

    /// Adds a hard constraint that a single-bit signal is false in a frame.
    ///
    /// # Errors
    ///
    /// Returns an error if the signal is not a single bit or the frame is not
    /// built.
    pub fn assume_signal_false(&mut self, frame: usize, signal: SignalId) -> Result<(), UnrollError> {
        let lit = self.bit_lit(frame, signal)?;
        self.gates.assert_true(!lit);
        Ok(())
    }

    /// Adds a hard constraint that two equally wide signals are equal in a
    /// frame.
    ///
    /// # Errors
    ///
    /// Returns an error on width mismatch or unbuilt frame.
    pub fn assume_signals_equal(
        &mut self,
        frame: usize,
        a: SignalId,
        b: SignalId,
    ) -> Result<(), UnrollError> {
        self.check_frame(frame)?;
        let a_lits = self.frames[frame][a.index()].clone();
        let b_lits = self.frames[frame][b.index()].clone();
        if a_lits.len() != b_lits.len() {
            return Err(UnrollError::WidthMismatch {
                left: a_lits.len() as u32,
                right: b_lits.len() as u32,
            });
        }
        for (x, y) in a_lits.into_iter().zip(b_lits) {
            self.gates.assert_equal(x, y);
        }
        Ok(())
    }

    /// Adds a hard constraint that a signal holds a constant value in a frame.
    ///
    /// # Errors
    ///
    /// Returns an error if the frame is not built.
    pub fn assume_signal_equals_const(
        &mut self,
        frame: usize,
        signal: SignalId,
        value: u64,
    ) -> Result<(), UnrollError> {
        self.check_frame(frame)?;
        let lits = self.frames[frame][signal.index()].clone();
        let value = BitVec::new(value, lits.len() as u32);
        for (i, lit) in lits.into_iter().enumerate() {
            if value.get_bit(i as u32) {
                self.gates.assert_true(lit);
            } else {
                self.gates.assert_true(!lit);
            }
        }
        Ok(())
    }

    /// Builds (without asserting) a literal that is true iff two signals are
    /// equal in a frame.
    ///
    /// # Errors
    ///
    /// Returns an error on width mismatch or unbuilt frame.
    pub fn equality_lit(
        &mut self,
        frame: usize,
        a: SignalId,
        b: SignalId,
    ) -> Result<Lit, UnrollError> {
        self.check_frame(frame)?;
        let a_lits = self.frames[frame][a.index()].clone();
        let b_lits = self.frames[frame][b.index()].clone();
        if a_lits.len() != b_lits.len() {
            return Err(UnrollError::WidthMismatch {
                left: a_lits.len() as u32,
                right: b_lits.len() as u32,
            });
        }
        let bits: Vec<Lit> = a_lits
            .into_iter()
            .zip(b_lits)
            .map(|(x, y)| self.gates.xnor(x, y))
            .collect();
        Ok(self.gates.and_many(&bits))
    }

    /// Adds an arbitrary clause over previously obtained literals.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        self.gates.add_clause(lits);
    }

    /// Allocates a fresh free literal (useful for selector/relaxation
    /// variables in iterative flows).
    pub fn fresh_lit(&mut self) -> Lit {
        self.gates.fresh()
    }

    /// Runs the SAT solver under the given assumption literals.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SatResult {
        self.gates.solver_mut().solve_with_assumptions(assumptions)
    }

    /// Conflict statistics of the underlying solver.
    pub fn solver_stats(&self) -> sat::SolverStats {
        self.gates.solver().stats()
    }

    /// Reads the value of a signal in a frame from a model.
    ///
    /// # Errors
    ///
    /// Returns an error if the frame is not built.
    pub fn value_in_model(
        &self,
        model: &Model,
        frame: usize,
        signal: SignalId,
    ) -> Result<BitVec, UnrollError> {
        self.check_frame(frame)?;
        let lits = &self.frames[frame][signal.index()];
        let mut v = BitVec::zero(lits.len() as u32);
        for (i, &lit) in lits.iter().enumerate() {
            v = v.with_bit(i as u32, model.lit_is_true(lit));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Builds a small combinational netlist exercising every operator, then
    /// cross-checks the bit-blasted encoding against the word-level
    /// simulator semantics for random inputs.
    #[test]
    fn bitblasting_matches_word_level_semantics() {
        let width = 6u32;
        let mut n = Netlist::new("ops");
        let a = n.input("a", width);
        let b = n.input("b", width);
        let shift_amount = n.input("sh", 3);
        let ops: Vec<(&str, SignalId)> = vec![
            ("and", n.and(a, b)),
            ("or", n.or(a, b)),
            ("xor", n.xor(a, b)),
            ("add", n.add(a, b)),
            ("sub", n.sub(a, b)),
            ("not", n.not(a)),
            ("neg", n.neg(a)),
            ("eq", n.eq(a, b)),
            ("ne", n.ne(a, b)),
            ("ult", n.ult(a, b)),
            ("ule", n.ule(a, b)),
            ("slt", n.slt(a, b)),
            ("shl", n.shl(a, shift_amount)),
            ("shr", n.shr(a, shift_amount)),
            ("redor", n.reduce_or(a)),
            ("redand", n.reduce_and(a)),
            ("redxor", n.reduce_xor(a)),
            ("slice", n.slice(a, 4, 2)),
            ("concat", n.concat(a, b)),
        ];
        let cond = n.bit(b, 0);
        let mux = n.mux(cond, a, b);
        let mut ops = ops;
        ops.push(("mux", mux));

        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..12 {
            let av = rng.gen_range(0..(1u64 << width));
            let bv = rng.gen_range(0..(1u64 << width));
            let sh = rng.gen_range(0..8u64);

            // Reference: evaluate through the word-level BitVec semantics.
            let abv = BitVec::new(av, width);
            let bbv = BitVec::new(bv, width);
            let expected: Vec<(String, BitVec)> = ops
                .iter()
                .map(|(name, _)| {
                    let value = match *name {
                        "and" => abv.and(&bbv),
                        "or" => abv.or(&bbv),
                        "xor" => abv.xor(&bbv),
                        "add" => abv.add(&bbv),
                        "sub" => abv.sub(&bbv),
                        "not" => abv.not(),
                        "neg" => abv.neg(),
                        "eq" => abv.eq_bit(&bbv),
                        "ne" => abv.eq_bit(&bbv).not(),
                        "ult" => abv.ult(&bbv),
                        "ule" => abv.ule(&bbv),
                        "slt" => abv.slt(&bbv),
                        "shl" => abv.shl(sh.min(u64::from(width)) as u32),
                        "shr" => abv.shr(sh.min(u64::from(width)) as u32),
                        "redor" => abv.reduce_or(),
                        "redand" => abv.reduce_and(),
                        "redxor" => abv.reduce_xor(),
                        "slice" => abv.slice(4, 2),
                        "concat" => abv.concat(&bbv),
                        "mux" => {
                            if bbv.get_bit(0) {
                                abv
                            } else {
                                bbv
                            }
                        }
                        other => panic!("unknown op {other}"),
                    };
                    (name.to_string(), value)
                })
                .collect();

            let mut u = Unrolling::new(&n, UnrollOptions::default());
            u.assume_signal_equals_const(0, a, av).unwrap();
            u.assume_signal_equals_const(0, b, bv).unwrap();
            u.assume_signal_equals_const(0, shift_amount, sh).unwrap();
            let result = u.solve(&[]);
            let model = result.model().expect("combinational cone is satisfiable");
            for ((name, signal), (ename, evalue)) in ops.iter().zip(&expected) {
                assert_eq!(name, ename);
                let got = u.value_in_model(model, 0, *signal).unwrap();
                assert_eq!(
                    got, *evalue,
                    "operator {name} disagrees for a={av:#x} b={bv:#x} sh={sh}"
                );
            }
        }
    }

    fn counter_netlist() -> (Netlist, rtl::RegisterHandle) {
        let mut n = Netlist::new("counter");
        let c = n.register_init("c", 4, BitVec::zero(4));
        let one = n.lit(1, 4);
        let next = n.add(c.value(), one);
        n.set_next(c, next);
        (n, c)
    }

    #[test]
    fn sequential_unrolling_from_reset_matches_counting() {
        let (n, c) = counter_netlist();
        let mut u = Unrolling::new(&n, UnrollOptions::from_reset_state());
        u.extend_to(5);
        assert_eq!(u.frame_count(), 6);
        // The counter value at frame 5 must be 5; asserting anything else is
        // unsatisfiable.
        u.assume_signal_equals_const(5, c.value(), 5).unwrap();
        assert!(u.solve(&[]).is_sat());
        u.assume_signal_equals_const(4, c.value(), 0).unwrap();
        assert!(u.solve(&[]).is_unsat());
    }

    #[test]
    fn symbolic_initial_state_allows_any_start() {
        let (n, c) = counter_netlist();
        let mut u = Unrolling::new(&n, UnrollOptions::symbolic_initial_state());
        u.extend_to(2);
        // From a symbolic initial state the counter can reach 9 at frame 2
        // (by starting at 7), which is impossible from reset.
        u.assume_signal_equals_const(2, c.value(), 9).unwrap();
        let result = u.solve(&[]);
        let model = result.model().expect("sat");
        let start = u.value_in_model(model, 0, c.value()).unwrap();
        assert_eq!(start.as_u64(), 7);
    }

    #[test]
    fn equality_lit_and_assumptions() {
        let mut n = Netlist::new("eq");
        let a = n.input("a", 4);
        let b = n.input("b", 4);
        n.output("a", a);
        let mut u = Unrolling::new(&n, UnrollOptions::default());
        let eq = u.equality_lit(0, a, b).unwrap();
        // Force inequality and equality through assumptions.
        assert!(u.solve(&[eq]).is_sat());
        assert!(u.solve(&[!eq]).is_sat());
        u.assume_signals_equal(0, a, b).unwrap();
        assert!(u.solve(&[!eq]).is_unsat());
    }

    #[test]
    fn errors_on_misuse() {
        let mut n = Netlist::new("err");
        let a = n.input("a", 4);
        let b = n.input("b", 2);
        n.output("a", a);
        let mut u = Unrolling::new(&n, UnrollOptions::default());
        assert!(matches!(
            u.bit_lit(0, a),
            Err(UnrollError::NotABit { .. })
        ));
        assert!(matches!(
            u.assume_signals_equal(0, a, b),
            Err(UnrollError::WidthMismatch { .. })
        ));
        assert!(matches!(
            u.lits(3, a),
            Err(UnrollError::FrameOutOfRange { .. })
        ));
    }

    #[test]
    fn unknown_is_reported_under_tiny_conflict_budget() {
        // A multiplier-free but non-trivial equivalence: (a + b) == (b + a)
        // is easy, so instead make the solver prove a ^ b ^ a ^ b == 0 over
        // many frames with an extremely small budget to trigger Unknown on
        // at least some runs; to stay deterministic we just check that the
        // API accepts a limit and still returns a definitive answer when the
        // limit is generous.
        let (n, c) = counter_netlist();
        let mut u = Unrolling::new(
            &n,
            UnrollOptions::from_reset_state().with_conflict_limit(Some(1_000_000)),
        );
        u.extend_to(2);
        u.assume_signal_equals_const(2, c.value(), 2).unwrap();
        assert!(u.solve(&[]).is_sat());
    }
}
