//! Criterion benchmarks: one group per table/figure of the paper's
//! evaluation, plus the ablations.
//!
//! The groups are sized for wall-clock sanity (small sample counts): they are
//! meant to track relative cost, not to be statistically tight.

use bench::{formal_config, orc_attack_program, sim_config, transient_program};
use criterion::{criterion_group, criterion_main, Criterion};
use soc::{SocSim, SocVariant};
use std::time::Duration;
use upec::{
    prove_alert_closure, run_methodology, SecretScenario, UpecChecker, UpecModel, UpecOptions,
};

/// Keeps SAT-heavy groups within a sane wall-clock budget.
fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
}

/// Table I: the methodology run on the secure design, both scenarios.
fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_methodology");
    tune(&mut group);
    for (label, scenario) in [
        ("d_cached", SecretScenario::InCache),
        ("d_not_cached", SecretScenario::NotInCache),
    ] {
        let model = UpecModel::new(&formal_config(SocVariant::Secure), scenario);
        let window = model.d_mem().min(2);
        group.bench_function(label, |b| {
            b.iter(|| run_methodology(&model, UpecOptions::window(window)))
        });
    }
    group.finish();
}

/// Table I (second half): the inductive closure proof.
fn bench_table1_induction(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_inductive_proof");
    tune(&mut group);
    let model = UpecModel::new(&formal_config(SocVariant::Secure), SecretScenario::InCache);
    let report = run_methodology(&model, UpecOptions::window(2));
    group.bench_function("closure", |b| {
        b.iter(|| prove_alert_closure(&model, &report.p_alert_registers, None))
    });
    group.finish();
}

/// Table II: first P-alert and first L-alert for each vulnerable variant.
fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_vulnerable_variants");
    tune(&mut group);
    for variant in [SocVariant::Orc, SocVariant::MeltdownStyle] {
        let model = UpecModel::new(&formal_config(variant), SecretScenario::InCache);
        let checker = UpecChecker::new();
        group.bench_function(format!("{}_p_alert", variant.name()), |b| {
            b.iter(|| checker.check_full(&model, UpecOptions::window(2)))
        });
        group.bench_function(format!("{}_l_alert", variant.name()), |b| {
            b.iter(|| checker.check_architectural(&model, UpecOptions::window(3)))
        });
    }
    group.finish();
}

/// Fig. 1: the transient-sequence cache-footprint simulation.
fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_cache_footprint");
    tune(&mut group);
    for variant in [SocVariant::MeltdownStyle, SocVariant::Secure] {
        let config = sim_config(variant);
        group.bench_function(variant.name(), |b| {
            b.iter(|| {
                let mut sim = SocSim::new(config.clone(), transient_program(&config));
                sim.protect_secret_region();
                sim.preload_secret_in_cache(0x184);
                sim.store_word(0x184, 0x1234_5678);
                sim.run(60);
                sim.register("dcache.valid1")
            })
        });
    }
    group.finish();
}

/// Fig. 2: one full Orc attack sweep over all cache-index guesses.
fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_orc_attack_sweep");
    tune(&mut group);
    for variant in [SocVariant::Orc, SocVariant::Secure] {
        let config = sim_config(variant);
        group.bench_function(variant.name(), |b| {
            b.iter(|| {
                let mut timings = Vec::new();
                for guess in 0..config.cache_lines {
                    let mut sim = SocSim::new(config.clone(), orc_attack_program(&config, guess));
                    sim.protect_secret_region();
                    sim.preload_secret_in_cache(0x184);
                    timings.push(sim.run_until_trap(300).expect("traps"));
                }
                timings
            })
        });
    }
    group.finish();
}

/// Ablation: symbolic initial state vs reset-state BMC.
fn bench_ablation_symbolic_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_symbolic_init");
    tune(&mut group);
    let model = UpecModel::new(&formal_config(SocVariant::Orc), SecretScenario::InCache);
    let checker = UpecChecker::new();
    group.bench_function("ipc_symbolic", |b| {
        b.iter(|| checker.check_architectural(&model, UpecOptions::window(3)))
    });
    group.bench_function("bmc_from_reset", |b| {
        b.iter(|| checker.check_architectural(&model, UpecOptions::window(3).from_reset()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table1_induction,
    bench_table2,
    bench_fig1,
    bench_fig2,
    bench_ablation_symbolic_init
);
criterion_main!(benches);
