//! Phase-attributed runtime report over the scenario registry, driven by
//! the `obs` telemetry layer.
//!
//! For every scenario the UPEC query is run twice: once *untraced* (no sink
//! installed — the production configuration) and once *traced* into an
//! in-memory sink. The traced run's span tree is folded into the four
//! phases that matter for solver work — Tseitin **encode**, CNF
//! **simplify**, CDCL **search**, and the residual **other** (alert
//! extraction, bookkeeping) — and the report asserts that
//!
//! * the traced verdict equals the untraced verdict (tracing is inert),
//! * the phase sum (= the `upec.check_bound` root span) lands within 10%
//!   of the independently measured `UpecStats.runtime` of the same run.
//!
//! Results are printed as a table and written to `BENCH_trace.json` so the
//! bench trajectory can track *where* solver time goes, not just how much
//! of it there is. See `docs/observability.md` for the span taxonomy and
//! how to read the output.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin trace_report              # registry at k=2
//! cargo run --release -p bench --bin trace_report -- orc meltdown
//! cargo run --release -p bench --bin trace_report -- --k 3 orc
//! cargo run --release -p bench --bin trace_report -- --jsonl /tmp/trace.jsonl orc
//! cargo run --release -p bench --bin trace_report -- --smoke  # CI smoke gate
//! ```
//!
//! `--smoke` is the fast CI gate wired into `scripts/verify.sh`: one cheap
//! scenario at k=1, traced through the real JSONL file sink; every emitted
//! line must parse as JSON, the root span must carry the engine's verdict,
//! and the phase sum must be sane. Exit code 1 on any failure, and no
//! tracked JSON is written.

use bench::json::{validate, JsonObject};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;
use upec::engine::IncrementalSession;
use upec::scenarios::{self, ScenarioSpec};
use upec::{UpecOptions, UpecOutcome, UpecStats};

/// The scenario `--smoke` runs: cheap at k=1 and alerting (so the verdict
/// attribute is exercised on the SAT path too).
const SMOKE_ID: &str = "meltdown";

/// Phase attribution of one traced query, in seconds.
struct Phases {
    total: f64,
    encode: f64,
    simplify: f64,
    search: f64,
    other: f64,
    /// Setup cost outside the query: transition compilation (incl. COI).
    compile: f64,
}

/// One scenario's full measurement.
struct Row {
    verdict: &'static str,
    stats: UpecStats,
    phases: Phases,
    untraced_seconds: f64,
}

fn run_query(spec: &ScenarioSpec, k: usize) -> (UpecOutcome, f64) {
    let model = spec.build_model();
    let commitment = spec.commitment_set(&model);
    let mut session = IncrementalSession::with_options(&model, UpecOptions::window(k));
    let start = Instant::now();
    let outcome = session.check_bound(k, &commitment);
    (outcome, start.elapsed().as_secs_f64())
}

/// Folds a trace into per-phase seconds. Span names sum independently —
/// `sat.search` spans never nest in each other (the trial solve's search
/// and the final search are siblings), and `sat.simplify` runs between
/// them, so the three named sums are disjoint slices of the root span.
fn attribute_phases(spans: &[obs::SpanRecord]) -> Phases {
    // Sum in integer nanoseconds: an empty f64 sum is -0.0 (Rust folds from
    // -0.0), which would leak a `-0.000` into the report for skipped phases.
    let sum = |name: &str| -> f64 {
        spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration_ns)
            .sum::<u64>() as f64
            / 1e9
    };
    let total = sum("upec.check_bound");
    let encode = sum("bmc.encode");
    let simplify = sum("sat.simplify");
    let search = sum("sat.search");
    Phases {
        total,
        encode,
        simplify,
        search,
        other: (total - encode - simplify - search).max(0.0),
        compile: sum("bmc.compile"),
    }
}

fn root_span(spans: &[obs::SpanRecord]) -> &obs::SpanRecord {
    spans
        .iter()
        .find(|s| s.name == "upec.check_bound" && s.parent.is_none())
        .expect("trace contains the query root span")
}

fn str_attr(span: &obs::SpanRecord, key: &str) -> Option<String> {
    span.attrs.iter().find_map(|(k, v)| match v {
        obs::AttrValue::Str(s) if *k == key => Some(s.clone()),
        _ => None,
    })
}

fn measure(spec: &ScenarioSpec, k: usize) -> (Row, Vec<obs::Event>) {
    // Untraced first: the baseline the <2% overhead acceptance refers to.
    let (untraced_outcome, untraced_seconds) = run_query(spec, k);

    let sink = Arc::new(obs::MemorySink::new());
    obs::install(sink.clone());
    let (outcome, _) = run_query(spec, k);
    obs::uninstall();
    let events = sink.events();
    let spans: Vec<obs::SpanRecord> = sink.spans();

    let verdict = outcome.verdict_name();
    assert_eq!(
        verdict,
        untraced_outcome.verdict_name(),
        "{}: tracing changed the verdict",
        spec.id
    );
    let root = root_span(&spans);
    assert_eq!(
        str_attr(root, "verdict").as_deref(),
        Some(verdict),
        "{}: root span verdict does not match the engine verdict",
        spec.id
    );
    let phases = attribute_phases(&spans);
    let row = Row {
        verdict,
        stats: outcome.stats(),
        phases,
        untraced_seconds,
    };
    (row, events)
}

/// The 10% phase-sum acceptance: the root span and the engine's own
/// `runtime` measure the same interval through two independent clocks, and
/// the phase sum is the root span by construction (`other` is the residual).
fn check_phase_sum(id: &str, row: &Row) -> Result<(), String> {
    let runtime = row.stats.runtime.as_secs_f64();
    let sum = row.phases.encode + row.phases.simplify + row.phases.search + row.phases.other;
    let tolerance = (runtime * 0.10).max(0.005); // floor for sub-ms queries
    if (sum - runtime).abs() > tolerance {
        return Err(format!(
            "{id}: phase sum {sum:.4}s deviates from query runtime {runtime:.4}s by more than 10%"
        ));
    }
    let sliced = row.phases.encode + row.phases.simplify + row.phases.search;
    if sliced > row.phases.total * 1.001 + 0.001 {
        return Err(format!(
            "{id}: named phases {sliced:.4}s exceed the root span {:.4}s",
            row.phases.total
        ));
    }
    Ok(())
}

fn json_entry(id: &str, k: usize, row: &Row) -> String {
    let entry = JsonObject::new()
        .field_str("id", id)
        .field_usize("k", k)
        .field_str("verdict", row.verdict)
        .field_f64("total_seconds", row.phases.total, 3)
        .field_f64("encode_seconds", row.phases.encode, 3)
        .field_f64("simplify_seconds", row.phases.simplify, 3)
        .field_f64("search_seconds", row.phases.search, 3)
        .field_f64("other_seconds", row.phases.other, 3)
        .field_f64("compile_seconds", row.phases.compile, 3)
        .field_f64("untraced_seconds", row.untraced_seconds, 3)
        .field_u64("conflicts", row.stats.conflicts)
        .field_u64("propagations", row.stats.propagations)
        .field_u64("restarts", row.stats.restarts)
        .field_u64("arena_collections", row.stats.arena_collections)
        .finish();
    format!("    {entry}")
}

fn write_jsonl(path: &str, events: &[obs::Event]) {
    let mut file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    for event in events {
        let line = match event {
            obs::Event::Span(s) => obs::span_to_jsonl(s),
            obs::Event::Counter(c) => obs::counter_to_jsonl(c),
        };
        writeln!(file, "{line}").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    }
}

/// CI smoke gate: one scenario at k=1 through the real JSONL file sink.
fn smoke() {
    let spec = scenarios::by_id(SMOKE_ID).expect("smoke scenario is registered");
    let k = 1;
    let path = std::env::temp_dir().join("upec_trace_smoke.jsonl");

    let sink = Arc::new(obs::JsonlSink::create(&path).expect("create smoke trace file"));
    obs::install(sink);
    let (outcome, _) = run_query(&spec, k);
    obs::uninstall(); // flushes
    let verdict = outcome.verdict_name();

    let contents = std::fs::read_to_string(&path).expect("read smoke trace back");
    let mut lines = 0usize;
    let mut root_ok = false;
    for (i, line) in contents.lines().enumerate() {
        if let Err(e) = validate(line) {
            eprintln!("smoke: line {} is not valid JSON: {e}\n  {line}", i + 1);
            std::process::exit(1);
        }
        lines += 1;
        if line.contains("\"name\":\"upec.check_bound\"")
            && line.contains(&format!("\"verdict\":\"{verdict}\""))
        {
            root_ok = true;
        }
    }
    if lines == 0 {
        eprintln!("smoke: trace file is empty");
        std::process::exit(1);
    }
    if !root_ok {
        eprintln!("smoke: no root span carrying the engine verdict `{verdict}`");
        std::process::exit(1);
    }

    // Semantic pass through the in-memory sink: phase-sum sanity.
    let (row, _) = measure(&spec, k);
    if let Err(e) = check_phase_sum(spec.id, &row) {
        eprintln!("smoke: {e}");
        std::process::exit(1);
    }
    println!(
        "smoke: {} at k={k} traced {lines} JSONL events, verdict `{verdict}`, phase sum within \
         tolerance",
        spec.id
    );
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut ids: Vec<String> = Vec::new();
    let mut k_override: Option<usize> = None;
    let mut out_path = "BENCH_trace.json".to_string();
    let mut jsonl_path: Option<String> = None;
    let mut run_smoke = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--k" => {
                let parsed = args.next().and_then(|v| v.parse().ok());
                let Some(k) = parsed else {
                    eprintln!("--k needs a numeric value");
                    std::process::exit(2);
                };
                k_override = Some(k);
            }
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                };
                out_path = path;
            }
            "--jsonl" => {
                let Some(path) = args.next() else {
                    eprintln!("--jsonl needs a path");
                    std::process::exit(2);
                };
                jsonl_path = Some(path);
            }
            "--smoke" => run_smoke = true,
            id => ids.push(id.to_string()),
        }
    }
    if run_smoke {
        smoke();
        return;
    }
    if ids.is_empty() {
        ids = scenarios::all().iter().map(|s| s.id.to_string()).collect();
    }
    let k = k_override.unwrap_or(2);

    println!(
        "{:<18} {:>2}  {:>8} {:>8} {:>8} {:>8} {:>8}  {:>8}  verdict",
        "scenario", "k", "total", "encode", "simplif", "search", "other", "untraced"
    );
    let mut entries = Vec::new();
    let mut all_events: Vec<obs::Event> = Vec::new();
    let mut agg = Phases {
        total: 0.0,
        encode: 0.0,
        simplify: 0.0,
        search: 0.0,
        other: 0.0,
        compile: 0.0,
    };
    let mut untraced_total = 0.0f64;
    let mut failures = Vec::new();
    for id in &ids {
        let spec = scenarios::by_id(id).unwrap_or_else(|| {
            eprintln!("unknown scenario `{id}`; known ids:");
            for s in scenarios::all() {
                eprintln!("  {}", s.id);
            }
            std::process::exit(2);
        });
        let (row, events) = measure(&spec, k);
        if let Err(e) = check_phase_sum(spec.id, &row) {
            failures.push(e);
        }
        println!(
            "{:<18} {:>2}  {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s  {:>7.2}s  {}",
            spec.id,
            k,
            row.phases.total,
            row.phases.encode,
            row.phases.simplify,
            row.phases.search,
            row.phases.other,
            row.untraced_seconds,
            row.verdict,
        );
        agg.total += row.phases.total;
        agg.encode += row.phases.encode;
        agg.simplify += row.phases.simplify;
        agg.search += row.phases.search;
        agg.other += row.phases.other;
        agg.compile += row.phases.compile;
        untraced_total += row.untraced_seconds;
        entries.push(json_entry(spec.id, k, &row));
        if jsonl_path.is_some() {
            all_events.extend(events);
        }
    }

    let pct = |part: f64| {
        if agg.total > 0.0 {
            100.0 * part / agg.total
        } else {
            0.0
        }
    };
    let overhead_percent = if untraced_total > 0.0 {
        100.0 * (agg.total - untraced_total) / untraced_total
    } else {
        0.0
    };
    println!(
        "\naggregate {:.2}s: encode {:.2}s ({:.1}%), simplify {:.2}s ({:.1}%), search {:.2}s \
         ({:.1}%), other {:.2}s ({:.1}%); untraced {:.2}s (tracing overhead {:+.1}%)",
        agg.total,
        agg.encode,
        pct(agg.encode),
        agg.simplify,
        pct(agg.simplify),
        agg.search,
        pct(agg.search),
        agg.other,
        pct(agg.other),
        untraced_total,
        overhead_percent,
    );

    let aggregate = JsonObject::new()
        .field_f64("total_seconds", agg.total, 3)
        .field_f64("encode_seconds", agg.encode, 3)
        .field_f64("simplify_seconds", agg.simplify, 3)
        .field_f64("search_seconds", agg.search, 3)
        .field_f64("other_seconds", agg.other, 3)
        .field_f64("compile_seconds", agg.compile, 3)
        .field_f64("untraced_seconds", untraced_total, 3)
        .field_f64("tracing_overhead_percent", overhead_percent, 1)
        .finish();
    let json = format!(
        "{{\n  \"bench\": \"trace_report\",\n  \"unit\": \"seconds per phase (encode/simplify/\
         search/other of the traced query)\",\n  \"k\": {k},\n  \"aggregate\": {aggregate},\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");
    if let Some(path) = jsonl_path {
        write_jsonl(&path, &all_events);
        println!("wrote {path} ({} events)", all_events.len());
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("PHASE SUM FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
