//! DRAT-style proof logging and an independent proof checker.
//!
//! The solver (see [`Solver::start_proof_log`](crate::Solver::start_proof_log))
//! can record every clause addition and deletion it performs — learned clauses,
//! probing units, subsumption/strengthening rewrites, variable-elimination
//! resolvents, and database reductions — into a [`ProofLog`]. The log is a
//! checkable artifact: [`check`] replays it with an independent unit-propagation
//! engine and verifies that every added lemma is a *reverse unit propagation*
//! (RUP) consequence of the clauses that precede it, and that the log ends in a
//! root-level conflict (a refutation). [`trim`] additionally tracks which
//! lemmas the refutation actually depends on and drops the rest.
//!
//! The checker shares no search code with the solver: it has its own watched
//! literal scheme, its own trail, and no heuristics, so a bug in the solver's
//! propagation, clause GC, or inprocessing cannot also hide in the checker.
//!
//! # Trust story
//!
//! An `Unsat` answer from [`Solver::solve_with_assumptions`](crate::Solver::solve_with_assumptions)
//! is certified when `check(&log, &assumptions)` succeeds: the log's axiom
//! events reproduce the clause database the query ran against, every lemma is
//! RUP with respect to the preceding events, and unit propagation from the
//! assumption literals derives a conflict. Deletion events are advisory — the
//! checker may ignore any of them without losing soundness, because keeping
//! extra implied clauses only strengthens unit propagation.
//!
//! # Examples
//!
//! ```
//! use sat::{Solver, SatResult};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var().positive();
//! let y = solver.new_var().positive();
//! solver.start_proof_log();
//! solver.add_clause([x, y]);
//! solver.add_clause([x, !y]);
//! solver.add_clause([!x, y]);
//! solver.add_clause([!x, !y]);
//! assert!(matches!(solver.solve(), SatResult::Unsat));
//! let log = solver.take_proof_log().unwrap();
//! let report = sat::drat::check(&log, &[]).unwrap();
//! assert_eq!(report.axioms, 4);
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::lit::{LBool, Lit};

/// Kind of a single proof-log event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofStep {
    /// An original problem clause, part of the formula being refuted.
    Axiom,
    /// A derived lemma; must be a RUP consequence of the preceding events.
    Add,
    /// Deletion of a previously present clause (advisory; may be ignored).
    Delete,
}

/// One event header in the flat event stream.
#[derive(Debug, Clone, Copy)]
struct EventHeader {
    step: ProofStep,
    start: u32,
    len: u32,
}

/// A DRAT-style proof log: a flat sequence of clause addition/deletion events.
///
/// Axiom events reproduce the clause database at the time logging started plus
/// every clause added afterwards through [`Solver::add_clause`](crate::Solver::add_clause);
/// `Add` events record derived lemmas (learned clauses, probing units,
/// strengthenings, elimination resolvents); `Delete` events record clauses the
/// solver dropped. Storage is flat (one literal pool plus fixed-size headers)
/// so cloning and serializing certificates stays cheap.
#[derive(Debug, Clone, Default)]
pub struct ProofLog {
    lits: Vec<Lit>,
    events: Vec<EventHeader>,
    axioms: usize,
    lemmas: usize,
    deletions: usize,
}

impl ProofLog {
    /// Creates an empty proof log.
    pub fn new() -> Self {
        ProofLog::default()
    }

    /// Appends one event to the log.
    pub fn push(&mut self, step: ProofStep, lits: &[Lit]) {
        let start = u32::try_from(self.lits.len()).expect("proof log literal pool overflow");
        let len = u32::try_from(lits.len()).expect("proof log clause too long");
        self.lits.extend_from_slice(lits);
        self.events.push(EventHeader { step, start, len });
        match step {
            ProofStep::Axiom => self.axioms += 1,
            ProofStep::Add => self.lemmas += 1,
            ProofStep::Delete => self.deletions += 1,
        }
    }

    /// Total number of events in the log.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of axiom (original clause) events.
    pub fn num_axioms(&self) -> usize {
        self.axioms
    }

    /// Number of derived-lemma events.
    pub fn num_lemmas(&self) -> usize {
        self.lemmas
    }

    /// Number of deletion events.
    pub fn num_deletions(&self) -> usize {
        self.deletions
    }

    /// Total number of literals stored across all events.
    pub fn num_lits(&self) -> usize {
        self.lits.len()
    }

    /// Approximate in-memory size of the log in bytes.
    pub fn size_bytes(&self) -> usize {
        self.lits.len() * std::mem::size_of::<Lit>()
            + self.events.len() * std::mem::size_of::<EventHeader>()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The literals of event `i`.
    fn event_lits(&self, i: usize) -> &[Lit] {
        let h = self.events[i];
        &self.lits[h.start as usize..(h.start + h.len) as usize]
    }

    /// Iterates over events as `(step, literals)` pairs in log order.
    pub fn events(&self) -> impl Iterator<Item = (ProofStep, &[Lit])> + '_ {
        self.events.iter().map(move |h| {
            let lits = &self.lits[h.start as usize..(h.start + h.len) as usize];
            (h.step, lits)
        })
    }

    /// Renders the axiom events as a DIMACS CNF document.
    pub fn to_dimacs(&self) -> String {
        let mut max_var = 0i64;
        for (step, lits) in self.events() {
            if step == ProofStep::Axiom {
                for l in lits {
                    max_var = max_var.max(l.to_dimacs().abs());
                }
            }
        }
        let mut out = format!("p cnf {} {}\n", max_var, self.axioms);
        for (step, lits) in self.events() {
            if step == ProofStep::Axiom {
                for l in lits {
                    out.push_str(&l.to_dimacs().to_string());
                    out.push(' ');
                }
                out.push_str("0\n");
            }
        }
        out
    }

    /// Renders the lemma and deletion events in textual DRAT format.
    pub fn to_drat(&self) -> String {
        let mut out = String::new();
        for (step, lits) in self.events() {
            match step {
                ProofStep::Axiom => continue,
                ProofStep::Add => {}
                ProofStep::Delete => out.push_str("d "),
            }
            for l in lits {
                out.push_str(&l.to_dimacs().to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }
}

/// Statistics from a successful proof check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Axiom events inserted.
    pub axioms: usize,
    /// Lemma events whose RUP check was performed.
    pub lemmas_checked: usize,
    /// Deletion events processed (matched or ignored).
    pub deletions: usize,
    /// Unit propagations performed by the checker.
    pub propagations: u64,
    /// Index of the event during which the refutation was found, or `None`
    /// when the assumption literals alone were contradictory.
    pub refutation_event: Option<usize>,
    /// Events after the refutation that were not replayed.
    pub skipped_events: usize,
}

/// Reasons a proof log can fail to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// Lemma at this event index is not a RUP consequence of the preceding
    /// events.
    NotRup {
        /// Index of the offending event in the log.
        event: usize,
    },
    /// The whole log replayed without ever reaching a root-level conflict.
    NoRefutation,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::NotRup { event } => {
                write!(f, "lemma at event {event} is not a RUP consequence")
            }
            CheckError::NoRefutation => write!(f, "proof log ends without a refutation"),
        }
    }
}

impl std::error::Error for CheckError {}

const NO_REASON: u32 = u32::MAX;
/// Clause-origin marker for assumption units (not tied to a log event).
const ASSUMPTION_EVENT: u32 = u32::MAX;

struct CClause {
    lits: Vec<Lit>,
    alive: bool,
    /// Index of the log event that introduced the clause, or
    /// [`ASSUMPTION_EVENT`] for assumption units.
    event: u32,
    used_as_reason: bool,
}

/// Outcome of inserting a clause into the checker database.
enum Insert {
    Ok,
    /// Root-level conflict: the formula so far is refuted. Carries the clause
    /// ids involved when dependency tracking is on.
    Refuted(Vec<u32>),
}

struct Checker {
    clauses: Vec<CClause>,
    watches: Vec<Vec<u32>>,
    assigns: Vec<LBool>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    qhead: usize,
    index: HashMap<u64, Vec<u32>>,
    seen: Vec<bool>,
    track_deps: bool,
    propagations: u64,
}

fn lit_value(assigns: &[LBool], l: Lit) -> LBool {
    let v = assigns[l.var().index()];
    if l.is_positive() {
        v
    } else {
        v.negate()
    }
}

fn clause_signature(sorted_codes: &[usize]) -> u64 {
    // FNV-1a over the sorted literal codes.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in sorted_codes {
        h ^= c as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn sorted_codes(lits: &[Lit]) -> Vec<usize> {
    let mut codes: Vec<usize> = lits.iter().map(|l| l.code()).collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

impl Checker {
    fn new(num_vars: usize, track_deps: bool) -> Self {
        Checker {
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * num_vars],
            assigns: vec![LBool::Undef; num_vars],
            reason: vec![NO_REASON; num_vars],
            trail: Vec::new(),
            qhead: 0,
            index: HashMap::new(),
            seen: vec![false; num_vars],
            track_deps,
            propagations: 0,
        }
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        self.assigns[l.var().index()] = LBool::from_bool(l.is_positive());
        self.reason[l.var().index()] = reason;
        self.trail.push(l);
        if reason != NO_REASON {
            self.clauses[reason as usize].used_as_reason = true;
        }
    }

    /// Propagates to fixpoint; returns the conflicting clause id if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let cid = ws[i] as usize;
                if !self.clauses[cid].alive {
                    ws.swap_remove(i);
                    continue;
                }
                if self.clauses[cid].lits[0] == false_lit {
                    self.clauses[cid].lits.swap(0, 1);
                }
                let first = self.clauses[cid].lits[0];
                if lit_value(&self.assigns, first) == LBool::True {
                    i += 1;
                    continue;
                }
                for k in 2..self.clauses[cid].lits.len() {
                    let cand = self.clauses[cid].lits[k];
                    if lit_value(&self.assigns, cand) != LBool::False {
                        self.clauses[cid].lits.swap(1, k);
                        self.watches[cand.code()].push(cid as u32);
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                if lit_value(&self.assigns, first) == LBool::False {
                    conflict = Some(cid as u32);
                    break;
                }
                self.enqueue(first, cid as u32);
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// Collects the clause ids reachable through reason chains from `seed_vars`,
    /// starting from `seed_clause` when given. Only populated under
    /// `track_deps`.
    fn collect_deps(&mut self, seed_clause: Option<u32>, seed_vars: &[Lit]) -> Vec<u32> {
        if !self.track_deps {
            return Vec::new();
        }
        let mut deps = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        if let Some(cid) = seed_clause {
            deps.push(cid);
        }
        for l in seed_vars {
            stack.push(l.var().index());
        }
        let mut visited: Vec<usize> = Vec::new();
        while let Some(v) = stack.pop() {
            if self.seen[v] {
                continue;
            }
            self.seen[v] = true;
            visited.push(v);
            let r = self.reason[v];
            if r != NO_REASON {
                deps.push(r);
                for l in &self.clauses[r as usize].lits {
                    stack.push(l.var().index());
                }
            }
        }
        for v in visited {
            self.seen[v] = false;
        }
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// Inserts a clause at root level, propagating any resulting units.
    ///
    /// `lits` must already be deduplicated and tautology-free.
    fn insert(&mut self, lits: &[Lit], event: u32) -> Insert {
        if lits
            .iter()
            .any(|&l| lit_value(&self.assigns, l) == LBool::True)
        {
            // Permanently satisfied at root; it can never propagate.
            return Insert::Ok;
        }
        let cid = u32::try_from(self.clauses.len()).expect("checker clause count overflow");
        let non_false: Vec<Lit> = lits
            .iter()
            .copied()
            .filter(|&l| lit_value(&self.assigns, l) != LBool::False)
            .collect();
        match non_false.len() {
            0 => {
                // Conflicting at root (also covers the empty clause).
                self.clauses.push(CClause {
                    lits: lits.to_vec(),
                    alive: true,
                    event,
                    used_as_reason: false,
                });
                let deps = self.collect_deps(Some(cid), lits);
                Insert::Refuted(deps)
            }
            1 => {
                let unit = non_false[0];
                self.clauses.push(CClause {
                    lits: lits.to_vec(),
                    alive: true,
                    event,
                    used_as_reason: false,
                });
                self.enqueue(unit, cid);
                match self.propagate() {
                    Some(conflict) => {
                        let seed: Vec<Lit> = self.clauses[conflict as usize].lits.clone();
                        let deps = self.collect_deps(Some(conflict), &seed);
                        Insert::Refuted(deps)
                    }
                    None => Insert::Ok,
                }
            }
            _ => {
                // Watch two non-false literals.
                let mut stored = lits.to_vec();
                let p0 = stored.iter().position(|&l| l == non_false[0]).unwrap();
                stored.swap(0, p0);
                let p1 = stored.iter().position(|&l| l == non_false[1]).unwrap();
                stored.swap(1, p1);
                let (w0, w1) = (stored[0], stored[1]);
                self.clauses.push(CClause {
                    lits: stored,
                    alive: true,
                    event,
                    used_as_reason: false,
                });
                self.watches[w0.code()].push(cid);
                self.watches[w1.code()].push(cid);
                let codes = sorted_codes(lits);
                self.index
                    .entry(clause_signature(&codes))
                    .or_default()
                    .push(cid);
                Insert::Ok
            }
        }
    }

    /// RUP check of `lits` against the current database. On success returns the
    /// clause ids used (under `track_deps`); on failure returns `None`.
    fn check_rup(&mut self, lits: &[Lit]) -> Option<Vec<u32>> {
        // A lemma with a root-satisfied literal is trivially implied.
        for &l in lits {
            if lit_value(&self.assigns, l) == LBool::True {
                let deps = self.collect_deps(None, &[l]);
                return Some(deps);
            }
        }
        let saved = self.trail.len();
        debug_assert_eq!(self.qhead, saved);
        for &l in lits {
            if lit_value(&self.assigns, l) == LBool::Undef {
                let neg = !l;
                self.assigns[neg.var().index()] = LBool::from_bool(neg.is_positive());
                self.trail.push(neg);
            }
        }
        let conflict = self.propagate();
        let result = conflict.map(|c| {
            let seed: Vec<Lit> = self.clauses[c as usize].lits.clone();
            self.collect_deps(Some(c), &seed)
        });
        // Undo all temporary assignments.
        for i in saved..self.trail.len() {
            let v = self.trail[i].var().index();
            self.assigns[v] = LBool::Undef;
            self.reason[v] = NO_REASON;
        }
        self.trail.truncate(saved);
        self.qhead = saved;
        result
    }

    /// Pops the root trail back to `len` assignments, un-assigning everything
    /// above it. Only used by the backward dependency sweep, where the trail
    /// is always fully propagated (`qhead == trail.len()`) between events.
    fn unwind_to(&mut self, len: usize) {
        while self.trail.len() > len {
            let v = self
                .trail
                .pop()
                .expect("trail above target length")
                .var()
                .index();
            self.assigns[v] = LBool::Undef;
            self.reason[v] = NO_REASON;
        }
        self.qhead = len;
    }

    /// Handles a deletion event: marks the first matching deletable clause
    /// dead. Unmatched or reason-locked deletions are ignored (sound: keeping
    /// implied clauses only strengthens propagation).
    fn delete(&mut self, lits: &[Lit]) {
        let codes = sorted_codes(lits);
        if codes.len() <= 1 {
            return;
        }
        let sig = clause_signature(&codes);
        let Some(candidates) = self.index.get_mut(&sig) else {
            return;
        };
        let mut chosen = None;
        for (pos, &cid) in candidates.iter().enumerate() {
            let c = &self.clauses[cid as usize];
            if !c.alive || c.used_as_reason {
                continue;
            }
            if sorted_codes(&c.lits) == codes {
                chosen = Some((pos, cid));
                break;
            }
        }
        if let Some((pos, cid)) = chosen {
            candidates.swap_remove(pos);
            self.clauses[cid as usize].alive = false;
        }
    }
}

/// Deduplicates literals in place (order-preserving); returns `true` when the
/// clause is a tautology (contains a literal and its negation).
fn dedup_clause(lits: &mut Vec<Lit>) -> bool {
    let mut out = 0;
    for i in 0..lits.len() {
        let l = lits[i];
        let prior = &lits[..out];
        if prior.contains(&l) {
            continue;
        }
        if prior.contains(&!l) {
            return true;
        }
        lits[out] = l;
        out += 1;
    }
    lits.truncate(out);
    false
}

fn max_var_index(log: &ProofLog, assumptions: &[Lit]) -> usize {
    let mut n = 0usize;
    for l in &log.lits {
        n = n.max(l.var().index() + 1);
    }
    for l in assumptions {
        n = n.max(l.var().index() + 1);
    }
    n
}

fn run_check(log: &ProofLog, assumptions: &[Lit]) -> Result<CheckReport, CheckError> {
    let num_vars = max_var_index(log, assumptions);
    let mut checker = Checker::new(num_vars, false);
    let mut report = CheckReport::default();
    let mut refuted: Option<Option<usize>> = None;

    // Assumption literals become unit clauses: the certificate claims
    // "axioms AND assumptions" is unsatisfiable.
    'outer: {
        let mut seen_assumptions: Vec<Lit> = Vec::new();
        for &a in assumptions {
            if seen_assumptions.contains(&a) {
                continue;
            }
            seen_assumptions.push(a);
            if let Insert::Refuted(_) = checker.insert(&[a], ASSUMPTION_EVENT) {
                refuted = Some(None);
                break 'outer;
            }
        }
        for i in 0..log.num_events() {
            let step = log.events[i].step;
            let mut lits = log.event_lits(i).to_vec();
            match step {
                ProofStep::Axiom | ProofStep::Add => {
                    if dedup_clause(&mut lits) {
                        // Tautologies are valid and inert; skip them.
                        if step == ProofStep::Axiom {
                            report.axioms += 1;
                        } else {
                            report.lemmas_checked += 1;
                        }
                        continue;
                    }
                    if step == ProofStep::Add {
                        report.lemmas_checked += 1;
                        if checker.check_rup(&lits).is_none() {
                            return Err(CheckError::NotRup { event: i });
                        }
                    } else {
                        report.axioms += 1;
                    }
                    let event = u32::try_from(i).expect("proof log event index overflow");
                    if let Insert::Refuted(_) = checker.insert(&lits, event) {
                        refuted = Some(Some(i));
                        report.skipped_events = log.num_events() - i - 1;
                        break 'outer;
                    }
                }
                ProofStep::Delete => {
                    report.deletions += 1;
                    checker.delete(&lits);
                }
            }
        }
    }

    report.propagations = checker.propagations;
    match refuted {
        Some(event) => {
            report.refutation_event = event;
            Ok(report)
        }
        None => Err(CheckError::NoRefutation),
    }
}

/// Marks the events the refutation transitively depends on (backward
/// checking): a forward pass *inserts* every clause without RUP-checking it
/// and finds the refutation, then a backward sweep unwinds the database event
/// by event and RUP-checks only the lemmas that are already marked as
/// dependencies, marking their own dependencies in turn. Lemmas and axioms
/// the refutation never touches are neither checked nor kept.
///
/// Deletion events are ignored here: keeping extra implied clauses only
/// strengthens propagation, and the trimmed output drops deletions anyway.
///
/// Returns the marked-event bitmap and the refutation event (`None` when the
/// assumptions alone were contradictory).
fn mark_dependencies(
    log: &ProofLog,
    assumptions: &[Lit],
) -> Result<(Vec<bool>, Option<usize>), CheckError> {
    let num_events = log.num_events();
    let num_vars = max_var_index(log, assumptions);
    let mut checker = Checker::new(num_vars, true);
    // Clause each event inserted (inert events insert none) and the trail
    // height before it, so the backward sweep can restore the exact database
    // and propagation state every event was inserted into.
    let mut event_clause: Vec<Option<u32>> = vec![None; num_events];
    let mut trail_before: Vec<usize> = vec![0; num_events];
    let mut refuted: Option<(Option<usize>, Vec<u32>)> = None;

    'outer: {
        let mut seen_assumptions: Vec<Lit> = Vec::new();
        for &a in assumptions {
            if seen_assumptions.contains(&a) {
                continue;
            }
            seen_assumptions.push(a);
            if let Insert::Refuted(deps) = checker.insert(&[a], ASSUMPTION_EVENT) {
                refuted = Some((None, deps));
                break 'outer;
            }
        }
        for i in 0..num_events {
            trail_before[i] = checker.trail.len();
            if log.events[i].step == ProofStep::Delete {
                continue;
            }
            let mut lits = log.event_lits(i).to_vec();
            if dedup_clause(&mut lits) {
                continue;
            }
            let clauses_before = checker.clauses.len();
            let event = u32::try_from(i).expect("proof log event index overflow");
            let inserted = checker.insert(&lits, event);
            if checker.clauses.len() > clauses_before {
                event_clause[i] = Some(clauses_before as u32);
            }
            if let Insert::Refuted(deps) = inserted {
                refuted = Some((Some(i), deps));
                break 'outer;
            }
        }
    }

    let Some((refutation_event, dep_clauses)) = refuted else {
        return Err(CheckError::NoRefutation);
    };
    let mut marked = vec![false; num_events];
    let mark_clause_events = |checker: &Checker, marked: &mut Vec<bool>, deps: &[u32]| {
        for &c in deps {
            let e = checker.clauses[c as usize].event;
            if e != ASSUMPTION_EVENT {
                marked[e as usize] = true;
            }
        }
    };
    mark_clause_events(&checker, &mut marked, &dep_clauses);
    if let Some(re) = refutation_event {
        marked[re] = true;
        // Backward sweep: restore the pre-event state, retract the event's
        // clause (a lemma must not justify itself), and RUP-check it only if
        // something later depends on it.
        for i in (0..=re).rev() {
            checker.unwind_to(trail_before[i]);
            if let Some(cid) = event_clause[i] {
                checker.clauses[cid as usize].alive = false;
            }
            if marked[i] && log.events[i].step == ProofStep::Add {
                let mut lits = log.event_lits(i).to_vec();
                if dedup_clause(&mut lits) {
                    continue;
                }
                match checker.check_rup(&lits) {
                    Some(deps) => mark_clause_events(&checker, &mut marked, &deps),
                    None => return Err(CheckError::NotRup { event: i }),
                }
            }
        }
    }
    Ok((marked, refutation_event))
}

/// Verifies a proof log: every lemma must be a RUP consequence of the events
/// preceding it, and unit propagation from the axioms plus the `assumptions`
/// (inserted as unit clauses) must derive a root-level conflict.
///
/// On success the certificate establishes that the conjunction of the axiom
/// clauses and the assumption literals is unsatisfiable.
///
/// # Examples
///
/// ```
/// use sat::drat::{ProofLog, ProofStep, check};
/// use sat::{Lit, Var};
///
/// let x = Var::from_index(0).positive();
/// let y = Var::from_index(1).positive();
/// let mut log = ProofLog::new();
/// log.push(ProofStep::Axiom, &[x, y]);
/// log.push(ProofStep::Axiom, &[x, !y]);
/// log.push(ProofStep::Axiom, &[!x, y]);
/// log.push(ProofStep::Axiom, &[!x, !y]);
/// log.push(ProofStep::Add, &[x]); // RUP: assuming !x propagates y and !y.
/// let report = check(&log, &[]).unwrap();
/// assert_eq!(report.lemmas_checked, 1);
/// ```
pub fn check(log: &ProofLog, assumptions: &[Lit]) -> Result<CheckReport, CheckError> {
    run_check(log, assumptions)
}

/// Returns a trimmed copy of the log that keeps only the events the
/// refutation transitively depends on, together with the [`CheckReport`] of
/// checking the trimmed log.
///
/// Trimming uses *backward checking*: a forward pass inserts every clause
/// without RUP-checking it and locates the refutation, then a backward sweep
/// RUP-checks exactly the lemmas in the refutation's dependency cone. Both
/// unused lemmas *and unused axioms* are dropped — the kept axioms are an
/// unsatisfiable core, and a core being unsatisfiable implies the full axiom
/// set is. This makes trimming much cheaper than [`check`] on logs where the
/// refutation touches a small fraction of the events, and it shrinks proof
/// certificates by orders of magnitude.
///
/// The trimmed log is re-verified with [`check`] under the same assumptions
/// before being returned, so a successful `trim` *is* a successful check:
/// the returned report is the trimmed log's. Note that an unused corrupt
/// lemma is dropped rather than rejected; run [`check`] on the full log when
/// the goal is to validate every event.
pub fn trim(log: &ProofLog, assumptions: &[Lit]) -> Result<(ProofLog, CheckReport), CheckError> {
    let (marked, refutation_event) = mark_dependencies(log, assumptions)?;
    let mut trimmed = ProofLog::new();
    let last = refutation_event.unwrap_or(0);
    for (i, keep) in marked.iter().enumerate() {
        if refutation_event.is_some() && i > last {
            break;
        }
        if *keep {
            match log.events[i].step {
                step @ (ProofStep::Axiom | ProofStep::Add) => {
                    trimmed.push(step, log.event_lits(i));
                }
                ProofStep::Delete => {}
            }
        }
    }
    let report = run_check(&trimmed, assumptions)?;
    Ok((trimmed, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;
    use crate::solver::Solver;
    use crate::SatResult;

    fn lit(i: usize, positive: bool) -> Lit {
        let v = Var::from_index(i);
        if positive {
            v.positive()
        } else {
            v.negative()
        }
    }

    #[test]
    fn manual_log_checks_and_trims() {
        let x = lit(0, true);
        let y = lit(1, true);
        let z = lit(2, true);
        let mut log = ProofLog::new();
        log.push(ProofStep::Axiom, &[x, y]);
        log.push(ProofStep::Axiom, &[x, !y]);
        log.push(ProofStep::Axiom, &[!x, y]);
        log.push(ProofStep::Axiom, &[!x, !y]);
        // Useless but valid lemma over a fresh variable.
        log.push(ProofStep::Add, &[x, z]);
        // Deriving x refutes together with the !x clauses.
        log.push(ProofStep::Add, &[x]);
        let report = check(&log, &[]).unwrap();
        assert_eq!(report.axioms, 4);
        assert_eq!(report.lemmas_checked, 2);
        assert_eq!(report.refutation_event, Some(5));

        let (trimmed, _) = trim(&log, &[]).unwrap();
        assert_eq!(trimmed.num_axioms(), 4);
        // The [x, z] lemma is unused and must be dropped.
        assert_eq!(trimmed.num_lemmas(), 1);
        check(&trimmed, &[]).unwrap();
    }

    #[test]
    fn non_rup_lemma_rejected() {
        let x = lit(0, true);
        let y = lit(1, true);
        let mut log = ProofLog::new();
        log.push(ProofStep::Axiom, &[x, y]);
        log.push(ProofStep::Add, &[x]);
        assert_eq!(check(&log, &[]), Err(CheckError::NotRup { event: 1 }));
    }

    #[test]
    fn satisfiable_log_has_no_refutation() {
        let x = lit(0, true);
        let y = lit(1, true);
        let mut log = ProofLog::new();
        log.push(ProofStep::Axiom, &[x, y]);
        assert_eq!(check(&log, &[]), Err(CheckError::NoRefutation));
    }

    #[test]
    fn contradictory_assumptions_refute_immediately() {
        let x = lit(0, true);
        let mut log = ProofLog::new();
        log.push(ProofStep::Axiom, &[x, lit(1, true)]);
        let report = check(&log, &[x, !x]).unwrap();
        assert_eq!(report.refutation_event, None);
    }

    #[test]
    fn assumption_falsified_by_axioms() {
        let x = lit(0, true);
        let mut log = ProofLog::new();
        log.push(ProofStep::Axiom, &[!x]);
        let report = check(&log, &[x]).unwrap();
        assert_eq!(report.refutation_event, Some(0));
    }

    #[test]
    fn deletion_events_are_processed() {
        let x = lit(0, true);
        let y = lit(1, true);
        let mut log = ProofLog::new();
        // Two copies of [x, y]; deleting one leaves the other, so the
        // refutation still goes through.
        log.push(ProofStep::Axiom, &[x, y]);
        log.push(ProofStep::Axiom, &[x, y]);
        log.push(ProofStep::Axiom, &[x, !y]);
        log.push(ProofStep::Axiom, &[!x, y]);
        log.push(ProofStep::Axiom, &[!x, !y]);
        log.push(ProofStep::Delete, &[x, y]);
        log.push(ProofStep::Add, &[x]);
        let report = check(&log, &[]).unwrap();
        assert_eq!(report.deletions, 1);
        assert_eq!(report.refutation_event, Some(6));
    }

    #[test]
    fn solver_unsat_log_checks_end_to_end() {
        let mut solver = Solver::new();
        let vars: Vec<Lit> = (0..3).map(|_| solver.new_var().positive()).collect();
        solver.start_proof_log();
        // 4 pigeons, 3 holes style small instance: all sign combinations over
        // three variables, forcing UNSAT after search.
        for mask in 0..8u32 {
            let clause: Vec<Lit> = vars
                .iter()
                .enumerate()
                .map(|(i, &l)| if mask & (1 << i) != 0 { l } else { !l })
                .collect();
            solver.add_clause(clause);
        }
        assert!(matches!(solver.solve(), SatResult::Unsat));
        let log = solver.take_proof_log().unwrap();
        let report = check(&log, &[]).unwrap();
        assert_eq!(report.axioms, 8);
        let (trimmed, _) = trim(&log, &[]).unwrap();
        let report2 = check(&trimmed, &[]).unwrap();
        assert!(report2.lemmas_checked <= report.lemmas_checked);
    }

    #[test]
    fn to_dimacs_and_drat_render() {
        let x = lit(0, true);
        let y = lit(1, false);
        let mut log = ProofLog::new();
        log.push(ProofStep::Axiom, &[x, y]);
        log.push(ProofStep::Add, &[x]);
        log.push(ProofStep::Delete, &[x, y]);
        let dimacs = log.to_dimacs();
        assert!(dimacs.contains("p cnf 2 1"));
        assert!(dimacs.contains("1 -2 0"));
        let drat = log.to_drat();
        assert!(drat.contains("1 0"));
        assert!(drat.contains("d 1 -2 0"));
    }

    #[test]
    fn size_accounting() {
        let mut log = ProofLog::new();
        log.push(ProofStep::Axiom, &[lit(0, true), lit(1, true)]);
        log.push(ProofStep::Add, &[lit(0, true)]);
        assert_eq!(log.num_events(), 2);
        assert_eq!(log.num_lits(), 3);
        assert!(log.size_bytes() > 0);
        assert!(!log.is_empty());
    }
}
