//! # `soc` — the MiniRV SoC generator (RocketChip stand-in)
//!
//! This crate provides the system under verification for the UPEC
//! reproduction: a parameterized, in-order, 5-stage RV32-subset SoC with a
//! pipelined write-allocate data cache, physical memory protection (PMP) and
//! precise exceptions — plus the deliberately weakened design variants
//! evaluated in the paper (Meltdown-style refill, Orc replay-buffer bypass
//! and the PMP TOR-lock bug).
//!
//! The design is generated as an [`rtl::Netlist`], so the same description is
//! simulated cycle-accurately (attack demonstrations, co-simulation against
//! the ISA-level golden model) and bit-blasted for the UPEC proofs in the
//! `upec` crate.
//!
//! Main entry points:
//!
//! * [`SocConfig`] / [`SocVariant`] — generator parameters and security
//!   knobs,
//! * [`build_soc`] — elaborate one SoC instance into a netlist,
//! * [`SocSim`] — run programs on the RTL with behavioural memories,
//! * [`Program`] / [`Instruction`] — assembler for attacker/victim programs,
//! * [`GoldenModel`] — ISA-level reference model for co-simulation.

#![warn(missing_docs)]

mod cache;
mod config;
mod core;
pub mod fuzz;
mod golden;
mod harness;
pub mod isa;

pub use cache::{build_cache, CacheRequest, CacheSignals};
pub use config::{SocConfig, SocVariant};
pub use core::{build_soc, SocInstance};
pub use golden::{GoldenModel, Mode};
pub use harness::SocSim;
pub use isa::{Instruction, Program};
