//! The iterative UPEC methodology of paper Fig. 5, narrated step by step on
//! the original (secure) design with the secret in the cache.
//!
//! ```text
//! cargo run --release --example methodology_flow
//! ```

use soc::{SocConfig, SocVariant};
use upec::{
    full_commitment, prove_alert_closure, AlertKind, SecretScenario, UpecChecker, UpecModel,
    UpecOptions,
};

fn main() {
    let config = SocConfig::new(SocVariant::Secure)
        .with_registers(4)
        .with_cache_lines(2)
        .with_miss_latency(1)
        .with_store_latency(1);
    let model = UpecModel::new(&config, SecretScenario::InCache);
    let checker = UpecChecker::new();
    let window = UpecOptions::window(3);

    println!(
        "UPEC methodology on the {} design, {}",
        config.variant().name(),
        model.scenario().label()
    );
    println!(
        "miter: {} register pairs, window k = {}\n",
        model.pairs().len(),
        window.window
    );

    let mut commitment = full_commitment(&model);
    let mut collected = std::collections::BTreeSet::new();
    for iteration in 1.. {
        println!(
            "iteration {iteration}: proving uniqueness of {} state bits ...",
            commitment.len()
        );
        match checker.check(&model, window, &commitment) {
            outcome if outcome.is_proven() => {
                println!("  -> property PROVEN ({:?})", outcome.stats().runtime);
                break;
            }
            outcome => {
                let alert = outcome.alert().expect("violated").clone();
                match alert.kind {
                    AlertKind::LAlert => {
                        println!(
                            "  -> L-ALERT: architectural registers {:?} depend on the secret",
                            alert.architectural_differences
                        );
                        println!("  The design is NOT secure.");
                        return;
                    }
                    AlertKind::PAlert => {
                        println!(
                            "  -> P-alert: secret propagated into {:?} ({:?})",
                            alert.microarchitectural_differences,
                            outcome.stats().runtime
                        );
                        for reg in &alert.microarchitectural_differences {
                            commitment.remove(reg);
                            collected.insert(reg.clone());
                        }
                    }
                }
            }
        }
    }

    println!("\ncollected P-alert registers: {collected:?}");
    println!("running the inductive closure proof (Sec. VI) ...");
    let closure = prove_alert_closure(&model, &collected, None);
    println!("closure proof: {closure:?}");
    assert!(closure.is_closed());
    println!("\nThe propagated secret can never reach architectural state:");
    println!("the design is secure against covert channel attacks.");
}
