//! Deterministic fault injection for robustness testing.
//!
//! This module is compiled only for `sat`'s own unit tests and under the
//! opt-in `faults` cargo feature — it is never part of a release build. A
//! [`FaultPlan`] armed with [`Solver::inject_fault`](crate::Solver) makes
//! the solver stop one episode exactly as if a real resource-exhaustion or
//! cancellation condition had occurred at a SplitMix64-chosen point, and
//! then disarms itself. The differential suites use this to prove the
//! robustness contract: an injected run either resumes to the exact
//! uninterrupted verdict or honestly reports
//! [`SatResult::Unknown`](crate::SatResult) — never a wrong verdict, a
//! panic or a poisoned session. Usage is documented in
//! `docs/robustness.md`.

/// Which stop condition an injected fault emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An exhausted [`Budget`](crate::Budget): fires at a conflict
    /// checkpoint and stops with
    /// [`StopCause::BudgetExhausted`](crate::StopCause).
    BudgetExhaustion,
    /// An external cancellation observed at a restart boundary — the poll
    /// point of a real [`CancelToken`](crate::CancelToken). Stops with
    /// [`StopCause::Cancelled`](crate::StopCause).
    SpuriousCancellation,
    /// A cancellation landing in the middle of a portfolio slice: fires at
    /// a conflict checkpoint *between* restart boundaries, exercising the
    /// stop path at its least convenient moment. Stops with
    /// [`StopCause::Cancelled`](crate::StopCause).
    MidSliceAbort,
}

/// A one-shot injected fault.
///
/// At the first checkpoint of the matching kind once the episode has spent
/// at least [`FaultPlan::after_conflicts`] conflicts, the solver stops
/// exactly as if the emulated condition were real — same counters, same
/// [`StopCause`](crate::StopCause), same `Unknown` answer — and the plan
/// disarms itself, so the next episode resumes unperturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Which stop condition to emulate.
    pub kind: FaultKind,
    /// Episode conflict count at which the fault arms.
    pub after_conflicts: u64,
}

impl FaultPlan {
    /// Derives a plan deterministically from a seed: SplitMix64 picks both
    /// the fault kind and an injection point in `0..horizon` conflicts
    /// (point 0 when `horizon` is 0). Fuzzing seeds therefore enumerate
    /// reproducible fault schedules.
    pub fn from_seed(seed: u64, horizon: u64) -> Self {
        let mut state = seed;
        let kind = match splitmix64(&mut state) % 3 {
            0 => FaultKind::BudgetExhaustion,
            1 => FaultKind::SpuriousCancellation,
            _ => FaultKind::MidSliceAbort,
        };
        let after_conflicts = if horizon == 0 {
            0
        } else {
            splitmix64(&mut state) % horizon
        };
        Self {
            kind,
            after_conflicts,
        }
    }
}

/// One SplitMix64 step (the same generator as `rtl::SplitMix64`,
/// re-implemented here because `sat` depends on no other workspace crate).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        for seed in 0..64u64 {
            let a = FaultPlan::from_seed(seed, 100);
            let b = FaultPlan::from_seed(seed, 100);
            assert_eq!(a, b);
            assert!(a.after_conflicts < 100);
        }
    }

    #[test]
    fn seeds_cover_every_fault_kind() {
        let kinds: std::collections::BTreeSet<u8> = (0..32u64)
            .map(|s| FaultPlan::from_seed(s, 10).kind as u8)
            .collect();
        assert_eq!(kinds.len(), 3, "32 seeds must hit all three kinds");
    }

    #[test]
    fn zero_horizon_pins_the_injection_point_to_zero() {
        assert_eq!(FaultPlan::from_seed(7, 0).after_conflicts, 0);
    }
}
