//! Pins the disabled path's zero-allocation guarantee with a counting
//! global allocator: with no sink installed, spans, attributes and counters
//! must not touch the heap. A separate integration-test binary so the
//! process-global allocator and sink registry are fully under this test's
//! control (the crate's unit tests install sinks).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_spans_and_counters_do_not_allocate() {
    assert!(!obs::enabled());
    let big = "x".repeat(256); // built before measuring
    let exercise = |n: u64| {
        for i in 0..n {
            let mut span = obs::span("bench.loop");
            span.attr_u64("i", i);
            span.attr_i64("j", -1);
            span.attr_f64("f", 1.5);
            span.attr_bool("b", true);
            span.attr_str("s", &big); // must not copy when disabled
            assert_eq!(span.id(), None);
            obs::counter("ticks", i);
            let _inner = obs::span("bench.inner");
        }
    };
    // Warm-up absorbs one-time lazy allocations made by the test harness
    // itself (output-capture buffers) — the counter is process-global.
    exercise(10);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    exercise(100_000);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled telemetry allocated");
}
