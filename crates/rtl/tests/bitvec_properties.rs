//! Randomized property tests of the bit-vector value semantics that the
//! whole workspace (simulator and bit-blaster alike) relies on. Cases are
//! generated with the in-repo deterministic [`SplitMix64`] generator, so the
//! suite needs no external property-testing dependency and every run checks
//! the same cases.

use rtl::{BitVec, SplitMix64};

const CASES: usize = 256;

/// Yields `(width, a, b)` triples covering all widths 1..=64.
fn cases() -> impl Iterator<Item = (u32, u64, u64)> {
    let mut rng = SplitMix64::new(0xb17_5ec);
    (0..CASES).map(move |i| {
        let w = (i as u32 % 64) + 1;
        (w, rng.next_u64(), rng.next_u64())
    })
}

#[test]
fn add_sub_are_modular_inverses() {
    for (w, a, b) in cases() {
        let x = BitVec::new(a, w);
        let y = BitVec::new(b, w);
        assert_eq!(x.add(&y), y.add(&x));
        assert_eq!(x.add(&y).sub(&y), x);
        assert_eq!(x.sub(&y).add(&y), x);
        assert_eq!(x.add(&x.neg()), BitVec::zero(w));
    }
}

#[test]
fn de_morgan() {
    for (w, a, b) in cases() {
        let x = BitVec::new(a, w);
        let y = BitVec::new(b, w);
        assert_eq!(x.and(&y).not(), x.not().or(&y.not()));
        assert_eq!(x.or(&y).not(), x.not().and(&y.not()));
        assert_eq!(x.xor(&y), x.and(&y.not()).or(&x.not().and(&y)));
    }
}

#[test]
fn slice_concat_roundtrip() {
    let mut rng = SplitMix64::new(0x51_1ce);
    for _ in 0..CASES {
        let w_hi = rng.gen_range(1..=32) as u32;
        let w_lo = rng.gen_range(1..=32) as u32;
        let hi = BitVec::new(rng.next_u64(), w_hi);
        let lo = BitVec::new(rng.next_u64(), w_lo);
        let cat = hi.concat(&lo);
        assert_eq!(cat.width(), w_hi + w_lo);
        assert_eq!(cat.slice(w_hi + w_lo - 1, w_lo), hi);
        assert_eq!(cat.slice(w_lo - 1, 0), lo);
    }
}

#[test]
fn comparisons_match_integers() {
    for (w, a, b) in cases() {
        let x = BitVec::new(a, w);
        let y = BitVec::new(b, w);
        assert_eq!(x.ult(&y).is_true(), x.as_u64() < y.as_u64());
        assert_eq!(x.ule(&y).is_true(), x.as_u64() <= y.as_u64());
        assert_eq!(x.eq_bit(&y).is_true(), x.as_u64() == y.as_u64());
        assert_eq!(x.slt(&y).is_true(), x.as_i64() < y.as_i64());
    }
}

#[test]
fn shifts_match_arithmetic() {
    let mut rng = SplitMix64::new(0x5817);
    for (w, a, _) in cases() {
        let amount = rng.gen_range(0..70) as u32;
        let x = BitVec::new(a, w);
        let shifted = x.shl(amount);
        if amount >= w {
            assert!(shifted.is_zero());
        } else {
            assert_eq!(
                shifted.as_u64(),
                (x.as_u64() << amount) & BitVec::ones(w).as_u64()
            );
        }
        let shifted = x.shr(amount);
        if amount >= w {
            assert!(shifted.is_zero());
        } else {
            assert_eq!(shifted.as_u64(), x.as_u64() >> amount);
        }
    }
}

#[test]
fn extensions_preserve_value() {
    let mut rng = SplitMix64::new(0xe87);
    for _ in 0..CASES {
        let w = rng.gen_range(1..=32) as u32;
        let extra = rng.gen_range(0..=32) as u32;
        let x = BitVec::new(rng.next_u64(), w);
        assert_eq!(x.zext(w + extra).as_u64(), x.as_u64());
        assert_eq!(x.sext(w + extra).as_i64(), x.as_i64());
    }
}

#[test]
fn reductions() {
    for (w, a, _) in cases() {
        let x = BitVec::new(a, w);
        assert_eq!(x.reduce_or().is_true(), x.as_u64() != 0);
        assert_eq!(x.reduce_and().is_true(), x == BitVec::ones(w));
        assert_eq!(x.reduce_xor().is_true(), x.as_u64().count_ones() % 2 == 1);
    }
}
