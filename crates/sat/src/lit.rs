//! Boolean variables and literals.

use std::fmt;

/// A Boolean variable.
///
/// Variables are allocated densely by [`Solver::new_var`](crate::Solver::new_var)
/// starting at index 0.
///
/// # Examples
///
/// ```
/// use sat::Var;
///
/// let v = Var::from_index(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.positive().var(), v);
/// assert_eq!(!v.negative(), v.positive());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from its dense index.
    pub fn from_index(index: usize) -> Self {
        Var(u32::try_from(index).expect("variable index exceeds u32 range"))
    }

    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// Negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Internally encoded as `2*var + (negated as usize)`, the usual MiniSat-style
/// packing that allows literals to index watch lists directly.
///
/// # Examples
///
/// ```
/// use sat::{Lit, Var};
///
/// let l = Lit::new(Var::from_index(2), true);
/// assert!(l.is_positive());
/// assert!(!(!l).is_positive());
/// assert_eq!(l.to_dimacs(), 3);
/// assert_eq!(Lit::from_dimacs(-3), !l);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Creates a literal from a variable and a polarity (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive (non-negated).
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The literal's dense code (`2*var + negated`), usable as an array index.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its dense code.
    pub fn from_code(code: usize) -> Self {
        Lit(u32::try_from(code).expect("literal code exceeds u32 range"))
    }

    /// Converts a DIMACS-style signed integer (non-zero) into a literal.
    ///
    /// # Panics
    ///
    /// Panics if `dimacs` is zero.
    pub fn from_dimacs(dimacs: i64) -> Self {
        assert!(dimacs != 0, "DIMACS literal must be non-zero");
        let var = Var(u32::try_from(dimacs.unsigned_abs() - 1).expect("DIMACS variable too large"));
        Lit::new(var, dimacs > 0)
    }

    /// Converts the literal to its DIMACS signed-integer form (1-based).
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.var().0) + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Truth value of a variable or literal during search.
///
/// # Examples
///
/// ```
/// use sat::LBool;
///
/// assert_eq!(LBool::from_bool(true), LBool::True);
/// assert_eq!(LBool::True.negate(), LBool::False);
/// assert!(!LBool::Undef.is_assigned());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not yet assigned.
    Undef,
}

impl LBool {
    /// Converts a concrete Boolean.
    pub fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Negates the value (leaves `Undef` unchanged).
    pub fn negate(self) -> Self {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// Whether the value is assigned (not `Undef`).
    pub fn is_assigned(self) -> bool {
        !matches!(self, LBool::Undef)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_roundtrip() {
        let v = Var::from_index(5);
        let p = v.positive();
        let n = v.negative();
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::from_code(p.code()), p);
    }

    #[test]
    fn dimacs_conversion() {
        let l = Lit::from_dimacs(3);
        assert_eq!(l.var().index(), 2);
        assert!(l.is_positive());
        assert_eq!(l.to_dimacs(), 3);
        let l = Lit::from_dimacs(-1);
        assert_eq!(l.var().index(), 0);
        assert!(!l.is_positive());
        assert_eq!(l.to_dimacs(), -1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_rejected() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_operations() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert!(LBool::False.is_assigned());
        assert!(!LBool::Undef.is_assigned());
    }

    #[test]
    fn debug_formatting() {
        let v = Var::from_index(2);
        assert_eq!(format!("{:?}", v.positive()), "v2");
        assert_eq!(format!("{:?}", v.negative()), "!v2");
    }
}
