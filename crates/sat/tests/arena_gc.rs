//! Invariant tests for the clause-arena garbage collector.
//!
//! Database reduction tombstones learned clauses and leaves literal holes in
//! the flat clause arena; the compacting collector must (a) keep the
//! wasted-hole ratio below the documented 25% bound whenever the solver is
//! quiescent, (b) remap every watcher and propagation reason to the
//! compacted indices, and (c) never perturb verdicts or models — including
//! when it fires in the middle of an incremental session with frozen
//! variables and simplifier rebuilds in between.

use rtl::SplitMix64;
use sat::{Lit, SatResult, Solver, Var};

// The pigeonhole builder indexes two parallel axes; an iterator form would
// obscure the symmetry the clauses encode.
#[allow(clippy::needless_range_loop)]
fn pigeonhole(n: usize, m: usize) -> Solver {
    let mut s = Solver::new();
    let p: Vec<Vec<Lit>> = (0..n)
        .map(|_| (0..m).map(|_| s.new_var().positive()).collect())
        .collect();
    for pigeon in &p {
        s.add_clause(pigeon.iter().copied());
    }
    for hole in 0..m {
        for a in 0..n {
            for b in (a + 1)..n {
                s.add_clause([!p[a][hole], !p[b][hole]]);
            }
        }
    }
    s
}

/// Pigeonhole CNFs are pure unit-and-binary instances, so their learned
/// clauses are the only arena tenants: a tiny learnt budget makes reduction
/// (and therefore collection) fire constantly.
#[test]
fn waste_ratio_stays_bounded_on_hard_instances() {
    let mut s = pigeonhole(7, 6);
    s.set_learnt_budget(16);
    assert!(s.solve().is_unsat());
    let stats = s.stats();
    assert!(stats.deleted_clauses > 0, "reductions must have fired");
    assert!(stats.arena_collections > 0, "collections must have fired");
    assert!(
        s.arena_wasted_ratio() < 0.25,
        "wasted ratio {} exceeds the documented bound",
        s.arena_wasted_ratio()
    );
    s.debug_validate()
        .expect("watch/reason invariants after GC");
}

/// Interrupting a solve mid-search (conflict budget) leaves a collected
/// arena in a state later solves can build on: watchers and reasons stay
/// valid across the pause and the final verdict is unchanged.
#[test]
fn collection_survives_a_paused_search() {
    let mut s = pigeonhole(7, 6);
    s.set_learnt_budget(16);
    s.set_conflict_limit(Some(300));
    let mut paused = 0;
    loop {
        match s.solve() {
            SatResult::Unknown => {
                paused += 1;
                s.debug_validate().expect("invariants at the pause point");
                assert!(
                    s.arena_wasted_ratio() < 0.25,
                    "wasted ratio {} at pause {paused}",
                    s.arena_wasted_ratio()
                );
            }
            SatResult::Unsat => break,
            SatResult::Sat(_) => panic!("pigeonhole 7/6 is unsatisfiable"),
        }
        assert!(paused < 1000, "proof must terminate");
    }
    assert!(paused > 0, "the budget must actually pause the search");
    assert!(s.stats().arena_collections > 0);
}

/// Regression for the stale-reason caveat: searching assigns variables with
/// clause-index reasons, and backtracking (restarts, conflict analysis,
/// final model cleanup) unassigns them again. Those indices must not
/// survive unassignment — a later reduction, collection or simplifier
/// rebuild would leave them dangling. `debug_validate` now rejects any
/// clause-index reason on an unassigned variable, so validating after
/// search, after a rebuild, and after GC pins the scrub-on-backtrack
/// behaviour.
#[test]
fn unassigned_vars_never_carry_clause_reasons() {
    let mut s = pigeonhole(6, 5);
    s.set_learnt_budget(16);
    assert!(s.solve().is_unsat());
    // Post-search: restarts and conflict analysis unassigned plenty of
    // variables whose reasons were learned (long) clauses.
    s.debug_validate()
        .expect("no stale reasons after a conflicting search");

    // Satisfiable instance: solve (backtracks to level 0 after the model),
    // then rebuild via the simplifier, then force reductions and GC.
    let mut s = Solver::new();
    let vars: Vec<Lit> = (0..12).map(|_| s.new_var().positive()).collect();
    for w in vars.windows(3) {
        s.add_clause([w[0], w[1], w[2]]);
        s.add_clause([!w[0], !w[2], w[1]]);
    }
    assert!(s.solve().is_sat());
    s.debug_validate().expect("no stale reasons after a model");
    assert!(s.simplify(), "instance stays consistent");
    s.debug_validate()
        .expect("no stale reasons after a simplifier rebuild");

    let mut s = pigeonhole(7, 6);
    s.set_learnt_budget(16);
    s.set_conflict_limit(Some(200));
    while s.solve() == SatResult::Unknown {
        s.debug_validate()
            .expect("no stale reasons at a paused search");
    }
    assert!(s.stats().arena_collections > 0, "GC must have fired");
    s.debug_validate().expect("no stale reasons after GC");
}

fn random_lit(rng: &mut SplitMix64, num_vars: usize) -> Lit {
    let v = rng.gen_u64_below(num_vars as u64) as usize;
    Lit::new(Var::from_index(v), rng.gen_bool())
}

/// GC firing inside an incremental session that also runs the simplifier:
/// frozen variables keep their meaning across rebuilds and collections, and
/// every model stays correct for the full (original) clause set.
#[test]
fn gc_mid_session_with_frozen_variables_keeps_models_correct() {
    let mut rng = SplitMix64::new(0xa6c);
    for case in 0..24 {
        let num_vars = 14usize;
        let mut s = Solver::new();
        s.set_learnt_budget(8);
        s.reserve_vars(num_vars);
        // Frozen interface variables: later clause batches mention them.
        let frozen: Vec<Var> = (0..6).map(Var::from_index).collect();
        for &v in &frozen {
            s.freeze_var(v);
        }
        let mut all_clauses: Vec<Vec<Lit>> = Vec::new();
        let batch = |rng: &mut SplitMix64, vars: usize, count: usize| -> Vec<Vec<Lit>> {
            (0..count)
                .map(|_| {
                    let len = rng.gen_range(2..4) as usize;
                    (0..len).map(|_| random_lit(rng, vars)).collect()
                })
                .collect()
        };
        // Batch 1 over all variables, then simplify (eliminating some
        // non-frozen ones), then batch 2 over the frozen interface only.
        let first = batch(&mut rng, num_vars, 24);
        for c in &first {
            s.add_clause(c.iter().copied());
        }
        all_clauses.extend(first);
        let consistent = s.simplify();

        let brute = |clauses: &[Vec<Lit>]| -> bool {
            'outer: for assignment in 0u32..(1 << num_vars) {
                for clause in clauses {
                    if !clause
                        .iter()
                        .any(|l| ((assignment >> l.var().index()) & 1 == 1) == l.is_positive())
                    {
                        continue 'outer;
                    }
                }
                return true;
            }
            false
        };

        if !consistent {
            assert!(
                !brute(&all_clauses),
                "case {case}: simplify flipped a verdict"
            );
            continue;
        }
        let second = batch(&mut rng, frozen.len(), 10);
        for c in &second {
            s.add_clause(c.iter().copied());
        }
        all_clauses.extend(second);

        let expected = brute(&all_clauses);
        match s.solve() {
            SatResult::Sat(model) => {
                assert!(expected, "case {case}: sat but reference unsat");
                for clause in &all_clauses {
                    assert!(
                        clause.iter().any(|&l| model.lit_is_true(l)),
                        "case {case}: model violates {clause:?} (eliminated-variable \
                         extension or GC remap must be broken)"
                    );
                }
            }
            SatResult::Unsat => assert!(!expected, "case {case}: unsat but reference sat"),
            SatResult::Unknown => panic!("no limit was set"),
        }
        assert!(
            s.arena_wasted_ratio() < 0.25,
            "case {case}: wasted ratio {}",
            s.arena_wasted_ratio()
        );
        s.debug_validate()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}
