//! Regenerates **Table II** of the paper: detecting the deliberately inserted
//! vulnerabilities (Orc and Meltdown-style) — window length and proof runtime
//! for the first P-alert and the first L-alert.
//!
//! ```text
//! cargo run --release -p bench --bin table2
//! ```

use bench::secs;
use std::time::Duration;
use upec::{scenarios, UpecChecker, UpecOptions};

struct Row {
    p_window: Option<usize>,
    p_runtime: Duration,
    l_window: Option<usize>,
    l_runtime: Duration,
}

fn investigate(scenario_id: &str, max_window: usize) -> Row {
    let spec = scenarios::by_id(scenario_id).expect("registered scenario");
    let model = spec.build_model();
    let checker = UpecChecker::new();
    let mut row = Row {
        p_window: None,
        p_runtime: Duration::ZERO,
        l_window: None,
        l_runtime: Duration::ZERO,
    };
    for k in 1..=max_window {
        if row.p_window.is_none() {
            let outcome = checker.check_full(&model, UpecOptions::window(k));
            row.p_runtime += outcome.stats().runtime;
            if outcome.alert().is_some() {
                row.p_window = Some(k);
            }
        }
        if row.l_window.is_none() {
            let outcome = checker.check_architectural(&model, UpecOptions::window(k));
            row.l_runtime += outcome.stats().runtime;
            if outcome.alert().is_some() {
                row.l_window = Some(k);
            }
        }
        if row.p_window.is_some() && row.l_window.is_some() {
            break;
        }
    }
    row
}

fn main() {
    println!("Table II — detecting vulnerabilities in the modified designs");
    println!("paper reference: Orc P-alert k=2 / 1 min, L-alert k=4 / 3 min;");
    println!("                 Meltdown-style P-alert k=4 / 1 min, L-alert k=9 / 18 min\n");
    println!("{:<34} {:>12} {:>16}", "", "Orc", "Meltdown-style");

    let orc = investigate("orc", 10);
    let meltdown = investigate("meltdown", 12);

    let show = |v: &Option<usize>| v.map(|k| k.to_string()).unwrap_or_else(|| "-".into());
    println!(
        "{:<34} {:>12} {:>16}",
        "window length for P-alert",
        show(&orc.p_window),
        show(&meltdown.p_window)
    );
    println!(
        "{:<34} {:>12} {:>16}",
        "proof runtime for P-alert",
        secs(orc.p_runtime),
        secs(meltdown.p_runtime)
    );
    println!(
        "{:<34} {:>12} {:>16}",
        "window length for L-alert",
        show(&orc.l_window),
        show(&meltdown.l_window)
    );
    println!(
        "{:<34} {:>12} {:>16}",
        "proof runtime for L-alert",
        secs(orc.l_runtime),
        secs(meltdown.l_runtime)
    );

    println!("\nShape check vs the paper: both variants yield P-alerts before (or with) L-alerts,");
    println!("the Orc channel is found at a shorter window than the Meltdown-style one, and");
    println!("L-alerts cost more cumulative solver time than P-alerts.");
}
