//! Conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The solver follows the classic MiniSat architecture: two watched literals
//! per clause, first-UIP conflict analysis, VSIDS variable activities with an
//! index-tracked mutable heap, phase saving, Luby restarts and periodic
//! deletion of inactive learned clauses. Two storage-level specializations
//! keep the propagation inner loop off cold memory:
//!
//! * **Binary implication graph.** Two-literal clauses — the dominant clause
//!   length in Tseitin-encoded hardware miters — are not stored in the clause
//!   arena at all. Each literal carries a flat list of the literals it
//!   directly implies, so propagating a binary clause reads one inline `Lit`
//!   and never touches a `ClauseHeader` or the literal arena. Binary
//!   implications are propagated to fixpoint before any long clause is
//!   visited.
//! * **Clause-arena garbage collection.** Database reduction tombstones
//!   headers and leaves literal holes in the arena; when the wasted-literal
//!   ratio reaches 25% a compacting collection rebuilds the arena and remaps
//!   every watcher and reason index, keeping memory (and cache locality)
//!   bounded across long incremental sessions.

use crate::drat::{ProofLog, ProofStep};
use crate::simplify::{ExtensionEntry, SimplifyStats};
use crate::{CnfFormula, LBool, Lit, Model, SatResult, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Statistics collected during solving.
///
/// All fields except `learnt_clauses` are monotonically increasing counters
/// accumulated over the solver's lifetime; `learnt_clauses` is a gauge (the
/// current database size). To attribute effort to a single `solve` call in an
/// incremental session, snapshot the stats before the call and use
/// [`SolverStats::delta_since`] afterwards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed (trail literals processed).
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses currently in the database (long clauses
    /// only; learned binary clauses move to the implication graph and are
    /// retained permanently).
    pub learnt_clauses: u64,
    /// Number of learned clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Number of compacting clause-arena garbage collections performed.
    pub arena_collections: u64,
}

impl SolverStats {
    /// Counter difference `self - earlier`, for measuring one solving episode
    /// of an incremental session. Counters are subtracted (saturating, so a
    /// mismatched snapshot cannot underflow); the `learnt_clauses` gauge
    /// keeps the current value.
    ///
    /// # Examples
    ///
    /// ```
    /// use sat::{Solver, SolverStats};
    ///
    /// let mut solver = Solver::new();
    /// let a = solver.new_var().positive();
    /// let b = solver.new_var().positive();
    /// solver.add_clause([a, b]);
    /// let before = solver.stats();
    /// assert!(solver.solve().is_sat());
    /// let spent = solver.stats().delta_since(&before);
    /// assert_eq!(spent.conflicts, 0); // trivially satisfiable
    /// ```
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learnt_clauses: self.learnt_clauses,
            deleted_clauses: self.deleted_clauses.saturating_sub(earlier.deleted_clauses),
            arena_collections: self
                .arena_collections
                .saturating_sub(earlier.arena_collections),
        }
    }
}

/// Clause metadata for clauses of three or more literals. The literals
/// themselves live in one flat arena (`Solver::clause_lits`) indexed by
/// `start..start + len`: propagation is memory-latency-bound, and keeping all
/// clause literals contiguous removes one pointer dereference (and most cache
/// misses) per visited clause compared to a `Vec<Lit>` per clause. Binary
/// clauses never reach the arena — they live in the implication lists
/// (`Solver::bin_watches`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClauseHeader {
    pub(crate) start: u32,
    pub(crate) len: u32,
    pub(crate) learnt: bool,
    pub(crate) deleted: bool,
    pub(crate) activity: f64,
    /// Literal block distance: number of distinct decision levels in the
    /// clause at learning time. Problem clauses carry 0; learned clauses with
    /// `lbd <= 2` ("glue" clauses) are never deleted by database reduction.
    pub(crate) lbd: u32,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    clause: u32,
    blocker: Lit,
}

/// Why a literal is on the trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Reason {
    /// A decision (or assumption, or top-level fact): no antecedent clause.
    Decision,
    /// Propagated by the arena clause with this index; the propagated
    /// literal is the clause's first literal.
    Long(u32),
    /// Propagated by a binary clause; the payload is the *other* literal of
    /// that clause (false at propagation time).
    Binary(Lit),
}

/// A falsified clause discovered by propagation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Conflict {
    /// An arena clause.
    Long(u32),
    /// A binary clause, given by its two (falsified) literals.
    Binary(Lit, Lit),
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct VarData {
    pub(crate) reason: Reason,
    pub(crate) level: u32,
}

/// Index-tracked max-heap over variables ordered by VSIDS activity.
///
/// Unlike a lazy `BinaryHeap` of `(activity, var)` snapshots — which
/// accumulates a stale duplicate on every bump and every backtrack — this
/// heap stores each variable at most once and tracks its position, so an
/// activity bump is an in-place `decrease_key`/`increase_key` sift and
/// `pop` never has to skip stale entries. Ties break on the variable index
/// (higher first) for a deterministic decision order.
#[derive(Debug, Clone, Default)]
struct VarHeap {
    heap: Vec<Var>,
    /// `position + 1` of each variable in `heap`; 0 when absent.
    index: Vec<u32>,
}

impl VarHeap {
    /// Registers a new variable (initially absent from the heap).
    fn add_var(&mut self) {
        self.index.push(0);
    }

    fn contains(&self, v: Var) -> bool {
        self.index[v.index()] != 0
    }

    /// Heap order: higher activity first, ties broken towards the higher
    /// variable index. Activities are never NaN.
    fn better(activity: &[f64], a: Var, b: Var) -> bool {
        let (aa, ab) = (activity[a.index()], activity[b.index()]);
        aa > ab || (aa == ab && a > b)
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.index[self.heap[a].index()] = (a + 1) as u32;
        self.index[self.heap[b].index()] = (b + 1) as u32;
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if Self::better(activity, self.heap[pos], self.heap[parent]) {
                self.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            let right = left + 1;
            let mut best = pos;
            if left < self.heap.len() && Self::better(activity, self.heap[left], self.heap[best]) {
                best = left;
            }
            if right < self.heap.len() && Self::better(activity, self.heap[right], self.heap[best])
            {
                best = right;
            }
            if best == pos {
                return;
            }
            self.swap(pos, best);
            pos = best;
        }
    }

    /// Inserts a variable (no-op if already present).
    fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.heap.push(v);
        self.index[v.index()] = self.heap.len() as u32;
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restores the heap property after `v`'s activity increased
    /// (no-op if `v` is not in the heap — it will be re-inserted with its
    /// bumped activity when it leaves the trail).
    fn update(&mut self, v: Var, activity: &[f64]) {
        let idx = self.index[v.index()];
        if idx != 0 {
            self.sift_up((idx - 1) as usize, activity);
        }
    }

    /// Removes and returns the most active variable.
    fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        self.index[top.index()] = 0;
        let last = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last.index()] = 1;
            self.sift_down(0, activity);
        }
        Some(top)
    }
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use sat::{Solver, SatResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var().positive();
/// let b = solver.new_var().positive();
/// solver.add_clause([a, b]);
/// solver.add_clause([!a, b]);
/// solver.add_clause([a, !b]);
/// match solver.solve() {
///     SatResult::Sat(model) => {
///         assert!(model.lit_is_true(a));
///         assert!(model.lit_is_true(b));
///     }
///     other => panic!("expected sat, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    pub(crate) headers: Vec<ClauseHeader>,
    pub(crate) clause_lits: Vec<Lit>,
    pub(crate) watches: Vec<Vec<Watcher>>,
    /// Binary implication lists: `bin_watches[p.code()]` holds every literal
    /// `q` for which a binary clause `(!p ∨ q)` exists — i.e. the literals
    /// directly implied by `p` becoming true. Each binary clause appears in
    /// exactly two lists (once per direction).
    pub(crate) bin_watches: Vec<Vec<Lit>>,
    /// Number of binary clauses stored in the implication lists.
    pub(crate) num_bin_clauses: usize,
    pub(crate) assigns: Vec<LBool>,
    pub(crate) var_data: Vec<VarData>,
    pub(crate) trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    /// Propagation head of the binary implication queue. Runs ahead of
    /// `qhead`: every trail literal has its binary implications exhausted
    /// before any long clause is visited.
    pub(crate) qhead_bin: usize,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f64,
    order: VarHeap,
    pub(crate) phase: Vec<bool>,
    seen: Vec<bool>,
    /// Scratch buffer for conflict analysis (avoids a per-resolution
    /// allocation when copying antecedent literals out of the arena).
    analyze_scratch: Vec<Lit>,
    /// Reusable mark vector of clauses currently locked as a propagation
    /// reason (indexed by clause); re-zeroed at the start of every database
    /// reduction.
    locked_marks: Vec<bool>,
    /// Reusable candidate-ranking buffer for database reduction.
    reduce_scratch: Vec<u32>,
    /// Literals sitting in arena holes left by tombstoned clauses; when the
    /// wasted ratio reaches [`Solver::GC_WASTE_DENOMINATOR`] a compacting
    /// collection runs.
    wasted_lits: usize,
    pub(crate) ok: bool,
    pub(crate) stats: SolverStats,
    conflict_limit: Option<u64>,
    interrupt: Option<Arc<AtomicBool>>,
    pub(crate) num_learnts: usize,
    max_learnts: usize,
    /// Variables the simplifier must never eliminate (see
    /// [`Solver::freeze_var`]).
    pub(crate) frozen: Vec<bool>,
    /// Variables removed from the formula by bounded variable elimination.
    pub(crate) eliminated: Vec<bool>,
    /// Clauses removed by variable elimination, in elimination order, used to
    /// extend satisfying assignments back to eliminated variables.
    pub(crate) extension: Vec<ExtensionEntry>,
    pub(crate) simp_stats: SimplifyStats,
    /// Active proof log (see [`Solver::start_proof_log`]); `None` when proof
    /// logging is off, so every log site costs one branch on a pointer-sized
    /// field.
    pub(crate) proof: Option<Box<ProofLog>>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// A compacting arena collection runs when at least `1/GC_WASTE_DENOMINATOR`
    /// of the literal arena sits in tombstoned holes. Since holes are only
    /// created by database reduction (which checks this bound immediately),
    /// the wasted-hole ratio never exceeds 25% outside of `reduce_db` itself.
    const GC_WASTE_DENOMINATOR: usize = 4;

    /// Creates an empty solver.
    pub fn new() -> Self {
        Self {
            headers: Vec::new(),
            clause_lits: Vec::new(),
            watches: Vec::new(),
            bin_watches: Vec::new(),
            num_bin_clauses: 0,
            assigns: Vec::new(),
            var_data: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            qhead_bin: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            order: VarHeap::default(),
            phase: Vec::new(),
            seen: Vec::new(),
            analyze_scratch: Vec::new(),
            locked_marks: Vec::new(),
            reduce_scratch: Vec::new(),
            wasted_lits: 0,
            ok: true,
            stats: SolverStats::default(),
            conflict_limit: None,
            interrupt: None,
            num_learnts: 0,
            max_learnts: 8192,
            frozen: Vec::new(),
            eliminated: Vec::new(),
            extension: Vec::new(),
            simp_stats: SimplifyStats::default(),
            proof: None,
        }
    }

    /// Starts DRAT-style proof logging.
    ///
    /// The current clause database — level-0 facts, binary implications and
    /// arena clauses — is snapshotted as the axiom set; from here on, every
    /// clause added through [`Solver::add_clause`] is logged as a further
    /// axiom, and every derived clause (learned clauses, probing units,
    /// strengthenings, elimination resolvents) and deletion is logged as a
    /// lemma/deletion event. After an [`SatResult::Unsat`] answer the log can
    /// be verified independently with [`drat::check`](crate::drat::check).
    ///
    /// With logging off (the default) every log site is a single branch on a
    /// `None` field; the measured overhead of the disabled path is below the
    /// noise floor of a solve.
    ///
    /// # Panics
    ///
    /// Panics if called above decision level 0.
    pub fn start_proof_log(&mut self) {
        assert_eq!(
            self.decision_level(),
            0,
            "proof logging must start at decision level 0"
        );
        let mut log = Box::new(ProofLog::new());
        for &l in &self.trail {
            log.push(ProofStep::Axiom, &[l]);
        }
        // Each binary clause (a ∨ b) lives in two implication lists; the
        // `a.code() < b.code()` guard emits each stored instance exactly once.
        for code in 0..self.bin_watches.len() {
            let a = !Lit::from_code(code);
            for &b in &self.bin_watches[code] {
                if a.code() < b.code() {
                    log.push(ProofStep::Axiom, &[a, b]);
                }
            }
        }
        for i in 0..self.headers.len() {
            if !self.headers[i].deleted {
                let h = self.headers[i];
                let lits = &self.clause_lits[h.start as usize..(h.start + h.len) as usize];
                log.push(ProofStep::Axiom, lits);
            }
        }
        self.proof = Some(log);
    }

    /// The active proof log, if logging is on.
    pub fn proof_log(&self) -> Option<&ProofLog> {
        self.proof.as_deref()
    }

    /// Stops proof logging and returns the accumulated log.
    pub fn take_proof_log(&mut self) -> Option<ProofLog> {
        self.proof.take().map(|b| *b)
    }

    #[inline]
    pub(crate) fn log_axiom(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.push(ProofStep::Axiom, lits);
        }
    }

    #[inline]
    pub(crate) fn log_lemma(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.push(ProofStep::Add, lits);
        }
    }

    #[inline]
    pub(crate) fn log_delete_slice(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.push(ProofStep::Delete, lits);
        }
    }

    /// Logs the deletion of an arena clause (the literals are still in the
    /// arena when the header is tombstoned).
    #[inline]
    pub(crate) fn log_delete_clause(&mut self, clause: u32) {
        let Solver {
            headers,
            clause_lits,
            proof,
            ..
        } = self;
        if let Some(p) = proof.as_mut() {
            let h = headers[clause as usize];
            p.push(
                ProofStep::Delete,
                &clause_lits[h.start as usize..(h.start + h.len) as usize],
            );
        }
    }

    /// Limits the number of conflicts before the solver answers
    /// [`SatResult::Unknown`]. `None` removes the limit.
    ///
    /// The UPEC experiments use this to reproduce the paper's "feasible k"
    /// notion: the window length at which the proof still completes within
    /// the allotted effort.
    pub fn set_conflict_limit(&mut self, limit: Option<u64>) {
        self.conflict_limit = limit;
    }

    /// Installs a shared interrupt flag checked at the same place as the
    /// conflict limit (once per conflict). When another thread raises the
    /// flag, the current `solve` call winds down and returns
    /// [`SatResult::Unknown`]; the solver state stays valid and later calls
    /// (after the flag is cleared) work normally.
    ///
    /// This is the cancellation hook the portfolio scheduler in the `upec`
    /// crate uses to stop losing solver configurations as soon as a winner
    /// produces a definitive answer.
    pub fn set_interrupt(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.interrupt = flag;
    }

    /// Whether an installed interrupt flag is currently raised.
    ///
    /// Callers that wrap `solve` in their own retry policies (e.g. the
    /// adaptive simplification trigger in the `bmc` unroller) use this to
    /// tell a cancellation apart from an exhausted conflict budget.
    pub fn interrupt_raised(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Sets the initial learned-clause budget that triggers database
    /// reduction (default 8192). The budget still grows by 50% after every
    /// reduction. Exposed so stress tests can force frequent reductions (and
    /// thus arena collections) on small instances.
    pub fn set_learnt_budget(&mut self, budget: usize) {
        self.max_learnts = budget.max(8);
    }

    /// Fraction of the clause-literal arena occupied by tombstoned holes
    /// (0.0 right after a compaction or simplifier rebuild).
    ///
    /// The garbage collector bounds this below 0.25 at every point where the
    /// solver is quiescent (i.e. outside `reduce_db` itself); the bound is
    /// asserted by the arena-GC test suites in `sat` and `bmc`.
    pub fn arena_wasted_ratio(&self) -> f64 {
        if self.clause_lits.is_empty() {
            0.0
        } else {
            self.wasted_lits as f64 / self.clause_lits.len() as f64
        }
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem clauses (excluding long learned clauses; binary
    /// clauses — including learned binaries, which are retained permanently —
    /// are counted).
    pub fn num_clauses(&self) -> usize {
        self.headers
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
            + self.num_bin_clauses
    }

    /// The literals of a clause.
    pub(crate) fn lits_of(&self, clause: u32) -> &[Lit] {
        let h = &self.headers[clause as usize];
        &self.clause_lits[h.start as usize..(h.start + h.len) as usize]
    }

    /// Solving statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Allocates a fresh Boolean variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.var_data.push(VarData {
            reason: Reason::Decision,
            level: 0,
        });
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.order.add_var();
        self.order.insert(v, &self.activity);
        v
    }

    /// Ensures variables `0..n` exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    fn value_var(&self, var: Var) -> LBool {
        self.assigns[var.index()]
    }

    pub(crate) fn value_lit(&self, lit: Lit) -> LBool {
        let v = self.assigns[lit.var().index()];
        if lit.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Pushes a new decision level (used by the simplifier's failed-literal
    /// probes; the search loop inlines the same two steps).
    pub(crate) fn push_decision(&mut self, lit: Lit) {
        self.trail_lim.push(self.trail.len());
        self.enqueue(lit, Reason::Decision);
    }

    /// Adds a clause to the solver.
    ///
    /// Duplicate literals are removed and tautological clauses silently
    /// dropped. Adding the empty clause (or a clause falsified at level 0)
    /// makes the solver permanently unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable that has not been allocated.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        assert_eq!(
            self.decision_level(),
            0,
            "clauses may only be added at decision level 0"
        );
        if !self.ok {
            return;
        }
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} refers to an unallocated variable"
            );
            assert!(
                !self.eliminated[l.var().index()],
                "literal {l} refers to an eliminated variable; variables that \
                 may appear in clauses added after `simplify` must be frozen \
                 with `freeze_var` first"
            );
        }
        // Log the original clause as an axiom; the checker performs its own
        // dedup/tautology handling, and level-0-falsified literals are
        // root-false for the checker too.
        self.log_axiom(&clause);
        // Tautology check, then order-preserving dedup / falsified-literal
        // simplification at level 0. The original literal order is kept so
        // the watched positions stay spread across the clause set — sorting
        // by literal code would concentrate every watch on the lowest-index
        // variables and produce pathologically long watch lists.
        if clause
            .iter()
            .any(|&l| clause.iter().any(|&other| other == !l))
        {
            return; // tautology
        }
        let mut simplified: Vec<Lit> = Vec::with_capacity(clause.len());
        for &l in &clause {
            if simplified.contains(&l) {
                continue; // duplicate
            }
            match self.value_lit(l) {
                LBool::True => return, // already satisfied
                LBool::False => {}     // drop falsified literal
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
            }
            1 => {
                self.enqueue(simplified[0], Reason::Decision);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            2 => {
                self.attach_binary(simplified[0], simplified[1]);
            }
            _ => {
                self.attach_clause(simplified, false);
            }
        }
    }

    /// Adds every clause of a [`CnfFormula`], allocating variables as needed.
    pub fn add_formula(&mut self, formula: &CnfFormula) {
        self.reserve_vars(formula.num_vars());
        for clause in formula.clauses() {
            self.add_clause(clause.iter().copied());
        }
    }

    /// Records a binary clause `(a ∨ b)` in the implication lists. Binary
    /// clauses never enter the arena and are never deleted.
    pub(crate) fn attach_binary(&mut self, a: Lit, b: Lit) {
        debug_assert_ne!(a.var(), b.var());
        self.bin_watches[(!a).code()].push(b);
        self.bin_watches[(!b).code()].push(a);
        self.num_bin_clauses += 1;
    }

    pub(crate) fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 3, "binary clauses use the implication lists");
        let idx = self.headers.len() as u32;
        let w0 = Watcher {
            clause: idx,
            blocker: lits[1],
        };
        let w1 = Watcher {
            clause: idx,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).code()].push(w0);
        self.watches[(!lits[1]).code()].push(w1);
        if learnt {
            self.num_learnts += 1;
            self.stats.learnt_clauses = self.num_learnts as u64;
        }
        let start = self.clause_lits.len() as u32;
        let len = lits.len() as u32;
        self.clause_lits.extend_from_slice(&lits);
        self.headers.push(ClauseHeader {
            start,
            len,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd: 0,
        });
        idx
    }

    pub(crate) fn enqueue(&mut self, lit: Lit, reason: Reason) {
        debug_assert_eq!(self.value_lit(lit), LBool::Undef);
        self.assigns[lit.var().index()] = LBool::from_bool(lit.is_positive());
        self.var_data[lit.var().index()] = VarData {
            reason,
            level: self.decision_level(),
        };
        self.trail.push(lit);
    }

    pub(crate) fn propagate(&mut self) -> Option<Conflict> {
        loop {
            // Phase 1: exhaust the binary implication graph. Binary clauses
            // are the bulk of a Tseitin encoding and each one costs a single
            // inline `Lit` read here — no header, no arena, no watcher moves.
            while self.qhead_bin < self.trail.len() {
                let p = self.trail[self.qhead_bin];
                self.qhead_bin += 1;
                self.stats.propagations += 1;
                // Move the list out for the scan; `enqueue` never touches
                // the implication lists, so this is safe and avoids
                // re-borrowing per entry.
                let implications = std::mem::take(&mut self.bin_watches[p.code()]);
                let mut conflict = None;
                for &q in &implications {
                    match self.value_lit(q) {
                        LBool::True => {}
                        LBool::Undef => self.enqueue(q, Reason::Binary(!p)),
                        LBool::False => {
                            conflict = Some(Conflict::Binary(q, !p));
                            break;
                        }
                    }
                }
                self.bin_watches[p.code()] = implications;
                if let Some(conflict) = conflict {
                    self.qhead = self.trail.len();
                    self.qhead_bin = self.trail.len();
                    return Some(conflict);
                }
            }

            // Phase 2: one long-clause step, then back to the binaries.
            if self.qhead >= self.trail.len() {
                return None;
            }
            let p = self.trail[self.qhead];
            self.qhead += 1;

            // Move the list out for the scan; during the scan no watcher can
            // be pushed onto `p`'s own list (a new watch `!lk` equals `p`
            // only if `lk == !p`, and `!p` is false here, never a valid new
            // watch), so the compacted list is moved back in O(1) below.
            let mut conflict = None;
            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            'watchers: while i < watchers.len() {
                let w = watchers[i];
                // Fast path: the blocker literal is already true.
                if self.value_lit(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let ci = w.clause as usize;
                let header = self.headers[ci];
                if header.deleted {
                    watchers.swap_remove(i);
                    continue;
                }
                let s = header.start as usize;
                // Make sure the false literal (!p) is at position 1.
                if self.clause_lits[s] == !p {
                    self.clause_lits.swap(s, s + 1);
                }
                debug_assert_eq!(self.clause_lits[s + 1], !p);
                let first = self.clause_lits[s];
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    watchers[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = header.len as usize;
                for k in 2..len {
                    let lk = self.clause_lits[s + k];
                    if self.value_lit(lk) != LBool::False {
                        self.clause_lits.swap(s + 1, s + k);
                        self.watches[(!lk).code()].push(Watcher {
                            clause: w.clause,
                            blocker: first,
                        });
                        watchers.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // No new watch found: the clause is unit or conflicting.
                watchers[i].blocker = first;
                if self.value_lit(first) == LBool::False {
                    conflict = Some(Conflict::Long(w.clause));
                    self.qhead = self.trail.len();
                    self.qhead_bin = self.trail.len();
                    // Copy back the remaining watchers untouched.
                    break;
                } else {
                    self.enqueue(first, Reason::Long(w.clause));
                    i += 1;
                }
            }
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = watchers;
            if conflict.is_some() {
                return conflict;
            }
        }
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > 1e100 {
            // Rescaling divides every activity by the same factor, so the
            // heap order is unchanged.
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(var, &self.activity);
    }

    fn bump_clause(&mut self, clause: u32) {
        let c = &mut self.headers[clause as usize];
        c.activity += self.clause_inc;
        if c.activity > 1e20 {
            for cl in &mut self.headers {
                cl.activity *= 1e-20;
            }
            self.clause_inc *= 1e-20;
        }
    }

    fn analyze(&mut self, confl: Conflict) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut index = self.trail.len();
        let current_level = self.decision_level();
        let mut lits = std::mem::take(&mut self.analyze_scratch);

        loop {
            lits.clear();
            match confl {
                Conflict::Long(ci) => {
                    if self.headers[ci as usize].learnt {
                        self.bump_clause(ci);
                    }
                    lits.extend_from_slice(self.lits_of(ci));
                }
                Conflict::Binary(a, b) => {
                    lits.push(a);
                    lits.push(b);
                }
            }
            let start = usize::from(p.is_some());
            for &q in &lits[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.var_data[v.index()].level > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.var_data[v.index()].level >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = match self.var_data[lit.var().index()].reason {
                Reason::Long(ci) => Conflict::Long(ci),
                // The antecedent is the binary clause (lit ∨ other); putting
                // the resolved literal first lets the `start` skip above
                // treat it exactly like a long reason clause.
                Reason::Binary(other) => Conflict::Binary(lit, other),
                Reason::Decision => unreachable!("non-decision literal must have a reason"),
            };
        }
        self.analyze_scratch = lits;
        learnt[0] = !p.expect("conflict analysis visits at least one literal");

        // Clear the `seen` markers of the literals kept in the learnt clause.
        for &l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }

        // Compute the backtrack level: the highest level among learnt[1..].
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.var_data[learnt[i].var().index()].level
                    > self.var_data[learnt[max_i].var().index()].level
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.var_data[learnt[1].var().index()].level
        };
        (learnt, backtrack_level)
    }

    pub(crate) fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        for i in (target..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.assigns[v.index()] = LBool::Undef;
            // Scrub the reason on unassignment: a clause-index reason on an
            // unassigned variable would dangle across database reduction,
            // arena collection and simplifier rebuilds. This store makes
            // "unassigned ⇒ no clause reference" a global invariant that
            // `debug_validate` checks unconditionally.
            self.var_data[v.index()].reason = Reason::Decision;
            self.phase[v.index()] = lit.is_positive();
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
        self.qhead_bin = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(var) = self.order.pop(&self.activity) {
            if self.value_var(var) == LBool::Undef && !self.eliminated[var.index()] {
                return Some(var);
            }
        }
        None
    }

    /// Number of distinct decision levels among a clause's literals — the
    /// "literal block distance" quality measure of Glucose. Low-LBD clauses
    /// connect few decision levels and tend to stay useful for the rest of
    /// the search.
    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.var_data[l.var().index()].level)
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn reduce_db(&mut self) {
        // Mark the clauses currently locked as a propagation reason. Only
        // trail (i.e. assigned) variables can carry clause reasons:
        // `backtrack_to` scrubs the reason on every unassignment, so the
        // trail walk sees every live lock. The marks live in a reusable
        // vector (re-zeroed by the clear + resize here), so the whole
        // reduction allocates nothing once the buffers are warm.
        self.locked_marks.clear();
        self.locked_marks.resize(self.headers.len(), false);
        for i in 0..self.trail.len() {
            if let Reason::Long(c) = self.var_data[self.trail[i].var().index()].reason {
                self.locked_marks[c as usize] = true;
            }
        }
        // Retention policy: glue clauses (LBD <= 2) are kept unconditionally;
        // the rest are ranked worst-first by (high LBD, low activity) and the
        // worst half deleted.
        let mut order = std::mem::take(&mut self.reduce_scratch);
        order.clear();
        order.extend(
            self.headers
                .iter()
                .enumerate()
                .filter(|(_, c)| c.learnt && !c.deleted && c.lbd > 2)
                .map(|(i, _)| i as u32),
        );
        order.sort_unstable_by(|&a, &b| {
            let (ca, cb) = (&self.headers[a as usize], &self.headers[b as usize]);
            cb.lbd
                .cmp(&ca.lbd)
                .then_with(|| {
                    ca.activity
                        .partial_cmp(&cb.activity)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.cmp(&b))
        });
        let to_remove = order.len() / 2;
        let mut removed = 0;
        for &idx in order.iter() {
            if removed >= to_remove {
                break;
            }
            let idx = idx as usize;
            if self.locked_marks[idx] {
                continue;
            }
            self.log_delete_clause(idx as u32);
            // The header is tombstoned; its literals stay in the arena as a
            // hole (propagation never visits them again because the watcher
            // entries are dropped lazily) until the compacting collection
            // below reclaims them.
            self.headers[idx].deleted = true;
            self.wasted_lits += self.headers[idx].len as usize;
            removed += 1;
            self.num_learnts -= 1;
            self.stats.deleted_clauses += 1;
        }
        self.reduce_scratch = order;
        self.stats.learnt_clauses = self.num_learnts as u64;
        if self.wasted_lits * Self::GC_WASTE_DENOMINATOR >= self.clause_lits.len()
            && self.wasted_lits > 0
        {
            self.collect_arena();
        }
    }

    /// Compacting garbage collection of the clause arena: rebuilds
    /// `clause_lits`/`headers` without the tombstoned holes and remaps every
    /// watcher and reason index to the surviving clauses. Dead watchers
    /// (lazily-deleted clauses) are dropped in the same sweep.
    fn collect_arena(&mut self) {
        let mut remap: Vec<u32> = vec![u32::MAX; self.headers.len()];
        let live = self.headers.iter().filter(|h| !h.deleted).count();
        let mut new_headers: Vec<ClauseHeader> = Vec::with_capacity(live);
        let mut new_lits: Vec<Lit> =
            Vec::with_capacity(self.clause_lits.len().saturating_sub(self.wasted_lits));
        for (i, h) in self.headers.iter().enumerate() {
            if h.deleted {
                continue;
            }
            remap[i] = new_headers.len() as u32;
            let start = new_lits.len() as u32;
            new_lits
                .extend_from_slice(&self.clause_lits[h.start as usize..(h.start + h.len) as usize]);
            new_headers.push(ClauseHeader { start, ..*h });
        }
        for list in &mut self.watches {
            list.retain_mut(|w| {
                let mapped = remap[w.clause as usize];
                if mapped == u32::MAX {
                    false
                } else {
                    w.clause = mapped;
                    true
                }
            });
        }
        // Remap the reasons of assigned (trail) variables. Unassigned
        // variables hold no clause reference — `backtrack_to` scrubs the
        // reason on unassignment — so the trail walk covers every index
        // into the old arena; the debug sweep below pins that invariant.
        for i in 0..self.trail.len() {
            let vi = self.trail[i].var().index();
            if let Reason::Long(c) = self.var_data[vi].reason {
                debug_assert_ne!(remap[c as usize], u32::MAX, "reason clause must survive GC");
                self.var_data[vi].reason = Reason::Long(remap[c as usize]);
            }
        }
        #[cfg(debug_assertions)]
        for (vi, d) in self.var_data.iter().enumerate() {
            if self.assigns[vi] == LBool::Undef {
                debug_assert!(
                    !matches!(d.reason, Reason::Long(_)),
                    "unassigned v{vi} carries a clause-index reason into arena GC"
                );
            }
        }
        self.headers = new_headers;
        self.clause_lits = new_lits;
        self.wasted_lits = 0;
        self.stats.arena_collections += 1;
    }

    /// Resets the arena-hole accounting (the simplifier's rebuild starts
    /// from an empty, hole-free arena).
    pub(crate) fn reset_waste(&mut self) {
        self.wasted_lits = 0;
    }

    /// Exhaustive internal-invariant check used by the test suites: every
    /// live arena clause is at least ternary and watched on exactly its
    /// first two literals, every watcher points at a live clause through the
    /// correct literal, and every propagation reason refers to a live clause
    /// whose first literal is the propagated one. Dead watchers are only
    /// tolerated for tombstoned (not yet collected) clauses.
    ///
    /// Returns a description of the first violation found.
    pub fn debug_validate(&self) -> Result<(), String> {
        let mut watch_count = vec![0usize; self.headers.len()];
        for (code, list) in self.watches.iter().enumerate() {
            let watched = !Lit::from_code(code);
            for w in list {
                let Some(h) = self.headers.get(w.clause as usize) else {
                    return Err(format!("watcher points at missing clause {}", w.clause));
                };
                if h.deleted {
                    continue; // lazily-deleted watcher, dropped on next visit or GC
                }
                let lits = self.lits_of(w.clause);
                if lits[0] != watched && lits[1] != watched {
                    return Err(format!(
                        "clause {} watched through {watched} which is not in its first two \
                         literals {lits:?}",
                        w.clause
                    ));
                }
                watch_count[w.clause as usize] += 1;
            }
        }
        for (i, h) in self.headers.iter().enumerate() {
            if h.deleted {
                continue;
            }
            if h.len < 3 {
                return Err(format!("arena clause {i} has {} literals", h.len));
            }
            if watch_count[i] != 2 {
                return Err(format!(
                    "clause {i} has {} watchers, expected 2",
                    watch_count[i]
                ));
            }
        }
        for (vi, d) in self.var_data.iter().enumerate() {
            if self.assigns[vi] == LBool::Undef {
                // `backtrack_to` scrubs reasons on unassignment; a clause
                // index surviving here would dangle across the next
                // reduction, collection or rebuild.
                if let Reason::Long(c) = d.reason {
                    return Err(format!(
                        "unassigned v{vi} carries stale clause-index reason {c}"
                    ));
                }
                continue;
            }
            if let Reason::Long(c) = d.reason {
                let Some(h) = self.headers.get(c as usize) else {
                    return Err(format!("reason of v{vi} points at missing clause {c}"));
                };
                if h.deleted {
                    return Err(format!("reason of v{vi} points at deleted clause {c}"));
                }
                if self.lits_of(c)[0].var().index() != vi {
                    return Err(format!(
                        "reason clause {c} of v{vi} does not start with its literal"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...).
    fn luby(i: u64) -> u64 {
        let mut seq = 0u32;
        let mut size = 1u64;
        while size < i + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        let mut i = i;
        while size - 1 != i {
            size = (size - 1) / 2;
            seq -= 1;
            i %= size;
        }
        1u64 << seq
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals.
    ///
    /// Assumptions are treated as decisions made before any free decision; if
    /// they are inconsistent with the formula the result is
    /// [`SatResult::Unsat`] without the assumptions becoming learned facts.
    ///
    /// # Incremental solving
    ///
    /// Successive calls form an *incremental session*: everything expensive
    /// the solver has built up — the learned-clause database, VSIDS variable
    /// activities, saved phases and the level-0 trail of implied facts — is
    /// kept between calls rather than rebuilt. Clauses (and variables) may be
    /// added between calls, which is how the `bmc` unrolling extends a proof
    /// to a deeper bound without restarting the search from nothing, and
    /// per-call obligations are expressed through *activation literals*:
    /// add `(!act ∨ c₁ ∨ …)`, solve with `act` assumed, then retire the
    /// obligation forever with the unit clause `!act`.
    ///
    /// Learned clauses stay sound across calls because assumptions are
    /// pseudo-decisions, never units: every learned clause is implied by the
    /// problem clauses alone.
    ///
    /// ```
    /// use sat::{Solver, SatResult};
    ///
    /// let mut solver = Solver::new();
    /// let x = solver.new_var().positive();
    /// let act = solver.new_var().positive();
    /// solver.add_clause([!act, x]); // obligation "x" guarded by `act`
    /// assert!(solver.solve_with_assumptions(&[act, !x]).is_unsat());
    /// solver.add_clause([!act]);    // retire the obligation ...
    /// assert!(solver.solve_with_assumptions(&[!x]).is_sat()); // ... gone
    /// ```
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        // Telemetry wrapper: with no sink installed this adds one branch and
        // falls straight through to the search; with tracing on it records a
        // `sat.search` span carrying the episode's counter deltas.
        if !obs::enabled() {
            return self.solve_assumptions_inner(assumptions);
        }
        let mut span = obs::span("sat.search");
        let before = self.stats;
        let result = self.solve_assumptions_inner(assumptions);
        let delta = self.stats.delta_since(&before);
        span.attr_str(
            "result",
            match &result {
                SatResult::Sat(_) => "sat",
                SatResult::Unsat => "unsat",
                SatResult::Unknown => "unknown",
            },
        );
        span.attr_u64("decisions", delta.decisions);
        span.attr_u64("conflicts", delta.conflicts);
        span.attr_u64("propagations", delta.propagations);
        span.attr_u64("restarts", delta.restarts);
        span.attr_u64("arena_collections", delta.arena_collections);
        obs::counter("conflicts", delta.conflicts);
        obs::counter("propagations", delta.propagations);
        obs::counter("restarts", delta.restarts);
        obs::counter("arena_collections", delta.arena_collections);
        if let Some(p) = &self.proof {
            // Marker child span carrying the certificate-size attributes of
            // the proof log accumulated so far.
            let mut pspan = obs::span("sat.proof_log");
            pspan.attr_u64("events", p.num_events() as u64);
            pspan.attr_u64("axioms", p.num_axioms() as u64);
            pspan.attr_u64("lemmas", p.num_lemmas() as u64);
            pspan.attr_u64("deletions", p.num_deletions() as u64);
            pspan.attr_u64("size_bytes", p.size_bytes() as u64);
        }
        result
    }

    fn solve_assumptions_inner(&mut self, assumptions: &[Lit]) -> SatResult {
        for a in assumptions {
            assert!(
                !self.eliminated[a.var().index()],
                "assumption {a} refers to an eliminated variable; assumption \
                 variables must be frozen before `simplify`"
            );
        }
        if !self.ok {
            return SatResult::Unsat;
        }
        if self.interrupt_raised() {
            return SatResult::Unknown;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }

        let mut restart_count = 0u64;
        let restart_base = 128u64;
        let conflict_start = self.stats.conflicts;

        loop {
            let budget = restart_base * Self::luby(restart_count);
            match self.search(budget, assumptions, conflict_start) {
                SearchOutcome::Sat => {
                    let mut values: Vec<bool> = self
                        .assigns
                        .iter()
                        .enumerate()
                        .map(|(i, v)| match v {
                            LBool::True => true,
                            LBool::False => false,
                            LBool::Undef => self.phase[i],
                        })
                        .collect();
                    self.extend_model(&mut values);
                    self.backtrack_to(0);
                    return SatResult::Sat(Model::new(values));
                }
                SearchOutcome::Unsat => {
                    self.backtrack_to(0);
                    return SatResult::Unsat;
                }
                SearchOutcome::Restart => {
                    restart_count += 1;
                    self.stats.restarts += 1;
                    self.backtrack_to(0);
                }
                SearchOutcome::LimitReached => {
                    self.backtrack_to(0);
                    return SatResult::Unknown;
                }
            }
        }
    }

    fn search(
        &mut self,
        conflict_budget: u64,
        assumptions: &[Lit],
        conflict_start: u64,
    ) -> SearchOutcome {
        let mut conflicts_this_round = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_round += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                // Conflicts below the assumption levels mean the assumptions
                // themselves are contradictory with the formula.
                let (learnt, backtrack_level) = self.analyze(confl);
                self.backtrack_to(backtrack_level);
                self.log_lemma(&learnt);
                match learnt.len() {
                    1 => self.enqueue(learnt[0], Reason::Decision),
                    2 => {
                        self.attach_binary(learnt[0], learnt[1]);
                        self.enqueue(learnt[0], Reason::Binary(learnt[1]));
                    }
                    _ => {
                        let lbd = self.compute_lbd(&learnt);
                        let first = learnt[0];
                        let cref = self.attach_clause(learnt, true);
                        self.headers[cref as usize].lbd = lbd;
                        self.enqueue(first, Reason::Long(cref));
                    }
                }
                self.var_inc /= 0.95;
                self.clause_inc /= 0.999;
                if let Some(limit) = self.conflict_limit {
                    if self.stats.conflicts - conflict_start >= limit {
                        return SearchOutcome::LimitReached;
                    }
                }
                if self.interrupt_raised() {
                    return SearchOutcome::LimitReached;
                }
                if self.num_learnts > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts += self.max_learnts / 2;
                }
                if conflicts_this_round >= conflict_budget {
                    return SearchOutcome::Restart;
                }
            } else {
                // Place assumptions as pseudo-decisions first.
                let mut next_decision = None;
                for &a in assumptions {
                    match self.value_lit(a) {
                        LBool::True => continue,
                        LBool::False => return SearchOutcome::Unsat,
                        LBool::Undef => {
                            next_decision = Some(a);
                            break;
                        }
                    }
                }
                let decision = match next_decision {
                    Some(a) => Some(a),
                    None => self.pick_branch_var().map(|v| {
                        let phase = self.phase[v.index()];
                        Lit::new(v, phase)
                    }),
                };
                match decision {
                    None => return SearchOutcome::Sat,
                    Some(lit) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, Reason::Decision);
                    }
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    LimitReached,
}

#[cfg(test)]
// The pigeonhole builders index two parallel axes; an iterator form would
// obscure the symmetry the clauses encode.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| solver.new_var().positive()).collect()
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause([v[0]]);
        assert!(s.solve().is_sat());

        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause([v[0]]);
        s.add_clause([!v[0]]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = lits(&mut s, 1);
        s.add_clause(std::iter::empty());
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        let clauses = vec![
            vec![v[0], v[1]],
            vec![!v[0], v[2]],
            vec![!v[1], v[3]],
            vec![!v[2], !v[3]],
            vec![v[1], v[2], v[3]],
        ];
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        let result = s.solve();
        let model = result.model().expect("satisfiable");
        for c in &clauses {
            assert!(
                c.iter().any(|&l| model.lit_is_true(l)),
                "clause {c:?} unsatisfied"
            );
        }
    }

    #[test]
    fn binary_chain_propagates_to_fixpoint() {
        // A pure implication chain: v0 -> v1 -> ... -> v9. Asserting v0
        // must propagate the whole chain without a single decision.
        let mut s = Solver::new();
        let v = lits(&mut s, 10);
        for i in 0..9 {
            s.add_clause([!v[i], v[i + 1]]);
        }
        s.add_clause([v[0]]);
        let before = s.stats();
        let result = s.solve();
        let model = result.model().expect("sat");
        for &l in &v {
            assert!(model.lit_is_true(l));
        }
        assert_eq!(s.stats().delta_since(&before).decisions, 0);
    }

    #[test]
    fn binary_conflict_is_analyzed_correctly() {
        // v0 -> v1 and v0 -> !v1 force !v0 through a binary-clause conflict.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[0], !v[1]]);
        s.add_clause([v[0], v[2]]);
        let result = s.solve();
        let model = result.model().expect("sat");
        assert!(!model.lit_is_true(v[0]));
        assert!(model.lit_is_true(v[2]));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: classic small UNSAT instance that requires real
        // conflict analysis.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var().positive()).collect())
            .collect();
        for pigeon in &p {
            s.add_clause(pigeon.iter().copied());
        }
        for hole in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause([!p[a][hole], !p[b][hole]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn pigeonhole_5_into_4_is_unsat() {
        let n = 5;
        let m = 4;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..m).map(|_| s.new_var().positive()).collect())
            .collect();
        for pigeon in &p {
            s.add_clause(pigeon.iter().copied());
        }
        for hole in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause([!p[a][hole], !p[b][hole]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn xor_chain_is_satisfiable_with_correct_parity() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, x2 ^ x0 = 0 is consistent.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor = |s: &mut Solver, a: Lit, b: Lit, value: bool| {
            if value {
                s.add_clause([a, b]);
                s.add_clause([!a, !b]);
            } else {
                s.add_clause([!a, b]);
                s.add_clause([a, !b]);
            }
        };
        xor(&mut s, v[0], v[1], true);
        xor(&mut s, v[1], v[2], true);
        xor(&mut s, v[2], v[0], false);
        let model = s.solve();
        let m = model.model().expect("sat");
        assert_ne!(m.lit_is_true(v[0]), m.lit_is_true(v[1]));
        assert_ne!(m.lit_is_true(v[1]), m.lit_is_true(v[2]));
        assert_eq!(m.lit_is_true(v[2]), m.lit_is_true(v[0]));
    }

    #[test]
    fn xor_chain_with_odd_total_parity_is_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor = |s: &mut Solver, a: Lit, b: Lit, value: bool| {
            if value {
                s.add_clause([a, b]);
                s.add_clause([!a, !b]);
            } else {
                s.add_clause([!a, b]);
                s.add_clause([a, !b]);
            }
        };
        xor(&mut s, v[0], v[1], true);
        xor(&mut s, v[1], v[2], true);
        xor(&mut s, v[2], v[0], true);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn assumptions_restrict_the_search() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        // Assuming both false contradicts the clause.
        assert!(s.solve_with_assumptions(&[!v[0], !v[1]]).is_unsat());
        // The formula itself is still satisfiable afterwards.
        assert!(s.solve().is_sat());
        // Assumption-compatible solve returns a model honoring them.
        let r = s.solve_with_assumptions(&[!v[0]]);
        let m = r.model().expect("sat");
        assert!(!m.lit_is_true(v[0]));
        assert!(m.lit_is_true(v[1]));
    }

    #[test]
    fn conflict_limit_yields_unknown_on_hard_instance() {
        // Pigeonhole 7 into 6 is hard enough that a tiny conflict budget is
        // exhausted before the proof completes.
        let n = 7;
        let m = 6;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..m).map(|_| s.new_var().positive()).collect())
            .collect();
        for pigeon in &p {
            s.add_clause(pigeon.iter().copied());
        }
        for hole in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause([!p[a][hole], !p[b][hole]]);
                }
            }
        }
        s.set_conflict_limit(Some(10));
        assert_eq!(s.solve(), SatResult::Unknown);
        s.set_conflict_limit(None);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_tolerated() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[0], v[1]]);
        s.add_clause([v[0], !v[0]]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn add_formula_imports_cnf() {
        let mut cnf = CnfFormula::new();
        let a = cnf.new_var().positive();
        let b = cnf.new_var().positive();
        cnf.add_clause([a, b]);
        cnf.add_clause([!a]);
        let mut s = Solver::new();
        s.add_formula(&cnf);
        let r = s.solve();
        let m = r.model().expect("sat");
        assert!(!m.lit_is_true(a));
        assert!(m.lit_is_true(b));
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn stats_are_populated() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1], v[2]]);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[1], v[2]]);
        let _ = s.solve();
        assert!(s.stats().decisions > 0 || s.stats().propagations > 0);
    }

    fn pigeonhole(n: usize, m: usize) -> Solver {
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..m).map(|_| s.new_var().positive()).collect())
            .collect();
        for pigeon in &p {
            s.add_clause(pigeon.iter().copied());
        }
        for hole in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause([!p[a][hole], !p[b][hole]]);
                }
            }
        }
        s
    }

    #[test]
    fn raised_interrupt_yields_unknown_and_is_recoverable() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let mut s = pigeonhole(7, 6);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Some(flag.clone()));
        assert!(s.interrupt_raised());
        assert_eq!(s.solve(), SatResult::Unknown);
        // Clearing the flag makes the same solver usable again.
        flag.store(false, Ordering::Relaxed);
        assert!(!s.interrupt_raised());
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn stats_delta_isolates_one_call() {
        let mut s = pigeonhole(5, 4);
        let before = s.stats();
        assert!(s.solve().is_unsat());
        let spent = s.stats().delta_since(&before);
        assert!(spent.conflicts > 0);
        assert_eq!(spent.conflicts, s.stats().conflicts - before.conflicts);
        // A second snapshot right away spends nothing.
        let before = s.stats();
        let spent = s.stats().delta_since(&before);
        assert_eq!(spent.conflicts, 0);
        assert_eq!(spent.decisions, 0);
    }

    #[test]
    fn activation_literals_retire_obligations() {
        let mut s = Solver::new();
        let x = lits(&mut s, 1)[0];
        let act1 = s.new_var().positive();
        let act2 = s.new_var().positive();
        s.add_clause([!act1, x]);
        s.add_clause([!act2, !x]);
        // Both obligations active at once: contradiction.
        assert!(s.solve_with_assumptions(&[act1, act2]).is_unsat());
        // Individually each is fine.
        assert!(s.solve_with_assumptions(&[act1]).is_sat());
        assert!(s.solve_with_assumptions(&[act2]).is_sat());
        // Permanently retire obligation 1; obligation 2 plus x is now the
        // only constraint set.
        s.add_clause([!act1]);
        let r = s.solve_with_assumptions(&[act2]);
        assert!(r.model().expect("sat").lit_is_true(!x));
    }

    #[test]
    fn solver_is_reusable_after_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        assert!(s.solve().is_sat());
        s.add_clause([!v[0]]);
        assert!(s.solve().is_sat());
        s.add_clause([!v[1]]);
        assert!(s.solve().is_unsat());
        // Once unsat, always unsat.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn reduction_compacts_the_arena() {
        // A small learnt budget forces many database reductions on a hard
        // instance; the compacting collector must keep the wasted-hole ratio
        // below the documented bound and the watch/reason structures intact.
        let mut s = pigeonhole(7, 6);
        s.set_learnt_budget(32);
        assert!(s.solve().is_unsat());
        assert!(s.stats().deleted_clauses > 0, "reductions must have run");
        assert!(s.stats().arena_collections > 0, "collections must have run");
        assert!(
            s.arena_wasted_ratio() < 0.25,
            "wasted ratio {} out of bounds",
            s.arena_wasted_ratio()
        );
        s.debug_validate().expect("invariants hold after GC");
    }

    #[test]
    fn binary_clauses_bypass_the_arena() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[1], v[2]]);
        assert_eq!(s.num_clauses(), 2);
        // Nothing reached the arena: both clauses are pure implications.
        assert!(s.headers.is_empty());
        assert!(s.clause_lits.is_empty());
        assert!(s.solve().is_sat());
    }
}
