//! Measures the cost of checkable verdicts: DRAT proof logging, certificate
//! production (trimming for proofs, witness decoding for alerts) and — the
//! figure that matters for the serving tier — how much faster *checking* a
//! certificate is than re-solving the query it certifies.
//!
//! Timings per scenario at a common bound:
//!
//! * `resolve_seconds` — a plain session answering the query (the cost of
//!   "just solve it again" verification); run twice, because the repeat run's
//!   delta is the noise floor that bounds the disabled logging hook's cost;
//! * `logged_seconds` — the same query with DRAT logging on but no
//!   certificate packaging (isolates the logging overhead);
//! * `certify_seconds` — logging on *and* packaging the verdict (proof
//!   trimming or witness decoding included);
//! * `check_seconds` — replaying the produced certificate through the
//!   independent checkers (`sat::drat::check` or the `sim` witness replay).
//!
//! Results are printed as a table and written to `BENCH_cert.json`. The
//! aggregate records the check-vs-resolve speedup and the overhead the
//! logging run pays over the plain run.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin cert_stats                # registry at k=2
//! cargo run --release -p bench --bin cert_stats -- orc meltdown
//! cargo run --release -p bench --bin cert_stats -- --k 3 orc
//! cargo run --release -p bench --bin cert_stats -- --out /tmp/cert.json
//! cargo run --release -p bench --bin cert_stats -- --smoke     # CI smoke gate
//! ```
//!
//! `--smoke` is the fast CI gate wired into `scripts/verify.sh`: a
//! three-scenario subset at k=1 must produce certified verdicts that agree
//! with the plain path *and* pass their independent checks (exit code 1
//! otherwise); no JSON is written.

use bench::json::JsonObject;
use std::time::Instant;
use upec::engine::IncrementalSession;
use upec::scenarios::{self, ScenarioSpec};
use upec::{UpecOptions, VerdictCertificate};

/// Scenario subset exercised by `--smoke`: one witness certificate (the SAT
/// path with trace decoding and replay) plus two proof certificates over
/// different commitments (the UNSAT path with trimming) — all cheap at k=1.
const SMOKE_IDS: [&str; 3] = ["meltdown", "orc", "secure-arch-only"];

/// One scenario's measurements.
struct Row {
    id: &'static str,
    k: usize,
    verdict: &'static str,
    kind: &'static str,
    resolve_seconds: f64,
    resolve_repeat_seconds: f64,
    logged_seconds: f64,
    certify_seconds: f64,
    check_seconds: f64,
    log_events: usize,
    cert_events: usize,
    cert_bytes: usize,
}

fn measure(spec: &ScenarioSpec, k: usize) -> Result<Row, String> {
    let model = spec.build_model();
    let commitment = spec.commitment_set(&model);

    // Plain re-solve: what verifying the verdict costs without certificates.
    // Run twice (fresh sessions) — the repeat quantifies the run-to-run noise
    // floor that the disabled proof-logging hook's cost sits below.
    let mut plain = IncrementalSession::with_options(&model, UpecOptions::window(k));
    let start = Instant::now();
    let plain_outcome = plain.check_bound(k, &commitment);
    let resolve_seconds = start.elapsed().as_secs_f64();
    let mut repeat = IncrementalSession::with_options(&model, UpecOptions::window(k));
    let start = Instant::now();
    let repeat_outcome = repeat.check_bound(k, &commitment);
    let resolve_repeat_seconds = start.elapsed().as_secs_f64();

    // Logging on, no certificate packaging: isolates the proof-logging cost
    // from trimming/decoding.
    let options = UpecOptions::window(k).with_certificates();
    let mut logged = IncrementalSession::with_options(&model, options);
    let start = Instant::now();
    let logged_outcome = logged.check_bound(k, &commitment);
    let logged_seconds = start.elapsed().as_secs_f64();

    // Logging session: solve the same query and package the verdict.
    let mut session = IncrementalSession::with_options(&model, options);
    let start = Instant::now();
    let (outcome, certificate) = session
        .check_bound_certified(k, &commitment)
        .map_err(|e| format!("{}: certified query failed: {e}", spec.id))?;
    let certify_seconds = start.elapsed().as_secs_f64();

    for (name, other) in [
        ("repeat", &repeat_outcome),
        ("logged", &logged_outcome),
        ("certified", &outcome),
    ] {
        if other.verdict_name() != plain_outcome.verdict_name() {
            return Err(format!(
                "{}: verdict drift — plain={} {name}={}",
                spec.id,
                plain_outcome.verdict_name(),
                other.verdict_name()
            ));
        }
    }
    let certificate = certificate
        .ok_or_else(|| format!("{}: decided verdict produced no certificate", spec.id))?;
    let log_events = session
        .proof_log()
        .map(sat::ProofLog::num_events)
        .unwrap_or(0);

    // The serving-tier operation: re-check the certificate independently.
    let start = Instant::now();
    let check = certificate.check(&model);
    let check_seconds = start.elapsed().as_secs_f64();
    if let Err(e) = check {
        return Err(format!("{}: certificate rejected: {e}", spec.id));
    }

    let cert_events = match &certificate {
        VerdictCertificate::Proof(c) => c.proof.num_events(),
        VerdictCertificate::Witness(c) => c.trace.num_bindings(),
    };
    Ok(Row {
        id: spec.id,
        k,
        verdict: outcome.verdict_name(),
        kind: certificate.kind_name(),
        resolve_seconds,
        resolve_repeat_seconds,
        logged_seconds,
        certify_seconds,
        check_seconds,
        log_events,
        cert_events,
        cert_bytes: certificate.size_bytes(),
    })
}

fn json_entry(row: &Row) -> String {
    let trim_ratio = if row.log_events > 0 {
        row.cert_events as f64 / row.log_events as f64
    } else {
        0.0
    };
    let entry = JsonObject::new()
        .field_str("id", row.id)
        .field_usize("k", row.k)
        .field_str("verdict", row.verdict)
        .field_str("certificate", row.kind)
        .field_f64("resolve_seconds", row.resolve_seconds, 3)
        .field_f64("resolve_repeat_seconds", row.resolve_repeat_seconds, 3)
        .field_f64("logged_seconds", row.logged_seconds, 3)
        .field_f64("certify_seconds", row.certify_seconds, 3)
        .field_f64("check_seconds", row.check_seconds, 4)
        .field_usize("log_events", row.log_events)
        .field_usize("certificate_events", row.cert_events)
        .field_usize("certificate_bytes", row.cert_bytes)
        .field_f64("trim_ratio", trim_ratio, 4)
        .field_f64(
            "check_speedup",
            row.resolve_seconds / row.check_seconds.max(1e-9),
            1,
        )
        .finish();
    format!("    {entry}")
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut ids: Vec<String> = Vec::new();
    let mut k_override: Option<usize> = None;
    let mut out_path = "BENCH_cert.json".to_string();
    let mut smoke = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--k" => {
                let parsed = args.next().and_then(|v| v.parse().ok());
                let Some(k) = parsed else {
                    eprintln!("--k needs a numeric value");
                    std::process::exit(2);
                };
                k_override = Some(k);
            }
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                };
                out_path = path;
            }
            "--smoke" => smoke = true,
            id => ids.push(id.to_string()),
        }
    }
    if smoke && ids.is_empty() {
        ids = SMOKE_IDS.iter().map(|s| s.to_string()).collect();
    }
    if ids.is_empty() {
        ids = scenarios::all().iter().map(|s| s.id.to_string()).collect();
    }
    let k = k_override.unwrap_or(if smoke { 1 } else { 2 });

    println!(
        "{:<18} {:>2}  {:<8} {:<8}  {:>8} {:>8} {:>8} {:>8}  {:>9} {:>9} {:>10}",
        "scenario",
        "k",
        "verdict",
        "cert",
        "resolve",
        "logged",
        "certify",
        "check",
        "log-ev",
        "cert-ev",
        "bytes"
    );
    let mut rows = Vec::new();
    let mut failed = false;
    for id in &ids {
        let spec = scenarios::by_id(id).unwrap_or_else(|| {
            eprintln!("unknown scenario `{id}`; known ids:");
            for s in scenarios::all() {
                eprintln!("  {}", s.id);
            }
            std::process::exit(2);
        });
        match measure(&spec, k) {
            Ok(row) => {
                println!(
                    "{:<18} {:>2}  {:<8} {:<8}  {:>7.2}s {:>7.2}s {:>7.2}s {:>7.4}s  {:>9} {:>9} {:>10}",
                    row.id,
                    row.k,
                    row.verdict,
                    row.kind,
                    row.resolve_seconds,
                    row.logged_seconds,
                    row.certify_seconds,
                    row.check_seconds,
                    row.log_events,
                    row.cert_events,
                    row.cert_bytes,
                );
                rows.push(row);
            }
            Err(message) => {
                eprintln!("FAIL {message}");
                failed = true;
            }
        }
    }

    let resolve: f64 = rows.iter().map(|r| r.resolve_seconds).sum();
    let repeat: f64 = rows.iter().map(|r| r.resolve_repeat_seconds).sum();
    let logged: f64 = rows.iter().map(|r| r.logged_seconds).sum();
    let certify: f64 = rows.iter().map(|r| r.certify_seconds).sum();
    let check: f64 = rows.iter().map(|r| r.check_seconds).sum();
    let speedup = resolve / check.max(1e-9);
    let percent_over = |value: f64| {
        if resolve > 0.0 {
            100.0 * (value - resolve) / resolve
        } else {
            0.0
        }
    };
    // The disabled hook's cost is bounded by the run-to-run delta of two
    // identical logging-off runs; logging on is measured directly.
    let off_overhead = percent_over(repeat);
    let on_overhead = percent_over(logged);
    let certify_overhead = percent_over(certify);
    println!(
        "\naggregate: re-solve {resolve:.2}s (repeat {off_overhead:+.1}%), \
         logged {logged:.2}s ({on_overhead:+.1}%), certify {certify:.2}s \
         ({certify_overhead:+.1}%), check {check:.3}s \
         => checking is {speedup:.0}x faster than re-solving"
    );
    if smoke {
        // The smoke gate checks verdict/certificate integrity, not speed:
        // never overwrite the tracked bench JSON from here.
        if failed {
            std::process::exit(1);
        }
        println!("smoke: all verdicts certified and re-checked");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"cert_stats\",\n  \"unit\": \"seconds, proof-log events, bytes\",\n  \
         \"aggregate\": {{\"resolve_seconds\": {resolve:.3}, \"logged_seconds\": {logged:.3}, \
         \"certify_seconds\": {certify:.3}, \"check_seconds\": {check:.4}, \
         \"check_speedup\": {speedup:.1}, \"logging_off_delta_percent\": {off_overhead:.1}, \
         \"logging_on_overhead_percent\": {on_overhead:.1}, \
         \"certify_overhead_percent\": {certify_overhead:.1}}},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.iter().map(json_entry).collect::<Vec<_>>().join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");
    if failed {
        std::process::exit(1);
    }
}
