//! ISA-level golden model used for co-simulation against the RTL.

use crate::isa::{cause, csr, Instruction, Program};
use crate::SocConfig;
use std::collections::BTreeMap;

/// Privilege mode of the hart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// User mode (PMP checks apply).
    User,
    /// Machine mode (unrestricted memory access).
    Machine,
}

/// Architectural state and instruction-accurate interpreter for MiniRV.
///
/// The golden model executes programs at the ISA level — one instruction per
/// step, no pipeline, no cache — and serves as the reference against which
/// the RTL core is co-simulated. It implements the same PMP semantics as the
/// hardware (including, optionally, the TOR lock bug, so the ISA-compliance
/// violation of paper Sec. VII-C can be demonstrated as a divergence from a
/// *correct* golden model).
#[derive(Debug, Clone)]
pub struct GoldenModel {
    /// General-purpose registers.
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Privilege mode.
    pub mode: Mode,
    /// Machine exception PC.
    pub mepc: u32,
    /// Machine trap cause.
    pub mcause: u32,
    /// Machine trap vector.
    pub mtvec: u32,
    /// PMP address registers (TOR tops, word addresses).
    pub pmpaddr: [u32; 2],
    /// PMP configuration byte per entry (R=bit0, W=bit1, X=bit2, A=TOR
    /// assumed, L=bit7).
    pub pmpcfg: [u32; 2],
    /// Retired-instruction counter (used as the cycle CSR value at ISA
    /// level).
    pub cycles: u64,
    /// Data memory, word addressed.
    pub memory: BTreeMap<u32, u32>,
    num_registers: u32,
}

impl GoldenModel {
    /// Creates a golden model with the register count of `config`, all state
    /// zeroed and user mode selected.
    pub fn new(config: &SocConfig) -> Self {
        Self {
            regs: [0; 32],
            pc: 0,
            mode: Mode::User,
            mepc: 0,
            mcause: 0,
            mtvec: config.trap_vector,
            pmpaddr: [0; 2],
            pmpcfg: [0; 2],
            cycles: 0,
            memory: BTreeMap::new(),
            num_registers: config.num_registers,
        }
    }

    /// Writes a word into data memory.
    pub fn store_word(&mut self, addr: u32, value: u32) {
        self.memory.insert(addr & !3, value);
    }

    /// Reads a word from data memory (zero when never written).
    pub fn load_word(&self, addr: u32) -> u32 {
        self.memory.get(&(addr & !3)).copied().unwrap_or(0)
    }

    /// Configures the PMP so that `[base, top)` is inaccessible to user mode
    /// and locked, matching the `secret_data_protected` assumption of the
    /// UPEC property.
    pub fn protect_region(&mut self, base: u32, top: u32) {
        self.pmpaddr[0] = base >> 2;
        self.pmpaddr[1] = top >> 2;
        // Entry 0: region below the protected range, full user permissions.
        self.pmpcfg[0] = 0x07;
        // Entry 1: the protected range, no permissions, locked.
        self.pmpcfg[1] = 0x80;
    }

    fn read_reg(&self, r: u32) -> u32 {
        if r == 0 {
            0
        } else {
            self.regs[(r % self.num_registers) as usize]
        }
    }

    fn write_reg(&mut self, r: u32, value: u32) {
        let r = r % self.num_registers;
        if r != 0 {
            self.regs[r as usize] = value;
        }
    }

    /// PMP check: is a data access to `addr` permitted in the current mode?
    ///
    /// Machine mode is unrestricted; user mode accesses must fall in a TOR
    /// region whose configuration grants read/write permission.
    pub fn pmp_allows(&self, addr: u32) -> bool {
        if self.mode == Mode::Machine {
            return true;
        }
        let word = addr >> 2;
        let mut base = 0u32;
        for entry in 0..2 {
            let top = self.pmpaddr[entry];
            if word >= base && word < top {
                let cfg = self.pmpcfg[entry];
                return cfg & 0x3 == 0x3; // needs both R and W for simplicity
            }
            base = top;
        }
        // Outside every region: permitted (matches the RTL default).
        true
    }

    fn csr_read(&self, addr: u32) -> u32 {
        match addr {
            csr::MTVEC => self.mtvec,
            csr::MEPC => self.mepc,
            csr::MCAUSE => self.mcause,
            csr::PMPCFG0 => self.pmpcfg[0] | (self.pmpcfg[1] << 8),
            csr::PMPADDR0 => self.pmpaddr[0],
            csr::PMPADDR1 => self.pmpaddr[1],
            csr::CYCLE => self.cycles as u32,
            _ => 0,
        }
    }

    fn csr_write(&mut self, addr: u32, value: u32, config: &SocConfig) {
        if self.mode != Mode::Machine {
            return; // CSR writes are privileged; silently ignored here.
        }
        match addr {
            csr::MTVEC => self.mtvec = value,
            csr::MEPC => self.mepc = value,
            csr::MCAUSE => self.mcause = value,
            csr::PMPCFG0 => {
                if self.pmpcfg[0] & 0x80 == 0 {
                    self.pmpcfg[0] = value & 0xff;
                }
                if self.pmpcfg[1] & 0x80 == 0 {
                    self.pmpcfg[1] = (value >> 8) & 0xff;
                }
            }
            csr::PMPADDR0 => {
                // The RISC-V spec: if entry 1 is locked and in TOR mode, the
                // preceding address register (pmpaddr0) is locked too. The
                // buggy variant omits exactly this rule.
                let locked_by_self = self.pmpcfg[0] & 0x80 != 0;
                let locked_by_tor_rule = !config.pmp_tor_lock_bug && (self.pmpcfg[1] & 0x80 != 0);
                if !locked_by_self && !locked_by_tor_rule {
                    self.pmpaddr[0] = value;
                }
            }
            csr::PMPADDR1 if self.pmpcfg[1] & 0x80 == 0 => {
                self.pmpaddr[1] = value;
            }
            _ => {}
        }
    }

    fn trap(&mut self, cause_code: u32, faulting_pc: u32) {
        self.mepc = faulting_pc;
        self.mcause = cause_code;
        self.mode = Mode::Machine;
        self.pc = self.mtvec;
    }

    /// Executes a single instruction fetched from `program`.
    ///
    /// Returns the executed instruction (before any trap redirection).
    pub fn step(&mut self, program: &Program, config: &SocConfig) -> Instruction {
        let instruction = program.fetch(self.pc).unwrap_or_else(Instruction::nop);
        let pc = self.pc;
        let mut next_pc = pc.wrapping_add(4);
        self.cycles += 1;
        use Instruction::*;
        match instruction {
            Lui { rd, imm } => self.write_reg(rd, imm),
            Jal { rd, offset } => {
                self.write_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(offset as u32);
            }
            Beq { rs1, rs2, offset } => {
                if self.read_reg(rs1) == self.read_reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Bne { rs1, rs2, offset } => {
                if self.read_reg(rs1) != self.read_reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Lw { rd, rs1, offset } => {
                let addr = self.read_reg(rs1).wrapping_add(offset as u32);
                if self.pmp_allows(addr) {
                    let value = self.load_word(addr);
                    self.write_reg(rd, value);
                } else {
                    self.trap(cause::LOAD_ACCESS_FAULT, pc);
                    return instruction;
                }
            }
            Sw { rs1, rs2, offset } => {
                let addr = self.read_reg(rs1).wrapping_add(offset as u32);
                if self.pmp_allows(addr) {
                    let value = self.read_reg(rs2);
                    self.store_word(addr, value);
                } else {
                    self.trap(cause::STORE_ACCESS_FAULT, pc);
                    return instruction;
                }
            }
            Addi { rd, rs1, imm } => {
                self.write_reg(rd, self.read_reg(rs1).wrapping_add(imm as u32))
            }
            Andi { rd, rs1, imm } => self.write_reg(rd, self.read_reg(rs1) & imm as u32),
            Ori { rd, rs1, imm } => self.write_reg(rd, self.read_reg(rs1) | imm as u32),
            Xori { rd, rs1, imm } => self.write_reg(rd, self.read_reg(rs1) ^ imm as u32),
            Add { rd, rs1, rs2 } => {
                self.write_reg(rd, self.read_reg(rs1).wrapping_add(self.read_reg(rs2)))
            }
            Sub { rd, rs1, rs2 } => {
                self.write_reg(rd, self.read_reg(rs1).wrapping_sub(self.read_reg(rs2)))
            }
            And { rd, rs1, rs2 } => self.write_reg(rd, self.read_reg(rs1) & self.read_reg(rs2)),
            Or { rd, rs1, rs2 } => self.write_reg(rd, self.read_reg(rs1) | self.read_reg(rs2)),
            Xor { rd, rs1, rs2 } => self.write_reg(rd, self.read_reg(rs1) ^ self.read_reg(rs2)),
            Sltu { rd, rs1, rs2 } => {
                self.write_reg(rd, u32::from(self.read_reg(rs1) < self.read_reg(rs2)))
            }
            Csrrw { rd, csr: c, rs1 } => {
                let old = self.csr_read(c);
                let new = self.read_reg(rs1);
                self.csr_write(c, new, config);
                self.write_reg(rd, old);
            }
            Csrrs { rd, csr: c, rs1 } => {
                let old = self.csr_read(c);
                if rs1 != 0 {
                    self.csr_write(c, old | self.read_reg(rs1), config);
                }
                self.write_reg(rd, old);
            }
            Mret => {
                if self.mode == Mode::Machine {
                    self.mode = Mode::User;
                    next_pc = self.mepc;
                } else {
                    self.trap(cause::ILLEGAL_INSTRUCTION, pc);
                    return instruction;
                }
            }
            Illegal(_) => {
                self.trap(cause::ILLEGAL_INSTRUCTION, pc);
                return instruction;
            }
        }
        self.pc = next_pc;
        instruction
    }

    /// Runs until the PC leaves the program or `max_steps` instructions have
    /// executed; returns the number of executed instructions.
    pub fn run(&mut self, program: &Program, config: &SocConfig, max_steps: usize) -> usize {
        for executed in 0..max_steps {
            if program.fetch(self.pc).is_none() {
                return executed;
            }
            self.step(program, config);
        }
        max_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SocVariant;

    fn config() -> SocConfig {
        SocConfig::new(SocVariant::Secure)
    }

    #[test]
    fn arithmetic_and_branches() {
        let config = config();
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: 5,
        });
        p.push(Instruction::Addi {
            rd: 2,
            rs1: 0,
            imm: 7,
        });
        p.push(Instruction::Add {
            rd: 3,
            rs1: 1,
            rs2: 2,
        });
        p.push(Instruction::Beq {
            rs1: 3,
            rs2: 0,
            offset: 8,
        }); // not taken
        p.push(Instruction::Sub {
            rd: 4,
            rs1: 3,
            rs2: 1,
        });
        let mut m = GoldenModel::new(&config);
        m.run(&p, &config, 100);
        assert_eq!(m.regs[3], 12);
        assert_eq!(m.regs[4], 7);
    }

    #[test]
    fn loads_stores_and_x0() {
        let config = config();
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: 0x40,
        });
        p.push(Instruction::Addi {
            rd: 2,
            rs1: 0,
            imm: 99,
        });
        p.push(Instruction::Sw {
            rs1: 1,
            rs2: 2,
            offset: 4,
        });
        p.push(Instruction::Lw {
            rd: 3,
            rs1: 1,
            offset: 4,
        });
        p.push(Instruction::Addi {
            rd: 0,
            rs1: 3,
            imm: 1,
        }); // write to x0 ignored
        let mut m = GoldenModel::new(&config);
        m.run(&p, &config, 100);
        assert_eq!(m.load_word(0x44), 99);
        assert_eq!(m.regs[3], 99);
        assert_eq!(m.regs[0], 0);
    }

    #[test]
    fn protected_load_traps_and_mret_returns() {
        let config = config();
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: config.secret_addr as i32,
        });
        p.push(Instruction::Lw {
            rd: 4,
            rs1: 1,
            offset: 0,
        });
        p.push(Instruction::Addi {
            rd: 5,
            rs1: 0,
            imm: 1,
        });
        // Trap handler at the trap vector: mret back.
        let mut m = GoldenModel::new(&config);
        m.protect_region(config.protected_base, config.protected_top);
        m.store_word(config.secret_addr, 0xdead_beef);
        // Step 1: pointer setup; step 2: faulting load.
        m.step(&p, &config);
        m.step(&p, &config);
        assert_eq!(m.mode, Mode::Machine);
        assert_eq!(m.mcause, cause::LOAD_ACCESS_FAULT);
        assert_eq!(m.mepc, 4);
        assert_eq!(m.pc, config.trap_vector);
        assert_eq!(m.regs[4], 0, "secret must not land in x4");
        // mret at the trap vector returns to user mode at mepc.
        let mut handler = Program::new(config.trap_vector);
        handler.push(Instruction::Mret);
        m.step(&handler, &config);
        assert_eq!(m.mode, Mode::User);
        assert_eq!(m.pc, 4);
    }

    #[test]
    fn pmp_lock_rule_and_its_buggy_variant() {
        let correct = SocConfig::new(SocVariant::Secure);
        let buggy = SocConfig::new(SocVariant::PmpLockBug);
        for (config, expect_moved) in [(&correct, false), (&buggy, true)] {
            let mut m = GoldenModel::new(config);
            m.protect_region(config.protected_base, config.protected_top);
            m.mode = Mode::Machine;
            // Machine software tries to move the base of the locked region
            // upward so that the secret falls outside the protected range.
            let mut p = Program::new(0);
            p.push(Instruction::Addi {
                rd: 1,
                rs1: 0,
                imm: (config.protected_top >> 2) as i32,
            });
            p.push(Instruction::Csrrw {
                rd: 0,
                csr: csr::PMPADDR0,
                rs1: 1,
            });
            m.run(&p, config, 10);
            let moved = m.pmpaddr[0] == config.protected_top >> 2;
            assert_eq!(moved, expect_moved, "variant {:?}", config.variant());
            // With the bug, the "protected" secret is now user accessible.
            m.mode = Mode::User;
            assert_eq!(m.pmp_allows(config.secret_addr), expect_moved);
        }
    }

    #[test]
    fn csr_cycle_counts_retired_instructions() {
        let config = config();
        let mut p = Program::new(0);
        p.push_nops(3);
        p.push(Instruction::Csrrs {
            rd: 3,
            csr: csr::CYCLE,
            rs1: 0,
        });
        let mut m = GoldenModel::new(&config);
        m.run(&p, &config, 10);
        // The counter increments at the start of every step, so the read
        // observes the reading instruction itself as well.
        assert_eq!(m.regs[3], 4);
    }

    #[test]
    fn user_mode_cannot_write_pmp() {
        let config = config();
        let mut m = GoldenModel::new(&config);
        m.protect_region(config.protected_base, config.protected_top);
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: 0x7ff,
        });
        p.push(Instruction::Csrrw {
            rd: 0,
            csr: csr::PMPADDR1,
            rs1: 1,
        });
        m.run(&p, &config, 10);
        assert_eq!(m.pmpaddr[1], config.protected_top >> 2);
    }
}
