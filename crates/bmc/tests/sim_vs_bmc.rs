//! Cross-validation of the two engines that consume the RTL representation:
//! for random sequential designs and random stimuli, the bit-blasted
//! reset-state unrolling must agree cycle by cycle with the word-level
//! simulator. Cases come from the deterministic [`rtl::SplitMix64`].

use bmc::{UnrollOptions, Unrolling};
use rtl::{BitVec, Netlist, SignalId, SplitMix64};
use sim::Simulator;

/// A small parameterized sequential design: an accumulator, a shift register
/// and a comparator, wired from two inputs.
fn build_design(width: u32) -> (Netlist, Vec<SignalId>, Vec<SignalId>) {
    let mut n = Netlist::new("random_seq");
    let a = n.input("a", width);
    let b = n.input("b", width);
    let acc = n.register_init("acc", width, BitVec::zero(width));
    let shift = n.register_init("shift", width, BitVec::zero(width));
    let sum = n.add(acc.value(), a);
    let gated = {
        let cond = n.ult(a, b);
        n.mux(cond, sum, acc.value())
    };
    n.set_next(acc, gated);
    let shifted = {
        let hi = n.slice(shift.value(), width - 2, 0);
        let lsb = n.bit(b, 0);
        n.concat(hi, lsb)
    };
    n.set_next(shift, shifted);
    let equal = n.eq(acc.value(), shift.value());
    n.output("acc", acc.value());
    n.output("shift", shift.value());
    n.output("equal", equal);
    let observed = vec![acc.value(), shift.value(), equal];
    (n, vec![a, b], observed)
}

#[test]
fn unrolling_matches_simulator() {
    let mut rng = SplitMix64::new(0xb3c);
    for _ in 0..24 {
        let width = rng.gen_range(2..10) as u32;
        let len = rng.gen_range(1..6) as usize;
        let stimulus: Vec<(u64, u64)> =
            (0..len).map(|_| (rng.next_u64(), rng.next_u64())).collect();
        let (netlist, inputs, observed) = build_design(width);

        // Simulator run.
        let mut simulator = Simulator::new(netlist.clone());
        let mut expected: Vec<Vec<BitVec>> = Vec::new();
        for &(a, b) in &stimulus {
            simulator.poke(inputs[0], a);
            simulator.poke(inputs[1], b);
            expected.push(observed.iter().map(|&s| simulator.peek(s)).collect());
            simulator.step();
        }

        // Reset-state unrolling with the same stimulus forced through
        // constraints on the input words. Alternate between the compiled
        // (structurally hashed, lazily pruned) strategy and the eager
        // baseline so both encoders stay pinned to the simulator semantics.
        let options = if rng.gen_bool() {
            UnrollOptions::from_reset_state()
        } else {
            UnrollOptions::from_reset_state().eager()
        };
        let mut unrolling = Unrolling::new(&netlist, options);
        unrolling.extend_to(stimulus.len());
        // Materialize the observed signals in every frame: the lazy strategy
        // only encodes what queries reach.
        for frame in 0..=stimulus.len() {
            for &signal in &observed {
                unrolling.lits(frame, signal).unwrap();
            }
        }
        for (frame, &(a, b)) in stimulus.iter().enumerate() {
            unrolling
                .assume_signal_equals_const(frame, inputs[0], a)
                .unwrap();
            unrolling
                .assume_signal_equals_const(frame, inputs[1], b)
                .unwrap();
        }
        let result = unrolling.solve(&[]);
        let model = result.model().expect("constrained stimulus is consistent");
        for (frame, row) in expected.iter().enumerate() {
            for (&signal, value) in observed.iter().zip(row) {
                let got = unrolling.value_in_model(model, frame, signal).unwrap();
                assert_eq!(got, *value, "signal {signal:?} at frame {frame}");
            }
        }
    }
}
