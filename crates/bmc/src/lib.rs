//! # `bmc` — bounded model checking and interval property checking (IPC)
//!
//! This crate is the formal-verification engine of the UPEC reproduction. It
//! takes a word-level [`rtl::Netlist`], bit-blasts it into CNF with Tseitin
//! encoding, unrolls its transition relation over a bounded time window, and
//! decides properties with the [`sat`] CDCL solver.
//!
//! Three layers are exposed:
//!
//! * [`Unrolling`] — the low-level machinery: per-frame literals for every
//!   signal, hard constraints, assumption-based queries and model/value
//!   extraction. The UPEC miter proofs in the `upec` crate drive this layer
//!   directly.
//! * [`IntervalProperty`] + [`IpcEngine`] — the assume/prove interval
//!   properties of the paper's Fig. 4, checked from a *symbolic initial
//!   state* (the "any-state proof" of Interval Property Checking).
//! * [`InductionProver`] — k-induction for single-bit invariants, used to
//!   turn bounded P-alert analyses into unbounded security proofs
//!   (paper Sec. VI).
//!
//! # Example
//!
//! ```
//! use rtl::{Netlist, BitVec};
//! use bmc::{IntervalProperty, PropertyTerm, IpcEngine, UnrollOptions};
//!
//! // Prove that a two-entry shift register delivers its input after two
//! // cycles, for every possible starting state.
//! let mut n = Netlist::new("shift2");
//! let data_in = n.input("in", 4);
//! let s1 = n.register("s1", 4);
//! let s2 = n.register("s2", 4);
//! n.set_next(s1, data_in);
//! n.set_next(s2, s1.value());
//! let nine = n.lit(9, 4);
//! let in_is_9 = n.eq(data_in, nine);
//! let out_is_9 = n.eq(s2.value(), nine);
//! n.output("out_is_9", out_is_9);
//!
//! let property = IntervalProperty::new("input reaches output", 2)
//!     .assume(PropertyTerm::at("input is 9", 0, in_is_9))
//!     .prove(PropertyTerm::at("output is 9", 2, out_is_9));
//! assert!(IpcEngine::new(UnrollOptions::default()).check(&n, &property).is_proven());
//! ```

#![warn(missing_docs)]

mod compile;
mod gates;
mod induction;
mod ipc;
mod property;
mod unroll;

pub use compile::{CompileStats, CompiledOp, CompiledTransition};
pub use gates::GateBuilder;
pub use induction::{InductionOutcome, InductionProver};
pub use ipc::{CexFrame, Counterexample, IpcEngine, IpcOutcome, IpcStats};
pub use property::{IntervalProperty, PropertyTerm, When};
pub use unroll::{EncodeStats, SharedClause, UnrollError, UnrollOptions, Unrolling};
