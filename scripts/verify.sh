#!/usr/bin/env bash
# Repository verification: formatting, lints, and the tier-1 build/test gate.
#
# Usage: scripts/verify.sh
#
# Keep this script in sync with the README's "Tests and verification"
# section. The tier-1 gate is the same command CI (and the PR driver) runs:
#   cargo build --release && cargo test -q
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings (broken intra-doc links fail here)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> bench smoke: solver_stats --smoke (verdict agreement, k=1 subset)"
# Fast gate: the default (adaptive simplification) and no_simplify solve
# paths must agree on every verdict of the smoke subset, so solver
# performance work can never silently flip a verdict. Exits non-zero on any
# mismatch; writes no JSON.
cargo run --release -q -p bench --bin solver_stats -- --smoke

echo "==> bench smoke: trace_report --smoke (telemetry trace, k=1 query)"
# Fast gate for the obs telemetry layer: one traced k=1 query through the
# real JSONL sink — every emitted line must parse, the root span's verdict
# attribute must match the engine's verdict, and the per-phase durations
# must sum to within tolerance of the query wall time. Exits non-zero on
# any failure; writes no tracked JSON.
cargo run --release -q -p bench --bin trace_report -- --smoke

echo "verify.sh: all checks passed"
