//! Interval property checking (IPC): bounded proofs from a symbolic initial
//! state.

use crate::{IntervalProperty, UnrollOptions, Unrolling};
use rtl::{BitVec, Netlist};
use sat::{Lit, SatResult};
use std::time::{Duration, Instant};

/// Per-check statistics reported alongside every IPC verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IpcStats {
    /// Number of CNF variables in the unrolled model.
    pub variables: usize,
    /// Number of problem clauses in the unrolled model.
    pub clauses: usize,
    /// Conflicts spent by the SAT solver.
    pub conflicts: u64,
    /// Decisions made by the SAT solver.
    pub decisions: u64,
    /// Wall-clock time of the whole check.
    pub runtime: Duration,
    /// Window length (`k`) of the checked property.
    pub window_length: usize,
}

/// One frame of a counterexample trace: the value of every register and
/// primary input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CexFrame {
    /// `(register name, value)` pairs in declaration order.
    pub registers: Vec<(String, BitVec)>,
    /// `(input name, value)` pairs in declaration order.
    pub inputs: Vec<(String, BitVec)>,
}

impl CexFrame {
    /// Looks up a register value by name.
    pub fn register(&self, name: &str) -> Option<BitVec> {
        self.registers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up an input value by name.
    pub fn input(&self, name: &str) -> Option<BitVec> {
        self.inputs.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// A counterexample to an interval property.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counterexample {
    /// Labels of the obligations that are violated in the final frame.
    pub failed_obligations: Vec<String>,
    /// Per-frame register/input valuations, frame 0 first.
    pub frames: Vec<CexFrame>,
}

impl Counterexample {
    /// Number of frames in the trace.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Registers whose value differs between the first and last frame —
    /// a quick diagnostic for "what moved".
    pub fn changed_registers(&self) -> Vec<String> {
        match (self.frames.first(), self.frames.last()) {
            (Some(first), Some(last)) => first
                .registers
                .iter()
                .zip(&last.registers)
                .filter(|((_, a), (_, b))| a != b)
                .map(|((name, _), _)| name.clone())
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// Verdict of an interval property check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpcOutcome {
    /// The property holds on the bounded model.
    Proven(IpcStats),
    /// The property is violated; a counterexample trace is attached.
    Violated(Box<Counterexample>, IpcStats),
    /// The solver exhausted its conflict budget.
    Unknown(IpcStats),
}

impl IpcOutcome {
    /// Whether the property was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, IpcOutcome::Proven(_))
    }

    /// Whether the property was violated.
    pub fn is_violated(&self) -> bool {
        matches!(self, IpcOutcome::Violated(..))
    }

    /// The counterexample, if the property was violated.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            IpcOutcome::Violated(cex, _) => Some(cex),
            _ => None,
        }
    }

    /// Statistics of the check regardless of the verdict.
    pub fn stats(&self) -> IpcStats {
        match self {
            IpcOutcome::Proven(s) | IpcOutcome::Violated(_, s) | IpcOutcome::Unknown(s) => *s,
        }
    }
}

/// The interval property checker.
///
/// `IpcEngine::check` unrolls the design over the property's window, asserts
/// every assumption, and asks the SAT solver for an assignment violating at
/// least one obligation. `Unsat` means the property holds for **every**
/// starting state satisfying the assumptions — the "any-state proof" that
/// lets UPEC reason about all programs and all reachable microarchitectural
/// states at once.
///
/// # Examples
///
/// ```
/// use rtl::{Netlist, BitVec};
/// use bmc::{IntervalProperty, PropertyTerm, IpcEngine, UnrollOptions};
///
/// // A register that saturates at 3 can never hold 7 one cycle after
/// // holding a value below 4.
/// let mut n = Netlist::new("sat3");
/// let r = n.register("r", 3);
/// let three = n.lit(3, 3);
/// let below = n.ult(r.value(), three);
/// let one = n.lit(1, 3);
/// let plus = n.add(r.value(), one);
/// let next = n.mux(below, plus, r.value());
/// n.set_next(r, next);
/// let seven = n.lit(7, 3);
/// let is_seven = n.eq(r.value(), seven);
/// let not_seven = n.not(is_seven);
/// n.output("not_seven", not_seven);
///
/// let property = IntervalProperty::new("never 7 after below 4", 1)
///     .assume(PropertyTerm::at("starts below 4", 0, below))
///     .prove(PropertyTerm::at("not 7 next cycle", 1, not_seven));
/// let outcome = IpcEngine::new(UnrollOptions::default()).check(&n, &property);
/// assert!(outcome.is_proven());
/// ```
#[derive(Debug, Clone, Default)]
pub struct IpcEngine {
    options: UnrollOptions,
}

impl IpcEngine {
    /// Creates an engine with the given unrolling options.
    pub fn new(options: UnrollOptions) -> Self {
        Self { options }
    }

    /// Checks an interval property on a netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation or a property term refers to a
    /// signal that is not a single bit.
    pub fn check(&self, netlist: &Netlist, property: &IntervalProperty) -> IpcOutcome {
        let start = Instant::now();
        let mut unrolling = Unrolling::new(netlist, self.options);
        let max_frame = property.max_frame();
        unrolling.extend_to(max_frame);

        // Materialize every register and input in every frame: IPC outcomes
        // are consumed by humans, and a counterexample trace with holes is
        // not worth the CNF the lazy strategy would save on these small
        // netlists. (Structural hashing and constant folding still apply;
        // the UPEC sessions in the `upec` crate keep the full lazy pruning.)
        for frame in 0..=max_frame {
            for info in netlist.registers() {
                let _ = unrolling.lits(frame, info.signal);
            }
            for &input in netlist.inputs() {
                let _ = unrolling.lits(frame, input);
            }
        }

        // Assumptions are hard constraints.
        for term in &property.assumptions {
            for frame in term.when.frames(max_frame) {
                unrolling
                    .assume_signal_true(frame, term.signal)
                    .unwrap_or_else(|e| panic!("assumption `{}` is malformed: {e}", term.label));
            }
        }

        // Obligations: ask for a violation of at least one of them.
        let mut obligation_lits: Vec<(String, Lit)> = Vec::new();
        for term in &property.obligations {
            for frame in term.when.frames(max_frame) {
                let lit = unrolling
                    .bit_lit(frame, term.signal)
                    .unwrap_or_else(|e| panic!("obligation `{}` is malformed: {e}", term.label));
                obligation_lits.push((format!("{} @ t+{frame}", term.label), lit));
            }
        }
        assert!(
            !obligation_lits.is_empty(),
            "interval property `{}` has no obligations",
            property.name
        );
        unrolling.add_clause(obligation_lits.iter().map(|(_, l)| !*l));

        let result = unrolling.solve(&[]);
        let solver_stats = unrolling.solver_stats();
        let stats = IpcStats {
            variables: unrolling.num_vars(),
            clauses: unrolling.num_clauses(),
            conflicts: solver_stats.conflicts,
            decisions: solver_stats.decisions,
            runtime: start.elapsed(),
            window_length: property.length,
        };

        match result {
            SatResult::Unsat => IpcOutcome::Proven(stats),
            SatResult::Unknown => IpcOutcome::Unknown(stats),
            SatResult::Sat(model) => {
                let failed = obligation_lits
                    .iter()
                    .filter(|(_, l)| !model.lit_is_true(*l))
                    .map(|(label, _)| label.clone())
                    .collect();
                let cex = extract_counterexample(&unrolling, netlist, &model, max_frame, failed);
                IpcOutcome::Violated(Box::new(cex), stats)
            }
        }
    }
}

pub(crate) fn extract_counterexample(
    unrolling: &Unrolling<'_>,
    netlist: &Netlist,
    model: &sat::Model,
    max_frame: usize,
    failed_obligations: Vec<String>,
) -> Counterexample {
    // Signals outside the property cone are never encoded by the lazy
    // compiled strategy — the model genuinely carries no value for them, so
    // they are omitted from the trace rather than reported with a made-up
    // value.
    let mut frames = Vec::with_capacity(max_frame + 1);
    for frame in 0..=max_frame {
        let registers = netlist
            .registers()
            .iter()
            .filter_map(|r| {
                unrolling
                    .value_in_model(model, frame, r.signal)
                    .ok()
                    .map(|v| (r.name.clone(), v))
            })
            .collect();
        let inputs = netlist
            .inputs()
            .iter()
            .filter_map(|&i| {
                unrolling
                    .value_in_model(model, frame, i)
                    .ok()
                    .map(|v| (netlist.signal_name(i), v))
            })
            .collect();
        frames.push(CexFrame { registers, inputs });
    }
    Counterexample {
        failed_obligations,
        frames,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PropertyTerm;

    /// A small pipeline-ish design: a value inserted at the input appears at
    /// the output two cycles later.
    fn two_stage_pipeline() -> (Netlist, rtl::SignalId, rtl::SignalId) {
        let mut n = Netlist::new("pipe2");
        let input = n.input("in", 8);
        let s1 = n.register("s1", 8);
        let s2 = n.register("s2", 8);
        n.set_next(s1, input);
        n.set_next(s2, s1.value());
        n.output("out", s2.value());
        (n, input, s2.value())
    }

    #[test]
    fn pipeline_delivers_value_after_two_cycles() {
        let (mut n, input, out) = two_stage_pipeline();
        let forty_two = n.lit(42, 8);
        let in_is_42 = n.eq(input, forty_two);
        let out_is_42 = n.eq(out, forty_two);
        n.output("in_is_42", in_is_42);
        n.output("out_is_42", out_is_42);

        let holds = IntervalProperty::new("value propagates", 2)
            .assume(PropertyTerm::at("input is 42", 0, in_is_42))
            .prove(PropertyTerm::at("output is 42", 2, out_is_42));
        let outcome = IpcEngine::new(UnrollOptions::default()).check(&n, &holds);
        assert!(outcome.is_proven(), "outcome: {outcome:?}");

        // The same claim one cycle too early fails and the counterexample
        // names the violated obligation.
        let too_early = IntervalProperty::new("value propagates too early", 1)
            .assume(PropertyTerm::at("input is 42", 0, in_is_42))
            .prove(PropertyTerm::at("output is 42", 1, out_is_42));
        let outcome = IpcEngine::new(UnrollOptions::default()).check(&n, &too_early);
        assert!(outcome.is_violated());
        let cex = outcome.counterexample().expect("counterexample");
        assert_eq!(cex.len(), 2);
        assert_eq!(cex.failed_obligations.len(), 1);
        assert!(cex.failed_obligations[0].contains("output is 42"));
        // The trace shows the assumed input value.
        assert_eq!(cex.frames[0].input("in").unwrap().as_u64(), 42);
    }

    #[test]
    fn stats_reflect_model_size() {
        let (mut n, input, out) = two_stage_pipeline();
        let zero = n.lit(0, 8);
        let in_zero = n.eq(input, zero);
        let out_zero = n.eq(out, zero);
        let p = IntervalProperty::new("zero propagates", 2)
            .assume(PropertyTerm::at("in zero", 0, in_zero))
            .prove(PropertyTerm::at("out zero", 2, out_zero));
        let outcome = IpcEngine::new(UnrollOptions::default()).check(&n, &p);
        let stats = outcome.stats();
        assert!(stats.variables > 16);
        assert!(stats.clauses > 0);
        assert_eq!(stats.window_length, 2);
    }

    #[test]
    fn during_assumptions_cover_every_frame() {
        // A register that only keeps its value while `hold` is asserted.
        let mut n = Netlist::new("holdreg");
        let hold = n.input("hold", 1);
        let data = n.input("data", 4);
        let r = n.register("r", 4);
        let next = n.mux(hold, r.value(), data);
        n.set_next(r, next);
        let five = n.lit(5, 4);
        let is_five = n.eq(r.value(), five);
        n.output("is_five", is_five);

        let p = IntervalProperty::new("held value persists", 3)
            .assume(PropertyTerm::at("starts at five", 0, is_five))
            .assume(PropertyTerm::during("held the whole window", 0, 2, hold))
            .prove(PropertyTerm::at("still five", 3, is_five));
        assert!(IpcEngine::new(UnrollOptions::default())
            .check(&n, &p)
            .is_proven());

        // Without the `during` assumption the value can be overwritten.
        let p = IntervalProperty::new("value persists unconditionally", 3)
            .assume(PropertyTerm::at("starts at five", 0, is_five))
            .prove(PropertyTerm::at("still five", 3, is_five));
        assert!(IpcEngine::new(UnrollOptions::default())
            .check(&n, &p)
            .is_violated());
    }

    #[test]
    fn changed_registers_diagnostic() {
        let (mut n, input, out) = two_stage_pipeline();
        let ten = n.lit(10, 8);
        let in_is_10 = n.eq(input, ten);
        let out_is_10 = n.eq(out, ten);
        let p = IntervalProperty::new("too early", 1)
            .assume(PropertyTerm::at("in 10", 0, in_is_10))
            .prove(PropertyTerm::at("out 10", 1, out_is_10));
        let outcome = IpcEngine::new(UnrollOptions::default()).check(&n, &p);
        let cex = outcome.counterexample().expect("violated");
        // s1 always changes to 10 in frame 1 because the input is forced.
        assert!(
            cex.changed_registers().contains(&"s1".to_string())
                || !cex.changed_registers().is_empty()
        );
    }
}
