//! Simulation harness: the SoC RTL plus behavioural instruction/data memory.

use crate::{build_soc, GoldenModel, Program, SocConfig, SocInstance};
use rtl::Netlist;
use sim::Simulator;
use std::collections::BTreeMap;

/// A simulated SoC: the RTL core/cache plus a behavioural main memory and an
/// instruction memory backed by a [`Program`].
///
/// `SocSim` is what the examples and the attack demonstrations run on: it is
/// the stand-in for the FPGA/RTL-simulation testbench the paper's authors
/// used to validate the Orc attack on RocketChip.
///
/// # Examples
///
/// ```
/// use soc::{SocSim, SocConfig, SocVariant, Program, Instruction};
///
/// let config = SocConfig::new(SocVariant::Secure);
/// let mut program = Program::new(0);
/// program.push(Instruction::Addi { rd: 1, rs1: 0, imm: 42 });
/// let mut sim = SocSim::new(config, program);
/// sim.run(20);
/// assert_eq!(sim.reg(1), 42);
/// ```
#[derive(Debug)]
pub struct SocSim {
    simulator: Simulator,
    instance: SocInstance,
    program: Program,
    memory: BTreeMap<u32, u32>,
    config: SocConfig,
}

impl SocSim {
    /// Builds the RTL for `config` and attaches the program.
    pub fn new(config: SocConfig, program: Program) -> Self {
        let mut netlist = Netlist::new(format!("soc_{}", config.variant().name()));
        let instance = build_soc(&mut netlist, &config, "soc");
        netlist
            .validate()
            .expect("generated SoC netlist is well formed");
        Self {
            simulator: Simulator::new(netlist),
            instance,
            program,
            memory: BTreeMap::new(),
            config,
        }
    }

    /// The generator configuration in use.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// The signal handles of the instantiated SoC.
    pub fn instance(&self) -> &SocInstance {
        &self.instance
    }

    /// Writes a word of main memory.
    pub fn store_word(&mut self, addr: u32, value: u32) {
        self.memory.insert(addr & !3, value);
    }

    /// Reads a word of main memory.
    pub fn load_word(&self, addr: u32) -> u32 {
        self.memory.get(&(addr & !3)).copied().unwrap_or(0)
    }

    fn reg_name(&self, name: &str) -> String {
        format!("{}.{name}", self.instance.prefix)
    }

    /// Configures the PMP registers so the protected region of the
    /// configuration is locked and inaccessible to user mode (the
    /// `secret_data_protected` premise of the UPEC property).
    pub fn protect_secret_region(&mut self) {
        let base = u64::from(self.config.protected_base >> 2);
        let top = u64::from(self.config.protected_top >> 2);
        self.set_register("pmpaddr0", base);
        self.set_register("pmpaddr1", top);
        self.set_register("pmpcfg0", 0x07);
        self.set_register("pmpcfg1", 0x80);
    }

    /// Preloads the cache line the secret maps to with `value`, marking it
    /// valid and tagged with the secret's address ("D in cache").
    pub fn preload_secret_in_cache(&mut self, value: u32) {
        let idx = self.config.secret_index();
        let tag = u64::from(self.config.secret_tag());
        self.set_register(&format!("dcache.valid{idx}"), 1);
        self.set_register(&format!("dcache.tag{idx}"), tag);
        self.set_register(&format!("dcache.data{idx}"), u64::from(value));
        self.store_word(self.config.secret_addr, value);
    }

    /// Overrides a register of the SoC by its name relative to the instance
    /// prefix (e.g. `"pc"`, `"x3"`, `"dcache.valid0"`).
    ///
    /// # Panics
    ///
    /// Panics if no register with that name exists.
    pub fn set_register(&mut self, name: &str, value: u64) {
        let full = self.reg_name(name);
        self.simulator
            .set_register_by_name(&full, value)
            .unwrap_or_else(|e| panic!("cannot set register `{full}`: {e}"));
    }

    /// Reads a register of the SoC by its name relative to the prefix.
    ///
    /// # Panics
    ///
    /// Panics if no register with that name exists.
    pub fn register(&self, name: &str) -> u64 {
        let full = self.reg_name(name);
        self.simulator
            .register_by_name(&full)
            .unwrap_or_else(|e| panic!("cannot read register `{full}`: {e}"))
            .as_u64()
    }

    /// Value of architectural register `x{index}`.
    pub fn reg(&self, index: u32) -> u32 {
        if index == 0 {
            0
        } else {
            self.register(&format!("x{index}")) as u32
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.register("pc") as u32
    }

    /// Current privilege mode (0 = user, 1 = machine).
    pub fn mode(&self) -> u32 {
        self.register("mode") as u32
    }

    /// Current cycle-counter value.
    pub fn cycles(&self) -> u32 {
        self.register("cycle") as u32
    }

    /// Advances the SoC by one clock cycle, feeding instruction fetches and
    /// memory responses and applying memory writes.
    pub fn step(&mut self) {
        // Instruction fetch for the current PC.
        let pc = self.pc();
        let instr = self.program.fetch_word(pc);
        self.simulator
            .poke(self.instance.imem_instr, u64::from(instr));

        // Memory read data for the refill in flight (sampled when it
        // completes).
        let refill_addr = self.simulator.peek(self.instance.mem_read_addr).as_u64() as u32;
        let rdata = self.load_word(refill_addr);
        self.simulator
            .poke(self.instance.mem_rdata, u64::from(rdata));

        // Apply memory-side writes issued this cycle.
        let write = self.simulator.peek(self.instance.mem_req_valid).is_true()
            && self.simulator.peek(self.instance.mem_req_write).is_true();
        if write {
            let addr = self.simulator.peek(self.instance.mem_req_addr).as_u64() as u32;
            let data = self.simulator.peek(self.instance.mem_req_wdata).as_u64() as u32;
            self.store_word(addr, data);
        }

        self.simulator.step();
    }

    /// Runs `cycles` clock cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until the PC reaches `target` or `max_cycles` elapse; returns the
    /// number of cycles taken, or `None` on timeout.
    pub fn run_until_pc(&mut self, target: u32, max_cycles: u64) -> Option<u64> {
        for elapsed in 0..max_cycles {
            if self.pc() == target {
                return Some(elapsed);
            }
            self.step();
        }
        (self.pc() == target).then_some(max_cycles)
    }

    /// Runs until the first trap is taken; returns the cycle count, or `None`
    /// on timeout.
    pub fn run_until_trap(&mut self, max_cycles: u64) -> Option<u64> {
        for elapsed in 0..max_cycles {
            if self.mode() == 1 {
                return Some(elapsed);
            }
            self.step();
        }
        None
    }

    /// Builds a golden model preloaded with the same memory image and PMP
    /// protection state, for co-simulation.
    pub fn golden(&self) -> GoldenModel {
        let mut golden = GoldenModel::new(&self.config);
        for (&addr, &value) in &self.memory {
            golden.store_word(addr, value);
        }
        golden.pmpaddr[0] = self.register("pmpaddr0") as u32;
        golden.pmpaddr[1] = self.register("pmpaddr1") as u32;
        golden.pmpcfg[0] = self.register("pmpcfg0") as u32;
        golden.pmpcfg[1] = self.register("pmpcfg1") as u32;
        golden
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instruction, SocVariant};

    fn secure() -> SocConfig {
        SocConfig::new(SocVariant::Secure)
    }

    #[test]
    fn straight_line_arithmetic_matches_golden_model() {
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: 5,
        });
        p.push(Instruction::Addi {
            rd: 2,
            rs1: 0,
            imm: 9,
        });
        p.push(Instruction::Add {
            rd: 3,
            rs1: 1,
            rs2: 2,
        });
        p.push(Instruction::Sub {
            rd: 4,
            rs1: 2,
            rs2: 1,
        });
        p.push(Instruction::Xor {
            rd: 5,
            rs1: 1,
            rs2: 2,
        });
        p.push(Instruction::Sltu {
            rd: 6,
            rs1: 1,
            rs2: 2,
        });
        p.push(Instruction::Andi {
            rd: 7,
            rs1: 3,
            imm: 0xc,
        });
        p.push_nops(4);

        let mut sim = SocSim::new(secure(), p.clone());
        let mut golden = sim.golden();
        sim.run(40);
        golden.run(&p, &secure(), 100);
        for r in 1..8 {
            assert_eq!(sim.reg(r), golden.regs[r as usize], "x{r}");
        }
    }

    #[test]
    fn loads_stores_and_forwarding_match_golden_model() {
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: 0x40,
        });
        p.push(Instruction::Addi {
            rd: 2,
            rs1: 0,
            imm: 123,
        });
        p.push(Instruction::Sw {
            rs1: 1,
            rs2: 2,
            offset: 0,
        });
        p.push(Instruction::Lw {
            rd: 3,
            rs1: 1,
            offset: 0,
        });
        p.push(Instruction::Add {
            rd: 4,
            rs1: 3,
            rs2: 2,
        });
        p.push(Instruction::Sw {
            rs1: 1,
            rs2: 4,
            offset: 4,
        });
        p.push(Instruction::Lw {
            rd: 5,
            rs1: 1,
            offset: 4,
        });
        p.push_nops(4);

        let mut sim = SocSim::new(secure(), p.clone());
        let mut golden = sim.golden();
        sim.run(80);
        golden.run(&p, &secure(), 100);
        for r in 1..6 {
            assert_eq!(sim.reg(r), golden.regs[r as usize], "x{r}");
        }
        assert_eq!(sim.load_word(0x44), 246);
    }

    #[test]
    fn branches_and_jumps_match_golden_model() {
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: 3,
        });
        p.push(Instruction::Addi {
            rd: 2,
            rs1: 0,
            imm: 0,
        });
        // Loop: x2 += x1; x1 -= 1; bne x1, x0, -8
        p.push(Instruction::Add {
            rd: 2,
            rs1: 2,
            rs2: 1,
        });
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 1,
            imm: -1,
        });
        p.push(Instruction::Bne {
            rs1: 1,
            rs2: 0,
            offset: -8,
        });
        p.push(Instruction::Jal { rd: 3, offset: 8 });
        p.push(Instruction::Addi {
            rd: 4,
            rs1: 0,
            imm: 99,
        }); // skipped
        p.push(Instruction::Addi {
            rd: 5,
            rs1: 0,
            imm: 7,
        });
        p.push_nops(4);

        let mut sim = SocSim::new(secure(), p.clone());
        let mut golden = sim.golden();
        sim.run(120);
        golden.run(&p, &secure(), 200);
        for r in 1..6 {
            assert_eq!(sim.reg(r), golden.regs[r as usize], "x{r}");
        }
        assert_eq!(sim.reg(2), 6);
        assert_eq!(sim.reg(4), 0, "jal must skip the next instruction");
    }

    #[test]
    fn protected_load_traps_without_leaking_the_secret() {
        let config = secure();
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: config.secret_addr as i32,
        });
        p.push(Instruction::Lw {
            rd: 4,
            rs1: 1,
            offset: 0,
        });
        p.push(Instruction::Addi {
            rd: 5,
            rs1: 0,
            imm: 1,
        });

        let mut sim = SocSim::new(config.clone(), p);
        sim.protect_secret_region();
        sim.preload_secret_in_cache(0xdead_beef);
        let trapped = sim.run_until_trap(100);
        assert!(trapped.is_some(), "the illegal load must trap");
        sim.run(5);
        assert_eq!(sim.reg(4), 0, "secret must not reach x4");
        assert_eq!(
            sim.register("mcause") as u32,
            crate::isa::cause::LOAD_ACCESS_FAULT
        );
        assert_eq!(sim.register("mepc") as u32, 4);
        assert_eq!(sim.pc() & !0x3f, config.trap_vector & !0x3f);
    }

    #[test]
    fn cache_misses_stall_but_preserve_results() {
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: 0x80,
        });
        p.push(Instruction::Lw {
            rd: 2,
            rs1: 1,
            offset: 0,
        });
        p.push(Instruction::Lw {
            rd: 3,
            rs1: 1,
            offset: 0,
        });
        p.push_nops(3);
        let mut sim = SocSim::new(secure(), p);
        sim.store_word(0x80, 0x5555);
        sim.run(60);
        assert_eq!(sim.reg(2), 0x5555);
        assert_eq!(sim.reg(3), 0x5555);
    }

    #[test]
    fn mret_returns_to_user_mode() {
        let config = secure();
        // Trap handler: mret back to user code.
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: config.secret_addr as i32,
        });
        p.push(Instruction::Lw {
            rd: 4,
            rs1: 1,
            offset: 0,
        }); // traps
        p.push(Instruction::Addi {
            rd: 6,
            rs1: 0,
            imm: 11,
        }); // resumed here? (mepc=4 -> re-faults) so handler sets x6 instead
        let mut sim = SocSim::new(config.clone(), p);
        sim.protect_secret_region();
        // Put an `mret` at the trap vector by extending the program image:
        // the harness fetches NOPs outside the program, so instead place the
        // handler program separately via a second SocSim run is overkill —
        // here we simply check the trap is taken and machine mode is entered.
        let trapped = sim.run_until_trap(100);
        assert!(trapped.is_some());
        assert_eq!(sim.mode(), 1);
    }
}
