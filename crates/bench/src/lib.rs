//! # `bench` — the benchmark harness
//!
//! Binaries and benches that regenerate the paper's tables and figures
//! (Table I, Table II, Fig. 1, Fig. 2, the PMP finding of Sec. VII-C) plus
//! the ablation studies and the parallel-engine speedup benchmark.
//!
//! All workloads are driven from the shared scenario registry in
//! [`upec::scenarios`] — this crate only adds timing, formatting and
//! command-line entry points. The helpers below are thin delegating wrappers
//! kept for the binaries' convenience.

#![warn(missing_docs)]

pub mod json;

use soc::{Program, SocConfig, SocVariant};
use upec::scenarios;

/// A reduced SoC configuration that keeps the SAT problems small enough for
/// the from-scratch solver while preserving every microarchitectural
/// mechanism the paper's evaluation depends on.
///
/// Equals [`upec::scenarios::ScenarioSpec::formal_config`] for any registered
/// scenario of the same variant.
pub fn formal_config(variant: SocVariant) -> SocConfig {
    SocConfig::new(variant)
        .with_registers(4)
        .with_cache_lines(2)
        .with_miss_latency(1)
        .with_store_latency(1)
}

/// The full-size configuration used for the simulation-based figures.
pub fn sim_config(variant: SocVariant) -> SocConfig {
    SocConfig::new(variant)
}

/// One iteration of the Orc attack (paper Fig. 2) for a given guess of the
/// secret's cache index. Delegates to the scenario registry.
pub fn orc_attack_program(config: &SocConfig, guess: u32) -> Program {
    scenarios::orc_attack_program(config, guess)
}

/// The Meltdown-style transient sequence used for the Fig. 1 footprint
/// experiment. Delegates to the scenario registry.
pub fn transient_program(config: &SocConfig) -> Program {
    scenarios::transient_program(config)
}

/// Formats a duration in seconds with two decimals (for table rows).
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_differ_in_size() {
        let f = formal_config(SocVariant::Secure);
        let s = sim_config(SocVariant::Secure);
        assert!(f.cache_lines < s.cache_lines);
        assert_eq!(f.variant(), s.variant());
    }

    #[test]
    fn helpers_agree_with_the_registry() {
        let spec = scenarios::by_id("orc").expect("registered");
        assert_eq!(formal_config(spec.variant), spec.formal_config());
        assert_eq!(sim_config(spec.variant), spec.sim_config());
    }

    #[test]
    fn attack_programs_have_the_papers_shape() {
        let config = sim_config(SocVariant::Orc);
        let p = orc_attack_program(&config, 3);
        assert_eq!(p.len(), 8);
        assert!(p.listing().contains("lw x5, 0(x4)"));
        let t = transient_program(&config);
        assert!(t.listing().contains("lw x4, 0(x1)"));
    }
}
