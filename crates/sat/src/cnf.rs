//! CNF formulas and DIMACS import/export.

use crate::{Lit, Var};
use std::fmt::Write as _;

/// A formula in conjunctive normal form, independent of any solver instance.
///
/// `CnfFormula` is the hand-off format between the bit-blaster in the `bmc`
/// crate and the [`Solver`](crate::Solver); it can also be serialized to the
/// standard DIMACS format for cross-checking against external solvers.
///
/// # Examples
///
/// ```
/// use sat::{CnfFormula, Lit};
///
/// let mut cnf = CnfFormula::new();
/// let a = cnf.new_var().positive();
/// let b = cnf.new_var().positive();
/// cnf.add_clause([a, b]);
/// cnf.add_clause([!a]);
/// assert_eq!(cnf.num_vars(), 2);
/// assert_eq!(cnf.num_clauses(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Creates an empty formula with no variables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable that has not been allocated.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(
                l.var().index() < self.num_vars,
                "literal {l} refers to an unallocated variable"
            );
        }
        self.clauses.push(clause);
    }

    /// Iterates over the clauses.
    pub fn clauses(&self) -> impl Iterator<Item = &[Lit]> {
        self.clauses.iter().map(Vec::as_slice)
    }

    /// Serializes the formula in DIMACS CNF format.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                let _ = write!(out, "{} ", lit.to_dimacs());
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Parses a formula from DIMACS CNF text.
    ///
    /// # Examples
    ///
    /// ```
    /// use sat::CnfFormula;
    ///
    /// let cnf = CnfFormula::from_dimacs("p cnf 2 2\n1 -2 0\n2 0\n").unwrap();
    /// assert_eq!(cnf.num_vars(), 2);
    /// assert_eq!(cnf.num_clauses(), 2);
    /// assert_eq!(CnfFormula::from_dimacs(&cnf.to_dimacs()).unwrap(), cnf);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem encountered.
    pub fn from_dimacs(text: &str) -> Result<Self, String> {
        let mut cnf = CnfFormula::new();
        let mut declared_vars: Option<usize> = None;
        let mut current: Vec<Lit> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("p cnf") {
                let mut parts = rest.split_whitespace();
                let vars: usize = parts
                    .next()
                    .ok_or_else(|| format!("line {}: missing variable count", lineno + 1))?
                    .parse()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                declared_vars = Some(vars);
                cnf.reserve_vars(vars);
                continue;
            }
            for tok in line.split_whitespace() {
                let v: i64 = tok
                    .parse()
                    .map_err(|e| format!("line {}: bad literal `{tok}`: {e}", lineno + 1))?;
                if v == 0 {
                    cnf.clauses.push(std::mem::take(&mut current));
                } else {
                    let lit = Lit::from_dimacs(v);
                    if lit.var().index() >= cnf.num_vars {
                        cnf.reserve_vars(lit.var().index() + 1);
                    }
                    current.push(lit);
                }
            }
        }
        if !current.is_empty() {
            cnf.clauses.push(current);
        }
        if let Some(d) = declared_vars {
            cnf.num_vars = cnf.num_vars.max(d);
        }
        Ok(cnf)
    }
}

/// A satisfying assignment returned by the solver.
///
/// # Examples
///
/// ```
/// use sat::{SatResult, Solver};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var().positive();
/// solver.add_clause([!a]);
/// match solver.solve() {
///     SatResult::Sat(model) => {
///         assert!(!model.value(a.var()));
///         assert!(model.lit_is_true(!a));
///     }
///     other => panic!("expected sat, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    pub(crate) fn new(values: Vec<bool>) -> Self {
        Self { values }
    }

    /// Value assigned to a variable (`false` for variables the solver never
    /// saw, which is a safe completion for Tseitin-encoded formulas).
    pub fn value(&self, var: Var) -> bool {
        self.values.get(var.index()).copied().unwrap_or(false)
    }

    /// Whether a literal is satisfied by the model.
    pub fn lit_is_true(&self, lit: Lit) -> bool {
        self.value(lit.var()) == lit.is_positive()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Outcome of a satisfiability query.
///
/// # Examples
///
/// ```
/// use sat::Solver;
///
/// let mut solver = Solver::new();
/// let a = solver.new_var().positive();
/// solver.add_clause([a]);
/// let result = solver.solve();
/// assert!(result.is_sat() && !result.is_unsat());
/// assert!(result.model().unwrap().lit_is_true(a));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// The formula is satisfiable; a model is provided.
    Sat(Model),
    /// The formula is unsatisfiable (under the given assumptions).
    Unsat,
    /// The solver gave up because a resource limit was reached.
    Unknown,
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// The model, if the result is `Sat`.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_roundtrip() {
        let mut cnf = CnfFormula::new();
        let a = cnf.new_var().positive();
        let b = cnf.new_var().positive();
        cnf.add_clause([a, !b]);
        cnf.add_clause([!a, b]);
        cnf.add_clause([a, b]);
        let text = cnf.to_dimacs();
        assert!(text.starts_with("p cnf 2 3"));
        let parsed = CnfFormula::from_dimacs(&text).expect("well-formed dimacs");
        assert_eq!(parsed, cnf);
    }

    #[test]
    fn dimacs_parsing_tolerates_comments_and_blank_lines() {
        let text = "c comment\n\np cnf 3 2\n1 -2 0\nc another\n2 3 0\n";
        let cnf = CnfFormula::from_dimacs(text).expect("parse");
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
    }

    #[test]
    fn dimacs_rejects_garbage() {
        assert!(CnfFormula::from_dimacs("p cnf x 1").is_err());
        assert!(CnfFormula::from_dimacs("1 two 0").is_err());
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn clause_with_unallocated_variable_panics() {
        let mut cnf = CnfFormula::new();
        cnf.add_clause([Var::from_index(3).positive()]);
    }

    #[test]
    fn model_lookup() {
        let m = Model::new(vec![true, false]);
        assert!(m.value(Var::from_index(0)));
        assert!(!m.value(Var::from_index(1)));
        assert!(!m.value(Var::from_index(9)));
        assert!(m.lit_is_true(Var::from_index(0).positive()));
        assert!(m.lit_is_true(Var::from_index(1).negative()));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn sat_result_accessors() {
        let sat = SatResult::Sat(Model::new(vec![true]));
        assert!(sat.is_sat());
        assert!(!sat.is_unsat());
        assert!(sat.model().is_some());
        assert!(SatResult::Unsat.is_unsat());
        assert!(SatResult::Unknown.model().is_none());
    }
}
