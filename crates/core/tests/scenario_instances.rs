//! The parameterized scenario-instance registry and the fuzz-mined
//! witnesses behind its `fuzz-*` entries.
//!
//! Fast checks (structure, lookup, geometry application, one bounded
//! re-mine and one capped formal scan) run in the default suite; the
//! full-registry instance sweep and the full default-seed re-mine are
//! `#[ignore]`d — `scripts/verify.sh --full` runs them in release mode.

use soc::fuzz::{self, Channel, FuzzOptions};
use soc::{SocConfig, SocVariant};
use upec::scenarios::{self, fuzz_footprint_witness, fuzz_timing_witness, Geometry};
use upec::{AlertKind, EngineOptions, ScanVerdict, UpecEngine};

#[test]
fn instance_registry_grows_past_24_with_unique_ids() {
    let instances = scenarios::instances();
    assert!(
        instances.len() >= 24,
        "expected at least 24 pinned instances, found {}",
        instances.len()
    );
    let mut ids: Vec<String> = instances.iter().map(|i| i.id()).collect();
    ids.sort();
    let before = ids.len();
    ids.dedup();
    assert_eq!(before, ids.len(), "duplicate instance ids");
}

#[test]
fn every_base_spec_appears_as_a_default_geometry_instance() {
    let instances = scenarios::instances();
    for spec in scenarios::registry() {
        let base = instances
            .iter()
            .find(|i| i.id() == spec.id)
            .unwrap_or_else(|| panic!("no base instance for {}", spec.id));
        assert_eq!(base.geometry, Geometry::formal_default());
        assert_eq!(base.start_window, spec.start_window);
        assert_eq!(base.max_window, spec.max_window);
        assert_eq!(base.expected, spec.expected);
    }
}

#[test]
fn instance_lookup_round_trips() {
    for instance in scenarios::instances() {
        let found = scenarios::instance_by_id(&instance.id())
            .unwrap_or_else(|| panic!("instance_by_id missed {}", instance.id()));
        assert_eq!(found, instance);
    }
    assert!(scenarios::instance_by_id("no-such-instance").is_none());
    assert!(scenarios::instance_by_id("orc@r9c9m9s9").is_none());
}

#[test]
fn instance_geometries_apply_their_knobs() {
    for instance in scenarios::instances() {
        let config = instance.config();
        assert_eq!(config.num_registers, instance.geometry.registers);
        assert_eq!(config.cache_lines, instance.geometry.cache_lines);
        assert_eq!(config.miss_latency, instance.geometry.miss_latency);
        assert_eq!(config.store_latency, instance.geometry.store_latency);
        assert_eq!(config.variant(), instance.spec.variant);
    }
}

/// A bounded re-mine that still reaches the registry's footprint witness
/// (`case_index` 36 of the default seed) but stays fast enough for the
/// default debug suite: 40 programs, one vulnerable variant.
#[test]
fn mined_footprint_witness_reproduces_from_the_pinned_seed() {
    let opts = FuzzOptions {
        programs: 40,
        variants: vec![SocVariant::MeltdownStyle],
        ..FuzzOptions::default()
    };
    let report = fuzz::mine(&opts);
    assert_eq!(report.secure_divergences, 0);
    assert_eq!(report.cosim_mismatches, 0);
    let witness = report
        .witness(SocVariant::MeltdownStyle, Channel::CacheFootprint)
        .expect("the default seed yields a footprint witness within 40 programs");
    assert_eq!(witness.case_index, 36, "witness provenance moved");
    let config = SocConfig::new(SocVariant::MeltdownStyle);
    let minimized = fuzz::minimize(&config, &witness.program, witness.channel, &opts);
    assert_eq!(
        minimized.program,
        fuzz_footprint_witness(),
        "re-mined witness no longer matches the registry's pinned program:\n{}",
        minimized.program.listing()
    );
}

#[test]
fn fuzz_timing_instance_l_alerts_at_a_capped_window() {
    // The cheapest formal check of a fuzz-mined scenario: `fuzz-orc-timing`
    // L-alerts at k=2, so capping the scan there keeps this debug-safe.
    let mut instance = scenarios::instance_by_id("fuzz-orc-timing").unwrap();
    instance.max_window = 2;
    let engine = UpecEngine::new(EngineOptions::new().with_threads(1));
    let results = engine.run_instances([instance]);
    assert_eq!(results.len(), 1);
    let result = &results[0];
    assert_eq!(result.verdict, ScanVerdict::Insecure);
    let alert = result.first_alert.as_ref().expect("an L-alert");
    assert_eq!(alert.kind, AlertKind::LAlert);
    assert_eq!(alert.window, 2);
    assert!(result.matches_expectation(), "{}", result.summary());
}

/// The acceptance sweep: every pinned `(geometry, window, verdict)` in the
/// instance registry re-verifies. Several release-mode minutes of SAT.
#[test]
#[ignore = "full instance-registry sweep; minutes of SAT solving — run with --ignored in release mode"]
fn full_instance_sweep_matches_every_pinned_expectation() {
    let engine = UpecEngine::new(EngineOptions::new());
    let results = engine.run_instances(
        scenarios::instances()
            .into_iter()
            // The PMP scan needs windows 7-9 and takes tens of minutes on
            // one core; its base pin is covered by the (equally ignored)
            // end-to-end PMP proof.
            .filter(|i| i.spec.id != "pmp-lock"),
    );
    let mut failures = String::new();
    for result in &results {
        if !result.matches_expectation() {
            failures.push_str(&result.summary());
        }
    }
    assert!(failures.is_empty(), "mismatched instances:\n{failures}");
}

/// The full pipeline claim behind the registry's `fuzz-*` rows: re-mining
/// with the default options and re-minimizing reproduces the pinned
/// witness programs byte-for-byte.
#[test]
#[ignore = "full 200-program mine across three variants; run with --ignored in release mode"]
fn registry_fuzz_witnesses_reproduce_from_the_default_seed() {
    let opts = FuzzOptions::default();
    let report = fuzz::mine(&opts);
    assert_eq!(report.secure_divergences, 0);
    assert_eq!(report.cosim_mismatches, 0);
    let cases = [
        (
            SocVariant::MeltdownStyle,
            Channel::CacheFootprint,
            fuzz_footprint_witness(),
        ),
        (
            SocVariant::Orc,
            Channel::CacheFootprint,
            fuzz_footprint_witness(),
        ),
        (SocVariant::Orc, Channel::Timing, fuzz_timing_witness()),
    ];
    for (variant, channel, pinned) in cases {
        let witness = report
            .witness(variant, channel)
            .unwrap_or_else(|| panic!("no witness mined for {variant:?}/{channel:?}"));
        let config = SocConfig::new(variant);
        let minimized = fuzz::minimize(&config, &witness.program, channel, &opts);
        assert_eq!(
            minimized.program,
            pinned,
            "{variant:?}/{channel:?} witness drifted from its pin:\n{}",
            minimized.program.listing()
        );
    }
}
