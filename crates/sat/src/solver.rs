//! Conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The solver follows the classic MiniSat architecture: two watched literals
//! per clause, first-UIP conflict analysis, VSIDS variable activities with an
//! index-tracked mutable heap, phase saving, Luby restarts and periodic
//! deletion of inactive learned clauses. Two storage-level specializations
//! keep the propagation inner loop off cold memory:
//!
//! * **Binary implication graph.** Two-literal clauses — the dominant clause
//!   length in Tseitin-encoded hardware miters — are not stored in the clause
//!   arena at all. Each literal carries a flat list of the literals it
//!   directly implies, so propagating a binary clause reads one inline `Lit`
//!   and never touches a `ClauseHeader` or the literal arena. Binary
//!   implications are propagated to fixpoint before any long clause is
//!   visited.
//! * **Clause-arena garbage collection.** Database reduction tombstones
//!   headers and leaves literal holes in the arena; when the wasted-literal
//!   ratio reaches 25% a compacting collection rebuilds the arena and remaps
//!   every watcher and reason index, keeping memory (and cache locality)
//!   bounded across long incremental sessions.

use crate::drat::{ProofLog, ProofStep};
use crate::simplify::{ExtensionEntry, SimplifyStats};
use crate::{CnfFormula, LBool, Lit, Model, SatResult, Var};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Statistics collected during solving.
///
/// All fields except `learnt_clauses` are monotonically increasing counters
/// accumulated over the solver's lifetime; `learnt_clauses` is a gauge (the
/// current database size). To attribute effort to a single `solve` call in an
/// incremental session, snapshot the stats before the call and use
/// [`SolverStats::delta_since`] afterwards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed (trail literals processed).
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of target-rephasing events: restarts at which the saved phase
    /// vector was reset wholesale (to the best-trail snapshot, its inverse, a
    /// constant polarity or a deterministic random vector).
    pub rephasings: u64,
    /// Number of conflicts resolved by chronological backtracking (one level)
    /// instead of a far non-chronological backjump.
    pub chrono_backtracks: u64,
    /// Number of clauses strengthened (shortened) by vivification.
    pub vivified_clauses: u64,
    /// Number of learned clauses imported from a cross-query shared clause
    /// pool via [`Solver::import_shared`].
    pub shared_clause_imports: u64,
    /// Number of learned clauses currently in the database (long clauses
    /// only; learned binary clauses move to the implication graph and are
    /// retained permanently).
    pub learnt_clauses: u64,
    /// Number of learned clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Number of compacting clause-arena garbage collections performed.
    pub arena_collections: u64,
    /// Number of solving episodes stopped by an exhausted [`Budget`] cap.
    /// The legacy whole-episode conflict limit
    /// ([`Solver::set_conflict_limit`]) is not counted here.
    pub budget_exhaustions: u64,
    /// Number of solving episodes stopped by an external cancellation — a
    /// raised [`CancelToken`] or interrupt flag ([`Solver::set_interrupt`]).
    pub cancellations: u64,
}

impl SolverStats {
    /// Counter difference `self - earlier`, for measuring one solving episode
    /// of an incremental session. Counters are subtracted (saturating, so a
    /// mismatched snapshot cannot underflow); the `learnt_clauses` gauge
    /// keeps the current value.
    ///
    /// # Examples
    ///
    /// ```
    /// use sat::{Solver, SolverStats};
    ///
    /// let mut solver = Solver::new();
    /// let a = solver.new_var().positive();
    /// let b = solver.new_var().positive();
    /// solver.add_clause([a, b]);
    /// let before = solver.stats();
    /// assert!(solver.solve().is_sat());
    /// let spent = solver.stats().delta_since(&before);
    /// assert_eq!(spent.conflicts, 0); // trivially satisfiable
    /// ```
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            rephasings: self.rephasings.saturating_sub(earlier.rephasings),
            chrono_backtracks: self
                .chrono_backtracks
                .saturating_sub(earlier.chrono_backtracks),
            vivified_clauses: self
                .vivified_clauses
                .saturating_sub(earlier.vivified_clauses),
            shared_clause_imports: self
                .shared_clause_imports
                .saturating_sub(earlier.shared_clause_imports),
            learnt_clauses: self.learnt_clauses,
            deleted_clauses: self.deleted_clauses.saturating_sub(earlier.deleted_clauses),
            arena_collections: self
                .arena_collections
                .saturating_sub(earlier.arena_collections),
            budget_exhaustions: self
                .budget_exhaustions
                .saturating_sub(earlier.budget_exhaustions),
            cancellations: self.cancellations.saturating_sub(earlier.cancellations),
        }
    }
}

/// Deterministic resource budget for one solving episode.
///
/// Budgets are expressed in solver work units — conflicts, unit propagations
/// and decisions — never wall-clock time, so a budgeted run stops at exactly
/// the same point on every machine and every rerun. A cap of `None` leaves
/// that unit unlimited. Budgets are *per episode*: each [`Solver::solve`]
/// call measures its own spend from zero, so calling `solve` again after an
/// exhausted episode **resumes** the search with a fresh allotment while
/// keeping every learned clause, activity and saved phase — the resumed run
/// reaches the same verdict the uninterrupted run would have.
///
/// Caps are checked at deterministic checkpoints: the conflict and
/// propagation caps once per conflict, the decision and propagation caps
/// once per decision. The stop point is exactly reproducible but may
/// overshoot a propagation cap by the propagations of one conflict round.
///
/// **Progress caveat.** Only conflicts leave a trace (a learned clause,
/// bumped activities, saved phases) — an episode that exhausts a decision
/// or propagation cap *before its first conflict* leaves the search state
/// unchanged, so resuming with the same tiny allotment repeats the same
/// episode forever. Drivers that resume in a loop must either cap
/// conflicts (every budgeted episode then makes learning progress) or grow
/// their slices geometrically, as the portfolio scheduler in the `upec`
/// crate does.
///
/// # Examples
///
/// ```
/// use sat::{Budget, SatResult, Solver, StopCause};
///
/// let mut solver = Solver::new();
/// # let lits: Vec<sat::Lit> = (0..6).map(|_| solver.new_var().positive()).collect();
/// # for a in 0..3 { solver.add_clause([lits[2*a], lits[2*a+1]]); }
/// solver.set_budget(Budget::default().with_decisions(0));
/// assert_eq!(solver.solve(), SatResult::Unknown);
/// assert_eq!(solver.last_stop(), Some(StopCause::BudgetExhausted));
/// solver.set_budget(Budget::unlimited());
/// assert!(solver.solve().is_sat()); // resumed and finished
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum conflicts per episode (`None` = unlimited).
    pub conflicts: Option<u64>,
    /// Maximum unit propagations per episode (`None` = unlimited).
    pub propagations: Option<u64>,
    /// Maximum decisions per episode (`None` = unlimited).
    pub decisions: Option<u64>,
}

impl Budget {
    /// The unlimited budget (no caps; identical to `Budget::default()`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget capping only conflicts.
    pub fn conflicts(n: u64) -> Self {
        Self::default().with_conflicts(n)
    }

    /// Caps conflicts (builder style).
    pub fn with_conflicts(mut self, n: u64) -> Self {
        self.conflicts = Some(n);
        self
    }

    /// Caps unit propagations (builder style).
    pub fn with_propagations(mut self, n: u64) -> Self {
        self.propagations = Some(n);
        self
    }

    /// Caps decisions (builder style).
    pub fn with_decisions(mut self, n: u64) -> Self {
        self.decisions = Some(n);
        self
    }

    /// Whether no unit is capped.
    pub fn is_unlimited(&self) -> bool {
        self.conflicts.is_none() && self.propagations.is_none() && self.decisions.is_none()
    }

    /// Pointwise minimum of two budgets: per unit, the tighter cap wins.
    /// Layered budget policies (per-bound vs per-scenario in the `upec`
    /// engine) combine with this.
    pub fn min(self, other: Budget) -> Budget {
        fn tighter(a: Option<u64>, b: Option<u64>) -> Option<u64> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        Budget {
            conflicts: tighter(self.conflicts, other.conflicts),
            propagations: tighter(self.propagations, other.propagations),
            decisions: tighter(self.decisions, other.decisions),
        }
    }

    /// The budget left after spending `spent`, saturating at zero. Callers
    /// that split one budget across several internal solve episodes (the
    /// `bmc` unroller's trial-solve/simplify/full-solve pipeline) thread
    /// the remainder through with this.
    pub fn minus(self, spent: &SolverStats) -> Budget {
        Budget {
            conflicts: self.conflicts.map(|c| c.saturating_sub(spent.conflicts)),
            propagations: self
                .propagations
                .map(|c| c.saturating_sub(spent.propagations)),
            decisions: self.decisions.map(|c| c.saturating_sub(spent.decisions)),
        }
    }

    /// Whether any capped unit has zero remaining.
    pub fn is_exhausted(&self) -> bool {
        self.conflicts == Some(0) || self.propagations == Some(0) || self.decisions == Some(0)
    }
}

/// Why the most recent solving episode returned [`SatResult::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The legacy whole-episode conflict limit
    /// ([`Solver::set_conflict_limit`]) was reached.
    ConflictLimit,
    /// A [`Budget`] cap ([`Solver::set_budget`]) was reached.
    BudgetExhausted,
    /// An external cancellation: a raised [`CancelToken`] or interrupt flag.
    Cancelled,
}

/// External cancellation handle shared between a requesting thread and a
/// solver.
///
/// Cloning yields another handle to the same flag. The solver polls the
/// token with one relaxed atomic load at restart boundaries (and once at
/// episode entry), so an installed-but-unset token costs a predictable
/// branch per restart and nothing per conflict; with no token installed the
/// cost is a `None` check. A cancelled episode returns
/// [`SatResult::Unknown`] with [`StopCause::Cancelled`]; solver state stays
/// valid and later episodes (after [`CancelToken::reset`]) work normally.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (relaxed store; takes effect at the solver's
    /// next poll point).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Clears the request so the token (and its solver) can be reused.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Feature toggles for the CDCL search loop.
///
/// The default configuration enables the full modern search loop; the all-off
/// [`SearchConfig::baseline`] reproduces the plain Luby-restart search the
/// differential test harness compares against. Every feature preserves
/// verdicts and proof-log checkability — the toggles exist so the property
/// suites can pin each heuristic against the baseline in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Glucose-style EMA restarts: restart early when the short-term average
    /// LBD of learned clauses degrades past the long-term average (the
    /// LBD-quality gate), postponed while the trail is unusually deep (the
    /// assignment looks close to a model). The Luby budget remains as the
    /// outer cadence either way.
    pub ema_restart: bool,
    /// Branch on the variable's saved phase (last assigned polarity) instead
    /// of a constant `false` polarity.
    pub phase_saving: bool,
    /// Target rephasing: periodically reset the saved phases wholesale,
    /// cycling through the best-trail snapshot, its inverse, constant and
    /// deterministic random polarities.
    pub rephasing: bool,
    /// Chronological backtracking: when the non-chronological backjump would
    /// undo more than [`SearchConfig::chrono_threshold`] levels, back off a
    /// single level instead and let the asserting clause propagate there.
    pub chrono_backtrack: bool,
    /// Minimum backjump distance (in decision levels) before chronological
    /// backtracking replaces the far backjump.
    pub chrono_threshold: u32,
    /// Clause vivification during inprocessing ([`Solver::vivify`]); the
    /// flag is consulted by the unrolling layer between bound extensions,
    /// not by `solve` itself.
    pub vivify: bool,
    /// Base conflict budget of the Luby restart cadence: round `i` of an
    /// episode runs for `restart_base * luby(i)` conflicts before the
    /// search restarts (values below 1 are clamped to 1). Smaller bases
    /// restart more aggressively; the portfolio scheduler in the `upec`
    /// crate races such a variant ([`SearchConfig::aggressive_restart`])
    /// against the default cadence.
    pub restart_base: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            ema_restart: true,
            phase_saving: true,
            rephasing: true,
            chrono_backtrack: true,
            chrono_threshold: 100,
            vivify: true,
            restart_base: 128,
        }
    }
}

impl SearchConfig {
    /// The pre-overhaul search loop: plain Luby restarts, constant branching
    /// polarity, always-non-chronological backjumps, no vivification. The
    /// differential reference every feature is compared against.
    pub fn baseline() -> Self {
        Self {
            ema_restart: false,
            phase_saving: false,
            rephasing: false,
            chrono_backtrack: false,
            chrono_threshold: 100,
            vivify: false,
            restart_base: 128,
        }
    }

    /// An aggressively-restarting variant of the default configuration: the
    /// Luby base is quartered, so the search explores many short
    /// orientations instead of committing to one long prefix. Used as a
    /// portfolio member — it tends to win on queries where the default
    /// cadence rides out an unproductive orientation.
    pub fn aggressive_restart() -> Self {
        Self {
            restart_base: 32,
            ..Self::default()
        }
    }
}

/// Share ceiling marking a clause whose derivation left the shareable
/// (transition-definitional) fragment; such clauses are never exported.
pub(crate) const SHARE_NONE: u32 = u32::MAX;

/// Clause metadata for clauses of three or more literals. The literals
/// themselves live in one flat arena (`Solver::clause_lits`) indexed by
/// `start..start + len`: propagation is memory-latency-bound, and keeping all
/// clause literals contiguous removes one pointer dereference (and most cache
/// misses) per visited clause compared to a `Vec<Lit>` per clause. Binary
/// clauses never reach the arena — they live in the implication lists
/// (`Solver::bin_watches`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClauseHeader {
    pub(crate) start: u32,
    pub(crate) len: u32,
    pub(crate) learnt: bool,
    pub(crate) deleted: bool,
    pub(crate) activity: f64,
    /// Literal block distance: number of distinct decision levels in the
    /// clause at learning time. Problem clauses carry 0; learned clauses with
    /// `lbd <= 2` ("glue" clauses) are never deleted by database reduction.
    pub(crate) lbd: u32,
    /// Cross-query sharing ceiling: the highest frame tag over every axiom
    /// used in this clause's derivation, or [`SHARE_NONE`] when the
    /// derivation used any clause outside the shareable fragment (scenario
    /// constraints, obligations, probing, vivification).
    pub(crate) share: u32,
    /// Whether the clause has already been handed to the shared pool (so one
    /// clause is exported at most once per solver).
    pub(crate) exported: bool,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    clause: u32,
    blocker: Lit,
}

/// Why a literal is on the trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Reason {
    /// A decision (or assumption, or top-level fact): no antecedent clause.
    Decision,
    /// Propagated by the arena clause with this index; the propagated
    /// literal is the clause's first literal.
    Long(u32),
    /// Propagated by a binary clause; the payload is the *other* literal of
    /// that clause (false at propagation time).
    Binary(Lit),
}

/// A falsified clause discovered by propagation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Conflict {
    /// An arena clause.
    Long(u32),
    /// A binary clause, given by its two (falsified) literals.
    Binary(Lit, Lit),
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct VarData {
    pub(crate) reason: Reason,
    pub(crate) level: u32,
}

/// Index-tracked max-heap over variables ordered by VSIDS activity.
///
/// Unlike a lazy `BinaryHeap` of `(activity, var)` snapshots — which
/// accumulates a stale duplicate on every bump and every backtrack — this
/// heap stores each variable at most once and tracks its position, so an
/// activity bump is an in-place `decrease_key`/`increase_key` sift and
/// `pop` never has to skip stale entries. Ties break on the variable index
/// (higher first) for a deterministic decision order.
#[derive(Debug, Clone, Default)]
struct VarHeap {
    heap: Vec<Var>,
    /// `position + 1` of each variable in `heap`; 0 when absent.
    index: Vec<u32>,
}

impl VarHeap {
    /// Registers a new variable (initially absent from the heap).
    fn add_var(&mut self) {
        self.index.push(0);
    }

    fn contains(&self, v: Var) -> bool {
        self.index[v.index()] != 0
    }

    /// Heap order: higher activity first, ties broken towards the higher
    /// variable index. Activities are never NaN.
    fn better(activity: &[f64], a: Var, b: Var) -> bool {
        let (aa, ab) = (activity[a.index()], activity[b.index()]);
        aa > ab || (aa == ab && a > b)
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.index[self.heap[a].index()] = (a + 1) as u32;
        self.index[self.heap[b].index()] = (b + 1) as u32;
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if Self::better(activity, self.heap[pos], self.heap[parent]) {
                self.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            let right = left + 1;
            let mut best = pos;
            if left < self.heap.len() && Self::better(activity, self.heap[left], self.heap[best]) {
                best = left;
            }
            if right < self.heap.len() && Self::better(activity, self.heap[right], self.heap[best])
            {
                best = right;
            }
            if best == pos {
                return;
            }
            self.swap(pos, best);
            pos = best;
        }
    }

    /// Inserts a variable (no-op if already present).
    fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.heap.push(v);
        self.index[v.index()] = self.heap.len() as u32;
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restores the heap property after `v`'s activity increased
    /// (no-op if `v` is not in the heap — it will be re-inserted with its
    /// bumped activity when it leaves the trail).
    fn update(&mut self, v: Var, activity: &[f64]) {
        let idx = self.index[v.index()];
        if idx != 0 {
            self.sift_up((idx - 1) as usize, activity);
        }
    }

    /// Removes and returns the most active variable.
    fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        self.index[top.index()] = 0;
        let last = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last.index()] = 1;
            self.sift_down(0, activity);
        }
        Some(top)
    }
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use sat::{Solver, SatResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var().positive();
/// let b = solver.new_var().positive();
/// solver.add_clause([a, b]);
/// solver.add_clause([!a, b]);
/// solver.add_clause([a, !b]);
/// match solver.solve() {
///     SatResult::Sat(model) => {
///         assert!(model.lit_is_true(a));
///         assert!(model.lit_is_true(b));
///     }
///     other => panic!("expected sat, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    pub(crate) headers: Vec<ClauseHeader>,
    pub(crate) clause_lits: Vec<Lit>,
    pub(crate) watches: Vec<Vec<Watcher>>,
    /// Binary implication lists: `bin_watches[p.code()]` holds every literal
    /// `q` for which a binary clause `(!p ∨ q)` exists — i.e. the literals
    /// directly implied by `p` becoming true. Each binary clause appears in
    /// exactly two lists (once per direction).
    pub(crate) bin_watches: Vec<Vec<Lit>>,
    /// Number of binary clauses stored in the implication lists.
    pub(crate) num_bin_clauses: usize,
    pub(crate) assigns: Vec<LBool>,
    pub(crate) var_data: Vec<VarData>,
    pub(crate) trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    /// Propagation head of the binary implication queue. Runs ahead of
    /// `qhead`: every trail literal has its binary implications exhausted
    /// before any long clause is visited.
    pub(crate) qhead_bin: usize,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f64,
    order: VarHeap,
    pub(crate) phase: Vec<bool>,
    seen: Vec<bool>,
    /// Scratch buffer for conflict analysis (avoids a per-resolution
    /// allocation when copying antecedent literals out of the arena).
    analyze_scratch: Vec<Lit>,
    /// Reusable mark vector of clauses currently locked as a propagation
    /// reason (indexed by clause); re-zeroed at the start of every database
    /// reduction.
    locked_marks: Vec<bool>,
    /// Reusable candidate-ranking buffer for database reduction.
    reduce_scratch: Vec<u32>,
    /// Literals sitting in arena holes left by tombstoned clauses; when the
    /// wasted ratio reaches [`Solver::GC_WASTE_DENOMINATOR`] a compacting
    /// collection runs.
    wasted_lits: usize,
    pub(crate) ok: bool,
    pub(crate) stats: SolverStats,
    conflict_limit: Option<u64>,
    interrupt: Option<Arc<AtomicBool>>,
    /// Deterministic per-episode resource budget (see [`Solver::set_budget`]).
    budget: Budget,
    /// External cancellation token polled at restart boundaries (see
    /// [`Solver::set_cancel_token`]).
    cancel: Option<CancelToken>,
    /// Stats snapshot at the entry of the current (or most recent) episode:
    /// the baseline against which budget spend is measured.
    episode: SolverStats,
    /// Why the most recent episode stopped without an answer (see
    /// [`Solver::last_stop`]).
    last_stop: Option<StopCause>,
    /// Armed fault-injection plan (robustness testing only; absent from
    /// release builds).
    #[cfg(any(test, feature = "faults"))]
    fault: Option<crate::faults::FaultPlan>,
    pub(crate) num_learnts: usize,
    max_learnts: usize,
    /// Variables the simplifier must never eliminate (see
    /// [`Solver::freeze_var`]).
    pub(crate) frozen: Vec<bool>,
    /// Variables removed from the formula by bounded variable elimination.
    pub(crate) eliminated: Vec<bool>,
    /// Clauses removed by variable elimination, in elimination order, used to
    /// extend satisfying assignments back to eliminated variables.
    pub(crate) extension: Vec<ExtensionEntry>,
    pub(crate) simp_stats: SimplifyStats,
    /// Active proof log (see [`Solver::start_proof_log`]); `None` when proof
    /// logging is off, so every log site costs one branch on a pointer-sized
    /// field.
    pub(crate) proof: Option<Box<ProofLog>>,
    /// Search-loop feature toggles (see [`SearchConfig`]).
    config: SearchConfig,
    /// Short-term (1/32) exponential moving average of learned-clause LBD.
    lbd_ema_fast: f64,
    /// Long-term (1/4096) exponential moving average of learned-clause LBD.
    lbd_ema_slow: f64,
    /// Long-term exponential moving average of the trail size at conflicts,
    /// used to postpone EMA restarts while an assignment looks promising.
    trail_ema: f64,
    /// Whether the EMAs have been seeded with a first observation.
    ema_seeded: bool,
    /// Conflict count at which the next rephasing fires.
    rephase_next: u64,
    /// Current rephasing interval (grows by 50% per rephase).
    rephase_interval: u64,
    /// Which rephasing variant fires next (cycles through the kinds).
    rephase_kind: u8,
    /// Deterministic xorshift state for the random rephasing variant.
    rephase_rng: u64,
    /// Saved polarities of the deepest trail seen since the last rephase
    /// (the "target" phase vector).
    best_phase: Vec<bool>,
    /// Size of the deepest trail recorded into `best_phase`.
    best_trail: usize,
    /// Rotating scan position of the vivifier, so successive inprocessing
    /// calls spread their budget across the whole clause database.
    vivify_head: usize,
    /// Share ceiling assigned to clauses added through [`Solver::add_clause`]
    /// while a shareable encoding section is open (see
    /// [`Solver::set_share_ceiling`]); `SHARE_NONE` outside such sections.
    share_mode: u32,
    /// Share ceilings of binary clauses, keyed by the two literal codes in
    /// ascending order. Only shareable binaries are stored; absence means
    /// `SHARE_NONE`.
    bin_share: HashMap<(u32, u32), u32>,
    /// Share ceilings of root-level (level-0) assignments: the derivation
    /// ceiling of the fact, folded into every conflict analysis that resolves
    /// the literal away. `SHARE_NONE` for unshareable facts.
    pub(crate) level0_share: Vec<u32>,
    /// Shareable learned binary clauses awaiting export.
    bin_exports: Vec<(Lit, Lit, u32)>,
    /// Shareable root-level facts awaiting export.
    unit_exports: Vec<(Lit, u32)>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// A compacting arena collection runs when at least `1/GC_WASTE_DENOMINATOR`
    /// of the literal arena sits in tombstoned holes. Since holes are only
    /// created by database reduction (which checks this bound immediately),
    /// the wasted-hole ratio never exceeds 25% outside of `reduce_db` itself.
    const GC_WASTE_DENOMINATOR: usize = 4;

    /// Creates an empty solver.
    pub fn new() -> Self {
        Self {
            headers: Vec::new(),
            clause_lits: Vec::new(),
            watches: Vec::new(),
            bin_watches: Vec::new(),
            num_bin_clauses: 0,
            assigns: Vec::new(),
            var_data: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            qhead_bin: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            order: VarHeap::default(),
            phase: Vec::new(),
            seen: Vec::new(),
            analyze_scratch: Vec::new(),
            locked_marks: Vec::new(),
            reduce_scratch: Vec::new(),
            wasted_lits: 0,
            ok: true,
            stats: SolverStats::default(),
            conflict_limit: None,
            interrupt: None,
            budget: Budget::default(),
            cancel: None,
            episode: SolverStats::default(),
            last_stop: None,
            #[cfg(any(test, feature = "faults"))]
            fault: None,
            num_learnts: 0,
            max_learnts: 8192,
            frozen: Vec::new(),
            eliminated: Vec::new(),
            extension: Vec::new(),
            simp_stats: SimplifyStats::default(),
            proof: None,
            config: SearchConfig::default(),
            lbd_ema_fast: 0.0,
            lbd_ema_slow: 0.0,
            trail_ema: 0.0,
            ema_seeded: false,
            rephase_next: 1024,
            rephase_interval: 1024,
            rephase_kind: 0,
            rephase_rng: 0x9e37_79b9_7f4a_7c15,
            best_phase: Vec::new(),
            best_trail: 0,
            vivify_head: 0,
            share_mode: SHARE_NONE,
            bin_share: HashMap::new(),
            level0_share: Vec::new(),
            bin_exports: Vec::new(),
            unit_exports: Vec::new(),
        }
    }

    /// Replaces the search-loop feature toggles (see [`SearchConfig`]).
    pub fn set_search_config(&mut self, config: SearchConfig) {
        self.config = config;
    }

    /// The active search-loop feature toggles.
    pub fn search_config(&self) -> SearchConfig {
        self.config
    }

    /// Starts DRAT-style proof logging.
    ///
    /// The current clause database — level-0 facts, binary implications and
    /// arena clauses — is snapshotted as the axiom set; from here on, every
    /// clause added through [`Solver::add_clause`] is logged as a further
    /// axiom, and every derived clause (learned clauses, probing units,
    /// strengthenings, elimination resolvents) and deletion is logged as a
    /// lemma/deletion event. After an [`SatResult::Unsat`] answer the log can
    /// be verified independently with [`drat::check`](crate::drat::check).
    ///
    /// With logging off (the default) every log site is a single branch on a
    /// `None` field; the measured overhead of the disabled path is below the
    /// noise floor of a solve.
    ///
    /// # Panics
    ///
    /// Panics if called above decision level 0.
    pub fn start_proof_log(&mut self) {
        assert_eq!(
            self.decision_level(),
            0,
            "proof logging must start at decision level 0"
        );
        let mut log = Box::new(ProofLog::new());
        for &l in &self.trail {
            log.push(ProofStep::Axiom, &[l]);
        }
        // Each binary clause (a ∨ b) lives in two implication lists; the
        // `a.code() < b.code()` guard emits each stored instance exactly once.
        for code in 0..self.bin_watches.len() {
            let a = !Lit::from_code(code);
            for &b in &self.bin_watches[code] {
                if a.code() < b.code() {
                    log.push(ProofStep::Axiom, &[a, b]);
                }
            }
        }
        for i in 0..self.headers.len() {
            if !self.headers[i].deleted {
                let h = self.headers[i];
                let lits = &self.clause_lits[h.start as usize..(h.start + h.len) as usize];
                log.push(ProofStep::Axiom, lits);
            }
        }
        self.proof = Some(log);
    }

    /// The active proof log, if logging is on.
    pub fn proof_log(&self) -> Option<&ProofLog> {
        self.proof.as_deref()
    }

    /// Stops proof logging and returns the accumulated log.
    pub fn take_proof_log(&mut self) -> Option<ProofLog> {
        self.proof.take().map(|b| *b)
    }

    #[inline]
    pub(crate) fn log_axiom(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.push(ProofStep::Axiom, lits);
        }
    }

    #[inline]
    pub(crate) fn log_lemma(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.push(ProofStep::Add, lits);
        }
    }

    #[inline]
    pub(crate) fn log_delete_slice(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.push(ProofStep::Delete, lits);
        }
    }

    /// Logs the deletion of an arena clause (the literals are still in the
    /// arena when the header is tombstoned).
    #[inline]
    pub(crate) fn log_delete_clause(&mut self, clause: u32) {
        let Solver {
            headers,
            clause_lits,
            proof,
            ..
        } = self;
        if let Some(p) = proof.as_mut() {
            let h = headers[clause as usize];
            p.push(
                ProofStep::Delete,
                &clause_lits[h.start as usize..(h.start + h.len) as usize],
            );
        }
    }

    /// Limits the number of conflicts before the solver answers
    /// [`SatResult::Unknown`]. `None` removes the limit.
    ///
    /// The UPEC experiments use this to reproduce the paper's "feasible k"
    /// notion: the window length at which the proof still completes within
    /// the allotted effort.
    pub fn set_conflict_limit(&mut self, limit: Option<u64>) {
        self.conflict_limit = limit;
    }

    /// Installs a shared interrupt flag checked at the same place as the
    /// conflict limit (once per conflict). When another thread raises the
    /// flag, the current `solve` call winds down and returns
    /// [`SatResult::Unknown`]; the solver state stays valid and later calls
    /// (after the flag is cleared) work normally.
    ///
    /// This is the cancellation hook the portfolio scheduler in the `upec`
    /// crate uses to stop losing solver configurations as soon as a winner
    /// produces a definitive answer.
    pub fn set_interrupt(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.interrupt = flag;
    }

    /// Whether an installed interrupt flag is currently raised.
    ///
    /// Callers that wrap `solve` in their own retry policies (e.g. the
    /// adaptive simplification trigger in the `bmc` unroller) use this to
    /// tell a cancellation apart from an exhausted conflict budget.
    pub fn interrupt_raised(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Sets the deterministic per-episode resource [`Budget`]. The budget
    /// applies to every subsequent `solve` episode until replaced; an
    /// exhausted episode answers [`SatResult::Unknown`] with
    /// [`StopCause::BudgetExhausted`], preserves all solver state, and the
    /// next `solve` call resumes with a fresh allotment.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The active per-episode budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Installs (or removes, with `None`) an external [`CancelToken`].
    ///
    /// Unlike the per-conflict interrupt flag ([`Solver::set_interrupt`]),
    /// the token is polled only at restart boundaries and at episode entry
    /// — the zero-cost-when-unset hook the portfolio scheduler uses to stop
    /// losing configurations.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Why the most recent `solve` episode returned
    /// [`SatResult::Unknown`], or `None` if it produced a definitive
    /// answer (or no episode ran yet). Layered callers use this to tell an
    /// exhausted budget apart from an external cancellation when deciding
    /// whether to retry, degrade or abort.
    pub fn last_stop(&self) -> Option<StopCause> {
        self.last_stop
    }

    /// Counter deltas of the current (or most recent) episode — the spend
    /// the budget caps are measured against.
    pub fn episode_spent(&self) -> SolverStats {
        self.stats.delta_since(&self.episode)
    }

    /// Arms (or disarms, with `None`) a one-shot fault-injection plan; see
    /// [`crate::faults`]. Testing only — the hook does not exist in release
    /// builds.
    #[cfg(any(test, feature = "faults"))]
    pub fn inject_fault(&mut self, plan: Option<crate::faults::FaultPlan>) {
        self.fault = plan;
    }

    /// The armed fault-injection plan, if any (testing only).
    #[cfg(any(test, feature = "faults"))]
    pub fn injected_fault(&self) -> Option<crate::faults::FaultPlan> {
        self.fault
    }

    /// Whether an installed cancel token has been cancelled.
    fn cancel_requested(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Whether the episode spend has hit the conflict or propagation cap
    /// (evaluated once per conflict).
    fn budget_conflict_cap_hit(&self) -> bool {
        self.budget
            .conflicts
            .is_some_and(|cap| self.stats.conflicts - self.episode.conflicts >= cap)
            || self
                .budget
                .propagations
                .is_some_and(|cap| self.stats.propagations - self.episode.propagations >= cap)
    }

    /// Whether the episode spend has hit the decision or propagation cap
    /// (evaluated once per decision, before the decision is made).
    fn budget_decision_cap_hit(&self) -> bool {
        self.budget
            .decisions
            .is_some_and(|cap| self.stats.decisions - self.episode.decisions >= cap)
            || self
                .budget
                .propagations
                .is_some_and(|cap| self.stats.propagations - self.episode.propagations >= cap)
    }

    /// Polls the armed fault plan at a conflict checkpoint; returns the
    /// emulated stop cause when the plan fires (and disarms it).
    #[cfg(any(test, feature = "faults"))]
    fn fault_at_conflict(&mut self) -> Option<StopCause> {
        use crate::faults::FaultKind;
        let plan = self.fault?;
        if self.stats.conflicts - self.episode.conflicts < plan.after_conflicts {
            return None;
        }
        match plan.kind {
            FaultKind::BudgetExhaustion => {
                self.fault = None;
                Some(StopCause::BudgetExhausted)
            }
            FaultKind::MidSliceAbort => {
                self.fault = None;
                Some(StopCause::Cancelled)
            }
            FaultKind::SpuriousCancellation => None, // fires at restart boundaries
        }
    }

    #[cfg(not(any(test, feature = "faults")))]
    #[inline(always)]
    fn fault_at_conflict(&mut self) -> Option<StopCause> {
        None
    }

    /// Polls the armed fault plan at a restart boundary (where real cancel
    /// tokens are polled); returns `true` when a spurious cancellation
    /// fires (and disarms it).
    #[cfg(any(test, feature = "faults"))]
    fn fault_at_restart(&mut self) -> bool {
        use crate::faults::FaultKind;
        match self.fault {
            Some(plan)
                if plan.kind == FaultKind::SpuriousCancellation
                    && self.stats.conflicts - self.episode.conflicts >= plan.after_conflicts =>
            {
                self.fault = None;
                true
            }
            _ => false,
        }
    }

    #[cfg(not(any(test, feature = "faults")))]
    #[inline(always)]
    fn fault_at_restart(&mut self) -> bool {
        false
    }

    /// Sets the initial learned-clause budget that triggers database
    /// reduction (default 8192). The budget still grows by 50% after every
    /// reduction. Exposed so stress tests can force frequent reductions (and
    /// thus arena collections) on small instances.
    pub fn set_learnt_budget(&mut self, budget: usize) {
        self.max_learnts = budget.max(8);
    }

    /// Fraction of the clause-literal arena occupied by tombstoned holes
    /// (0.0 right after a compaction or simplifier rebuild).
    ///
    /// The garbage collector bounds this below 0.25 at every point where the
    /// solver is quiescent (i.e. outside `reduce_db` itself); the bound is
    /// asserted by the arena-GC test suites in `sat` and `bmc`.
    pub fn arena_wasted_ratio(&self) -> f64 {
        if self.clause_lits.is_empty() {
            0.0
        } else {
            self.wasted_lits as f64 / self.clause_lits.len() as f64
        }
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem clauses (excluding long learned clauses; binary
    /// clauses — including learned binaries, which are retained permanently —
    /// are counted).
    pub fn num_clauses(&self) -> usize {
        self.headers
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
            + self.num_bin_clauses
    }

    /// The literals of a clause.
    pub(crate) fn lits_of(&self, clause: u32) -> &[Lit] {
        let h = &self.headers[clause as usize];
        &self.clause_lits[h.start as usize..(h.start + h.len) as usize]
    }

    /// Solving statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Allocates a fresh Boolean variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.var_data.push(VarData {
            reason: Reason::Decision,
            level: 0,
        });
        self.activity.push(0.0);
        self.phase.push(false);
        self.best_phase.push(false);
        self.level0_share.push(SHARE_NONE);
        self.seen.push(false);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.order.add_var();
        self.order.insert(v, &self.activity);
        v
    }

    /// Ensures variables `0..n` exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    fn value_var(&self, var: Var) -> LBool {
        self.assigns[var.index()]
    }

    pub(crate) fn value_lit(&self, lit: Lit) -> LBool {
        let v = self.assigns[lit.var().index()];
        if lit.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Pushes a new decision level (used by the simplifier's failed-literal
    /// probes; the search loop inlines the same two steps).
    pub(crate) fn push_decision(&mut self, lit: Lit) {
        self.trail_lim.push(self.trail.len());
        self.enqueue(lit, Reason::Decision);
    }

    /// Adds a clause to the solver.
    ///
    /// Duplicate literals are removed and tautological clauses silently
    /// dropped. Adding the empty clause (or a clause falsified at level 0)
    /// makes the solver permanently unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable that has not been allocated.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        assert_eq!(
            self.decision_level(),
            0,
            "clauses may only be added at decision level 0"
        );
        if !self.ok {
            return;
        }
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} refers to an unallocated variable"
            );
            assert!(
                !self.eliminated[l.var().index()],
                "literal {l} refers to an eliminated variable; variables that \
                 may appear in clauses added after `simplify` must be frozen \
                 with `freeze_var` first"
            );
        }
        // Log the original clause as an axiom; the checker performs its own
        // dedup/tautology handling, and level-0-falsified literals are
        // root-false for the checker too.
        self.log_axiom(&clause);
        // Tautology check, then order-preserving dedup / falsified-literal
        // simplification at level 0. The original literal order is kept so
        // the watched positions stay spread across the clause set — sorting
        // by literal code would concentrate every watch on the lowest-index
        // variables and produce pathologically long watch lists.
        if clause
            .iter()
            .any(|&l| clause.iter().any(|&other| other == !l))
        {
            return; // tautology
        }
        let mut simplified: Vec<Lit> = Vec::with_capacity(clause.len());
        // Dropping a root-falsified literal is a resolution with the level-0
        // fact, so the stored clause's share ceiling folds that fact's
        // derivation ceiling in.
        let mut share = self.share_mode;
        for &l in &clause {
            if simplified.contains(&l) {
                continue; // duplicate
            }
            match self.value_lit(l) {
                LBool::True => return, // already satisfied
                LBool::False => share = share.max(self.level0_share[l.var().index()]),
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
            }
            1 => {
                self.set_level0_share(simplified[0], share);
                self.enqueue(simplified[0], Reason::Decision);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            2 => {
                self.attach_binary_shared(simplified[0], simplified[1], share);
            }
            _ => {
                self.attach_clause_shared(simplified, false, share);
            }
        }
    }

    /// Adds every clause of a [`CnfFormula`], allocating variables as needed.
    pub fn add_formula(&mut self, formula: &CnfFormula) {
        self.reserve_vars(formula.num_vars());
        for clause in formula.clauses() {
            self.add_clause(clause.iter().copied());
        }
    }

    /// Records a binary clause `(a ∨ b)` in the implication lists. Binary
    /// clauses never enter the arena and are never deleted.
    pub(crate) fn attach_binary(&mut self, a: Lit, b: Lit) {
        debug_assert_ne!(a.var(), b.var());
        self.bin_watches[(!a).code()].push(b);
        self.bin_watches[(!b).code()].push(a);
        self.num_bin_clauses += 1;
    }

    /// [`Solver::attach_binary`] carrying a share ceiling. Duplicate binaries
    /// keep the smallest ceiling seen (if a shareable copy exists the clause
    /// is derivable at that ceiling regardless of later copies).
    pub(crate) fn attach_binary_shared(&mut self, a: Lit, b: Lit, share: u32) {
        self.attach_binary(a, b);
        if share != SHARE_NONE {
            let key = Self::bin_key(a, b);
            let entry = self.bin_share.entry(key).or_insert(share);
            *entry = (*entry).min(share);
        }
    }

    /// Canonical map key of a binary clause: both literal codes, ascending.
    fn bin_key(a: Lit, b: Lit) -> (u32, u32) {
        let (x, y) = (a.code() as u32, b.code() as u32);
        (x.min(y), x.max(y))
    }

    /// Share ceiling of a binary clause (`SHARE_NONE` when untracked).
    pub(crate) fn bin_share_of(&self, a: Lit, b: Lit) -> u32 {
        self.bin_share
            .get(&Self::bin_key(a, b))
            .copied()
            .unwrap_or(SHARE_NONE)
    }

    /// Records the derivation ceiling of a root-level fact, and queues it for
    /// export when shareable.
    pub(crate) fn set_level0_share(&mut self, lit: Lit, share: u32) {
        self.level0_share[lit.var().index()] = share;
        if share != SHARE_NONE {
            self.unit_exports.push((lit, share));
        }
    }

    /// Clears every binary share ceiling (used by the simplifier rebuild,
    /// which re-adds surviving binaries with recomputed ceilings).
    pub(crate) fn clear_bin_share(&mut self) {
        self.bin_share.clear();
    }

    pub(crate) fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 3, "binary clauses use the implication lists");
        let idx = self.headers.len() as u32;
        let w0 = Watcher {
            clause: idx,
            blocker: lits[1],
        };
        let w1 = Watcher {
            clause: idx,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).code()].push(w0);
        self.watches[(!lits[1]).code()].push(w1);
        if learnt {
            self.num_learnts += 1;
            self.stats.learnt_clauses = self.num_learnts as u64;
        }
        let start = self.clause_lits.len() as u32;
        let len = lits.len() as u32;
        self.clause_lits.extend_from_slice(&lits);
        self.headers.push(ClauseHeader {
            start,
            len,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd: 0,
            share: SHARE_NONE,
            exported: false,
        });
        idx
    }

    /// [`Solver::attach_clause`] carrying a share ceiling.
    pub(crate) fn attach_clause_shared(&mut self, lits: Vec<Lit>, learnt: bool, share: u32) -> u32 {
        let idx = self.attach_clause(lits, learnt);
        self.headers[idx as usize].share = share;
        idx
    }

    /// Opens (`Some(frame)`) or closes (`None`) a shareable encoding section:
    /// clauses added while a section is open are tagged with the given frame
    /// ceiling and become candidates for cross-query sharing. Only the
    /// transition-relation encoding of the unrolling layer opens sections —
    /// scenario constraints and obligations stay untagged, which is what
    /// keeps exported clauses sound in other queries over the same compiled
    /// transition.
    pub fn set_share_ceiling(&mut self, frame: Option<u32>) {
        self.share_mode = frame.unwrap_or(SHARE_NONE);
    }

    /// Retroactively marks every current root-level fact as shareable at the
    /// given ceiling. The unrolling layer calls this once for the constant
    /// `true` literal that precedes the first shareable section.
    pub fn mark_root_facts_shared(&mut self, frame: u32) {
        for i in 0..self.trail.len() {
            let lit = self.trail[i];
            self.set_level0_share(lit, frame);
        }
    }

    pub(crate) fn enqueue(&mut self, lit: Lit, reason: Reason) {
        debug_assert_eq!(self.value_lit(lit), LBool::Undef);
        self.assigns[lit.var().index()] = LBool::from_bool(lit.is_positive());
        self.var_data[lit.var().index()] = VarData {
            reason,
            level: self.decision_level(),
        };
        self.trail.push(lit);
    }

    pub(crate) fn propagate(&mut self) -> Option<Conflict> {
        loop {
            // Phase 1: exhaust the binary implication graph. Binary clauses
            // are the bulk of a Tseitin encoding and each one costs a single
            // inline `Lit` read here — no header, no arena, no watcher moves.
            while self.qhead_bin < self.trail.len() {
                let p = self.trail[self.qhead_bin];
                self.qhead_bin += 1;
                self.stats.propagations += 1;
                // Move the list out for the scan; `enqueue` never touches
                // the implication lists, so this is safe and avoids
                // re-borrowing per entry.
                let implications = std::mem::take(&mut self.bin_watches[p.code()]);
                let mut conflict = None;
                for &q in &implications {
                    match self.value_lit(q) {
                        LBool::True => {}
                        LBool::Undef => {
                            if self.trail_lim.is_empty() {
                                // A root-level propagation derives a new
                                // level-0 fact; its share ceiling folds the
                                // binary clause's and the antecedent fact's.
                                let share = self
                                    .bin_share_of(!p, q)
                                    .max(self.level0_share[p.var().index()]);
                                self.set_level0_share(q, share);
                            }
                            self.enqueue(q, Reason::Binary(!p));
                        }
                        LBool::False => {
                            conflict = Some(Conflict::Binary(q, !p));
                            break;
                        }
                    }
                }
                self.bin_watches[p.code()] = implications;
                if let Some(conflict) = conflict {
                    self.qhead = self.trail.len();
                    self.qhead_bin = self.trail.len();
                    return Some(conflict);
                }
            }

            // Phase 2: one long-clause step, then back to the binaries.
            if self.qhead >= self.trail.len() {
                return None;
            }
            let p = self.trail[self.qhead];
            self.qhead += 1;

            // Move the list out for the scan; during the scan no watcher can
            // be pushed onto `p`'s own list (a new watch `!lk` equals `p`
            // only if `lk == !p`, and `!p` is false here, never a valid new
            // watch), so the compacted list is moved back in O(1) below.
            let mut conflict = None;
            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            'watchers: while i < watchers.len() {
                let w = watchers[i];
                // Fast path: the blocker literal is already true.
                if self.value_lit(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let ci = w.clause as usize;
                let header = self.headers[ci];
                if header.deleted {
                    watchers.swap_remove(i);
                    continue;
                }
                let s = header.start as usize;
                // Make sure the false literal (!p) is at position 1.
                if self.clause_lits[s] == !p {
                    self.clause_lits.swap(s, s + 1);
                }
                debug_assert_eq!(self.clause_lits[s + 1], !p);
                let first = self.clause_lits[s];
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    watchers[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = header.len as usize;
                for k in 2..len {
                    let lk = self.clause_lits[s + k];
                    if self.value_lit(lk) != LBool::False {
                        self.clause_lits.swap(s + 1, s + k);
                        self.watches[(!lk).code()].push(Watcher {
                            clause: w.clause,
                            blocker: first,
                        });
                        watchers.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // No new watch found: the clause is unit or conflicting.
                watchers[i].blocker = first;
                if self.value_lit(first) == LBool::False {
                    conflict = Some(Conflict::Long(w.clause));
                    self.qhead = self.trail.len();
                    self.qhead_bin = self.trail.len();
                    // Copy back the remaining watchers untouched.
                    break;
                } else {
                    if self.trail_lim.is_empty() {
                        let mut share = self.headers[ci].share;
                        for k in 1..len {
                            share =
                                share.max(self.level0_share[self.clause_lits[s + k].var().index()]);
                        }
                        self.set_level0_share(first, share);
                    }
                    self.enqueue(first, Reason::Long(w.clause));
                    i += 1;
                }
            }
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = watchers;
            if conflict.is_some() {
                return conflict;
            }
        }
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > 1e100 {
            // Rescaling divides every activity by the same factor, so the
            // heap order is unchanged.
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(var, &self.activity);
    }

    fn bump_clause(&mut self, clause: u32) {
        let c = &mut self.headers[clause as usize];
        c.activity += self.clause_inc;
        if c.activity > 1e20 {
            for cl in &mut self.headers {
                cl.activity *= 1e-20;
            }
            self.clause_inc *= 1e-20;
        }
    }

    fn analyze(&mut self, confl: Conflict) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut index = self.trail.len();
        let current_level = self.decision_level();
        let mut lits = std::mem::take(&mut self.analyze_scratch);
        // Share ceiling of the derivation: the learnt clause is a resolvent
        // of exactly the clauses visited below (conflict clause + reasons),
        // plus — through the level-0 skips — the derivations of any root
        // facts resolved away. The running maximum over all of them is the
        // ceiling of the learnt clause.
        let mut share = 0u32;

        loop {
            lits.clear();
            match confl {
                Conflict::Long(ci) => {
                    if self.headers[ci as usize].learnt {
                        self.bump_clause(ci);
                    }
                    share = share.max(self.headers[ci as usize].share);
                    lits.extend_from_slice(self.lits_of(ci));
                }
                Conflict::Binary(a, b) => {
                    share = share.max(self.bin_share_of(a, b));
                    lits.push(a);
                    lits.push(b);
                }
            }
            let start = usize::from(p.is_some());
            for &q in &lits[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.var_data[v.index()].level > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.var_data[v.index()].level >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                } else if self.var_data[v.index()].level == 0 {
                    // Resolving a root fact away uses that fact's derivation.
                    share = share.max(self.level0_share[v.index()]);
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = match self.var_data[lit.var().index()].reason {
                Reason::Long(ci) => Conflict::Long(ci),
                // The antecedent is the binary clause (lit ∨ other); putting
                // the resolved literal first lets the `start` skip above
                // treat it exactly like a long reason clause.
                Reason::Binary(other) => Conflict::Binary(lit, other),
                Reason::Decision => unreachable!("non-decision literal must have a reason"),
            };
        }
        self.analyze_scratch = lits;
        learnt[0] = !p.expect("conflict analysis visits at least one literal");

        // Clear the `seen` markers of the literals kept in the learnt clause.
        for &l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }

        // Compute the backtrack level: the highest level among learnt[1..].
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.var_data[learnt[i].var().index()].level
                    > self.var_data[learnt[max_i].var().index()].level
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.var_data[learnt[1].var().index()].level
        };
        (learnt, backtrack_level, share)
    }

    pub(crate) fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        for i in (target..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.assigns[v.index()] = LBool::Undef;
            // Scrub the reason on unassignment: a clause-index reason on an
            // unassigned variable would dangle across database reduction,
            // arena collection and simplifier rebuilds. This store makes
            // "unassigned ⇒ no clause reference" a global invariant that
            // `debug_validate` checks unconditionally.
            self.var_data[v.index()].reason = Reason::Decision;
            self.phase[v.index()] = lit.is_positive();
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
        self.qhead_bin = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(var) = self.order.pop(&self.activity) {
            if self.value_var(var) == LBool::Undef && !self.eliminated[var.index()] {
                return Some(var);
            }
        }
        None
    }

    /// Number of distinct decision levels among a clause's literals — the
    /// "literal block distance" quality measure of Glucose. Low-LBD clauses
    /// connect few decision levels and tend to stay useful for the rest of
    /// the search.
    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.var_data[l.var().index()].level)
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn reduce_db(&mut self) {
        // Mark the clauses currently locked as a propagation reason. Only
        // trail (i.e. assigned) variables can carry clause reasons:
        // `backtrack_to` scrubs the reason on every unassignment, so the
        // trail walk sees every live lock. The marks live in a reusable
        // vector (re-zeroed by the clear + resize here), so the whole
        // reduction allocates nothing once the buffers are warm.
        self.locked_marks.clear();
        self.locked_marks.resize(self.headers.len(), false);
        for i in 0..self.trail.len() {
            if let Reason::Long(c) = self.var_data[self.trail[i].var().index()].reason {
                self.locked_marks[c as usize] = true;
            }
        }
        // Retention policy: glue clauses (LBD <= 2) are kept unconditionally;
        // the rest are ranked worst-first by (high LBD, low activity) and the
        // worst half deleted.
        let mut order = std::mem::take(&mut self.reduce_scratch);
        order.clear();
        order.extend(
            self.headers
                .iter()
                .enumerate()
                .filter(|(_, c)| c.learnt && !c.deleted && c.lbd > 2)
                .map(|(i, _)| i as u32),
        );
        order.sort_unstable_by(|&a, &b| {
            let (ca, cb) = (&self.headers[a as usize], &self.headers[b as usize]);
            cb.lbd
                .cmp(&ca.lbd)
                .then_with(|| {
                    ca.activity
                        .partial_cmp(&cb.activity)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.cmp(&b))
        });
        let to_remove = order.len() / 2;
        let mut removed = 0;
        for &idx in order.iter() {
            if removed >= to_remove {
                break;
            }
            let idx = idx as usize;
            if self.locked_marks[idx] {
                continue;
            }
            self.log_delete_clause(idx as u32);
            // The header is tombstoned; its literals stay in the arena as a
            // hole (propagation never visits them again because the watcher
            // entries are dropped lazily) until the compacting collection
            // below reclaims them.
            self.headers[idx].deleted = true;
            self.wasted_lits += self.headers[idx].len as usize;
            removed += 1;
            self.num_learnts -= 1;
            self.stats.deleted_clauses += 1;
        }
        self.reduce_scratch = order;
        self.stats.learnt_clauses = self.num_learnts as u64;
        if self.wasted_lits * Self::GC_WASTE_DENOMINATOR >= self.clause_lits.len()
            && self.wasted_lits > 0
        {
            self.collect_arena();
        }
    }

    /// Compacting garbage collection of the clause arena: rebuilds
    /// `clause_lits`/`headers` without the tombstoned holes and remaps every
    /// watcher and reason index to the surviving clauses. Dead watchers
    /// (lazily-deleted clauses) are dropped in the same sweep.
    fn collect_arena(&mut self) {
        let mut remap: Vec<u32> = vec![u32::MAX; self.headers.len()];
        let live = self.headers.iter().filter(|h| !h.deleted).count();
        let mut new_headers: Vec<ClauseHeader> = Vec::with_capacity(live);
        let mut new_lits: Vec<Lit> =
            Vec::with_capacity(self.clause_lits.len().saturating_sub(self.wasted_lits));
        for (i, h) in self.headers.iter().enumerate() {
            if h.deleted {
                continue;
            }
            remap[i] = new_headers.len() as u32;
            let start = new_lits.len() as u32;
            new_lits
                .extend_from_slice(&self.clause_lits[h.start as usize..(h.start + h.len) as usize]);
            new_headers.push(ClauseHeader { start, ..*h });
        }
        for list in &mut self.watches {
            list.retain_mut(|w| {
                let mapped = remap[w.clause as usize];
                if mapped == u32::MAX {
                    false
                } else {
                    w.clause = mapped;
                    true
                }
            });
        }
        // Remap the reasons of assigned (trail) variables. Unassigned
        // variables hold no clause reference — `backtrack_to` scrubs the
        // reason on unassignment — so the trail walk covers every index
        // into the old arena; the debug sweep below pins that invariant.
        for i in 0..self.trail.len() {
            let vi = self.trail[i].var().index();
            if let Reason::Long(c) = self.var_data[vi].reason {
                debug_assert_ne!(remap[c as usize], u32::MAX, "reason clause must survive GC");
                self.var_data[vi].reason = Reason::Long(remap[c as usize]);
            }
        }
        #[cfg(debug_assertions)]
        for (vi, d) in self.var_data.iter().enumerate() {
            if self.assigns[vi] == LBool::Undef {
                debug_assert!(
                    !matches!(d.reason, Reason::Long(_)),
                    "unassigned v{vi} carries a clause-index reason into arena GC"
                );
            }
        }
        self.headers = new_headers;
        self.clause_lits = new_lits;
        self.wasted_lits = 0;
        self.stats.arena_collections += 1;
    }

    /// Resets the arena-hole accounting (the simplifier's rebuild starts
    /// from an empty, hole-free arena).
    pub(crate) fn reset_waste(&mut self) {
        self.wasted_lits = 0;
    }

    /// Exhaustive internal-invariant check used by the test suites: every
    /// live arena clause is at least ternary and watched on exactly its
    /// first two literals, every watcher points at a live clause through the
    /// correct literal, and every propagation reason refers to a live clause
    /// whose first literal is the propagated one. Dead watchers are only
    /// tolerated for tombstoned (not yet collected) clauses.
    ///
    /// Returns a description of the first violation found.
    pub fn debug_validate(&self) -> Result<(), String> {
        let mut watch_count = vec![0usize; self.headers.len()];
        for (code, list) in self.watches.iter().enumerate() {
            let watched = !Lit::from_code(code);
            for w in list {
                let Some(h) = self.headers.get(w.clause as usize) else {
                    return Err(format!("watcher points at missing clause {}", w.clause));
                };
                if h.deleted {
                    continue; // lazily-deleted watcher, dropped on next visit or GC
                }
                let lits = self.lits_of(w.clause);
                if lits[0] != watched && lits[1] != watched {
                    return Err(format!(
                        "clause {} watched through {watched} which is not in its first two \
                         literals {lits:?}",
                        w.clause
                    ));
                }
                watch_count[w.clause as usize] += 1;
            }
        }
        for (i, h) in self.headers.iter().enumerate() {
            if h.deleted {
                continue;
            }
            if h.len < 3 {
                return Err(format!("arena clause {i} has {} literals", h.len));
            }
            if watch_count[i] != 2 {
                return Err(format!(
                    "clause {i} has {} watchers, expected 2",
                    watch_count[i]
                ));
            }
        }
        for (vi, d) in self.var_data.iter().enumerate() {
            if self.assigns[vi] == LBool::Undef {
                // `backtrack_to` scrubs reasons on unassignment; a clause
                // index surviving here would dangle across the next
                // reduction, collection or rebuild.
                if let Reason::Long(c) = d.reason {
                    return Err(format!(
                        "unassigned v{vi} carries stale clause-index reason {c}"
                    ));
                }
                continue;
            }
            if let Reason::Long(c) = d.reason {
                let Some(h) = self.headers.get(c as usize) else {
                    return Err(format!("reason of v{vi} points at missing clause {c}"));
                };
                if h.deleted {
                    return Err(format!("reason of v{vi} points at deleted clause {c}"));
                }
                if self.lits_of(c)[0].var().index() != vi {
                    return Err(format!(
                        "reason clause {c} of v{vi} does not start with its literal"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Target rephasing: wholesale reset of the saved phase vector. Cycles
    /// through the best-trail snapshot (the assignment that got deepest since
    /// the last rephase), the inverse of the current phases, the constant
    /// `false` polarity and a deterministic xorshift-random vector — with the
    /// best-trail target taking every other turn, as in modern CDCL solvers.
    fn rephase(&mut self) {
        self.stats.rephasings += 1;
        match self.rephase_kind {
            0 | 2 | 4 => self.phase.copy_from_slice(&self.best_phase),
            1 => {
                for p in &mut self.phase {
                    *p = !*p;
                }
            }
            3 => {
                for p in &mut self.phase {
                    *p = false;
                }
            }
            _ => {
                for i in 0..self.phase.len() {
                    self.rephase_rng ^= self.rephase_rng << 13;
                    self.rephase_rng ^= self.rephase_rng >> 7;
                    self.rephase_rng ^= self.rephase_rng << 17;
                    self.phase[i] = self.rephase_rng & 1 == 1;
                }
            }
        }
        self.rephase_kind = (self.rephase_kind + 1) % 6;
        self.best_trail = 0;
    }

    /// Clause vivification (inprocessing): for each candidate clause, assume
    /// the negation of its literals one at a time (with the clause itself
    /// detached) and propagate. A conflict, an implied literal or a falsified
    /// literal each prove a shorter clause, which replaces the original —
    /// logged as a lemma/deletion pair so proof logs stay checkable (the
    /// strengthened clause is reverse-unit-propagation derivable from the
    /// rest of the database, and from the original clause in the
    /// falsified-literal case, which is why the lemma is emitted *before* the
    /// deletion).
    ///
    /// Runs at decision level 0 between solve calls; `max_propagations`
    /// bounds the probing effort, and a rotating cursor spreads successive
    /// calls across the clause database. Returns the number of clauses
    /// strengthened.
    ///
    /// # Panics
    ///
    /// Panics if called above decision level 0.
    pub fn vivify(&mut self, max_propagations: u64) -> u64 {
        assert_eq!(self.decision_level(), 0, "vivify runs at decision level 0");
        if !self.ok {
            return 0;
        }
        let mut span = if obs::enabled() {
            Some(obs::span("sat.vivify"))
        } else {
            None
        };
        // Probing pollutes the saved phases (backtracking records the probe
        // polarity); snapshot and restore so search heuristics are unaffected.
        let saved_phase = self.phase.clone();
        // Clauses locked as a root-level propagation reason must survive.
        self.locked_marks.clear();
        self.locked_marks.resize(self.headers.len(), false);
        for i in 0..self.trail.len() {
            if let Reason::Long(c) = self.var_data[self.trail[i].var().index()].reason {
                self.locked_marks[c as usize] = true;
            }
        }
        let start_props = self.stats.propagations;
        let num = self.headers.len();
        let mut strengthened = 0u64;
        let mut scanned = 0usize;
        while scanned < num && self.ok {
            if self.stats.propagations - start_props >= max_propagations {
                break;
            }
            let ci = self.vivify_head % num.max(1);
            self.vivify_head = (self.vivify_head + 1) % num.max(1);
            scanned += 1;
            let h = self.headers[ci];
            let len = h.len as usize;
            if h.deleted || self.locked_marks[ci] || !(3..=24).contains(&len) {
                continue;
            }
            let lits: Vec<Lit> = self.lits_of(ci as u32).to_vec();
            if lits.iter().any(|&l| self.value_lit(l) == LBool::True) {
                continue; // root-satisfied; the simplifier's business
            }
            // Detach so the probe cannot propagate through the clause itself.
            self.detach_watchers(ci as u32, lits[0], lits[1]);
            let mut kept: Vec<Lit> = Vec::with_capacity(len);
            for &l in &lits {
                match self.value_lit(l) {
                    // Implied by the negations assumed so far: the clause
                    // shrinks to the assumed prefix plus this literal.
                    LBool::True => {
                        kept.push(l);
                        break;
                    }
                    // Refuted by the negations assumed so far (or at root):
                    // the literal is redundant and drops out.
                    LBool::False => {}
                    LBool::Undef => {
                        self.push_decision(!l);
                        let conflict = self.propagate().is_some();
                        kept.push(l);
                        if conflict {
                            break; // the assumed prefix is already contradictory
                        }
                    }
                }
            }
            self.backtrack_to(0);
            if kept.len() == lits.len() {
                // No strengthening: restore the original watchers.
                self.watches[(!lits[0]).code()].push(Watcher {
                    clause: ci as u32,
                    blocker: lits[1],
                });
                self.watches[(!lits[1]).code()].push(Watcher {
                    clause: ci as u32,
                    blocker: lits[0],
                });
                continue;
            }
            strengthened += 1;
            self.stats.vivified_clauses += 1;
            // Lemma before deletion: the checker must still hold the original
            // clause while verifying the strengthened one.
            self.log_lemma(&kept);
            self.log_delete_clause(ci as u32);
            self.headers[ci].deleted = true;
            self.wasted_lits += len;
            if h.learnt {
                self.num_learnts -= 1;
                self.stats.learnt_clauses = self.num_learnts as u64;
            }
            match kept.len() {
                0 => self.ok = false,
                1 => match self.value_lit(kept[0]) {
                    LBool::True => {}
                    LBool::False => self.ok = false,
                    LBool::Undef => {
                        self.level0_share[kept[0].var().index()] = SHARE_NONE;
                        self.enqueue(kept[0], Reason::Decision);
                        if self.propagate().is_some() {
                            self.ok = false;
                        }
                    }
                },
                2 => self.attach_binary_shared(kept[0], kept[1], SHARE_NONE),
                _ => {
                    let lbd = if h.learnt {
                        h.lbd.clamp(1, kept.len() as u32)
                    } else {
                        0
                    };
                    let learnt = h.learnt;
                    let cref = self.attach_clause_shared(kept, learnt, SHARE_NONE);
                    self.headers[cref as usize].lbd = lbd;
                }
            }
        }
        self.phase = saved_phase;
        if self.wasted_lits * Self::GC_WASTE_DENOMINATOR >= self.clause_lits.len()
            && self.wasted_lits > 0
        {
            self.collect_arena();
        }
        if let Some(span) = &mut span {
            span.attr_u64("checked", scanned as u64);
            span.attr_u64("strengthened", strengthened);
            span.attr_u64(
                "propagations",
                self.stats.propagations.saturating_sub(start_props),
            );
        }
        strengthened
    }

    /// Removes the two watcher entries of a clause (watched on `a` and `b`).
    fn detach_watchers(&mut self, clause: u32, a: Lit, b: Lit) {
        for l in [a, b] {
            let list = &mut self.watches[(!l).code()];
            if let Some(pos) = list.iter().position(|w| w.clause == clause) {
                list.swap_remove(pos);
            }
        }
    }

    /// Hands every not-yet-exported shareable learned clause — long clauses
    /// within the length/LBD quality bounds, learned binaries and root facts
    /// — to `f` together with its share ceiling, marking it exported so each
    /// clause leaves the solver at most once.
    ///
    /// A clause is shareable when its entire derivation stayed inside the
    /// shareable fragment opened with [`Solver::set_share_ceiling`]; the
    /// ceiling is the highest frame tag used anywhere in the derivation.
    pub fn drain_exportable(
        &mut self,
        max_len: usize,
        max_lbd: u32,
        mut f: impl FnMut(&[Lit], u32),
    ) {
        for (lit, share) in std::mem::take(&mut self.unit_exports) {
            f(&[lit], share);
        }
        for (a, b, share) in std::mem::take(&mut self.bin_exports) {
            f(&[a, b], share);
        }
        for i in 0..self.headers.len() {
            let h = self.headers[i];
            if h.deleted
                || !h.learnt
                || h.exported
                || h.share == SHARE_NONE
                || h.len as usize > max_len
                || h.lbd > max_lbd
            {
                continue;
            }
            self.headers[i].exported = true;
            let lits = &self.clause_lits[h.start as usize..(h.start + h.len) as usize];
            f(lits, h.share);
        }
    }

    /// Imports a clause learned by another solver over the same shareable
    /// fragment, attaching it as a learned clause.
    ///
    /// Freeze-contract check: the import is rejected (returning `false`) when
    /// any literal refers to an unallocated or eliminated variable — the
    /// exporting solver's fragment may mention variables this solver's
    /// bounded variable elimination has removed, and resurrecting them would
    /// break the model-extension contract. Also rejected while proof logging
    /// is active: an imported lemma is a consequence of a *different*
    /// formula's derivation and cannot be justified inside the local DRAT
    /// log (certified runs therefore never import; see `docs/certificates.md`).
    ///
    /// # Panics
    ///
    /// Panics if called above decision level 0.
    pub fn import_shared(&mut self, lits: &[Lit], share: u32) -> bool {
        assert_eq!(
            self.decision_level(),
            0,
            "imports happen between solves at decision level 0"
        );
        if !self.ok || self.proof.is_some() {
            return false;
        }
        let mut share = share;
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if l.var().index() >= self.num_vars() || self.eliminated[l.var().index()] {
                return false;
            }
            if kept.contains(&l) {
                continue;
            }
            match self.value_lit(l) {
                LBool::True => return false, // already satisfied at root
                LBool::False => share = share.max(self.level0_share[l.var().index()]),
                LBool::Undef => kept.push(l),
            }
        }
        if kept.iter().any(|&l| kept.contains(&!l)) {
            return false; // tautology
        }
        self.stats.shared_clause_imports += 1;
        match kept.len() {
            0 => self.ok = false, // every literal root-false: refutation found
            1 => {
                // Direct store (not `set_level0_share`): echoing the fact
                // straight back to the pool would be pure churn.
                self.level0_share[kept[0].var().index()] = share;
                self.enqueue(kept[0], Reason::Decision);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            2 => self.attach_binary_shared(kept[0], kept[1], share),
            _ => {
                let lbd = (kept.len() as u32 - 1).min(6);
                let cref = self.attach_clause_shared(kept, true, share);
                self.headers[cref as usize].lbd = lbd;
                self.headers[cref as usize].exported = true; // no re-export echo
            }
        }
        true
    }

    /// Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...).
    fn luby(i: u64) -> u64 {
        let mut seq = 0u32;
        let mut size = 1u64;
        while size < i + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        let mut i = i;
        while size - 1 != i {
            size = (size - 1) / 2;
            seq -= 1;
            i %= size;
        }
        1u64 << seq
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals.
    ///
    /// Assumptions are treated as decisions made before any free decision; if
    /// they are inconsistent with the formula the result is
    /// [`SatResult::Unsat`] without the assumptions becoming learned facts.
    ///
    /// # Incremental solving
    ///
    /// Successive calls form an *incremental session*: everything expensive
    /// the solver has built up — the learned-clause database, VSIDS variable
    /// activities, saved phases and the level-0 trail of implied facts — is
    /// kept between calls rather than rebuilt. Clauses (and variables) may be
    /// added between calls, which is how the `bmc` unrolling extends a proof
    /// to a deeper bound without restarting the search from nothing, and
    /// per-call obligations are expressed through *activation literals*:
    /// add `(!act ∨ c₁ ∨ …)`, solve with `act` assumed, then retire the
    /// obligation forever with the unit clause `!act`.
    ///
    /// Learned clauses stay sound across calls because assumptions are
    /// pseudo-decisions, never units: every learned clause is implied by the
    /// problem clauses alone.
    ///
    /// ```
    /// use sat::{Solver, SatResult};
    ///
    /// let mut solver = Solver::new();
    /// let x = solver.new_var().positive();
    /// let act = solver.new_var().positive();
    /// solver.add_clause([!act, x]); // obligation "x" guarded by `act`
    /// assert!(solver.solve_with_assumptions(&[act, !x]).is_unsat());
    /// solver.add_clause([!act]);    // retire the obligation ...
    /// assert!(solver.solve_with_assumptions(&[!x]).is_sat()); // ... gone
    /// ```
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        // Telemetry wrapper: with no sink installed this adds one branch and
        // falls straight through to the search; with tracing on it records a
        // `sat.search` span carrying the episode's counter deltas.
        if !obs::enabled() {
            return self.solve_assumptions_inner(assumptions);
        }
        let mut span = obs::span("sat.search");
        let before = self.stats;
        let result = self.solve_assumptions_inner(assumptions);
        let delta = self.stats.delta_since(&before);
        span.attr_str(
            "result",
            match &result {
                SatResult::Sat(_) => "sat",
                SatResult::Unsat => "unsat",
                SatResult::Unknown => "unknown",
            },
        );
        span.attr_u64("decisions", delta.decisions);
        span.attr_u64("conflicts", delta.conflicts);
        span.attr_u64("propagations", delta.propagations);
        span.attr_u64("restarts", delta.restarts);
        span.attr_u64("arena_collections", delta.arena_collections);
        span.attr_u64("rephasings", delta.rephasings);
        span.attr_u64("chrono_backtracks", delta.chrono_backtracks);
        span.attr_u64("vivified_clauses", delta.vivified_clauses);
        span.attr_u64("shared_clause_imports", delta.shared_clause_imports);
        obs::counter("conflicts", delta.conflicts);
        obs::counter("propagations", delta.propagations);
        obs::counter("restarts", delta.restarts);
        obs::counter("arena_collections", delta.arena_collections);
        if delta.restarts > 0 {
            // Marker child span summarizing the episode's restart behaviour.
            let mut rspan = obs::span("sat.restart");
            rspan.attr_str(
                "policy",
                if self.config.ema_restart {
                    "ema+luby"
                } else {
                    "luby"
                },
            );
            rspan.attr_u64("restarts", delta.restarts);
            rspan.attr_u64("rephasings", delta.rephasings);
        }
        if let Some(p) = &self.proof {
            // Marker child span carrying the certificate-size attributes of
            // the proof log accumulated so far.
            let mut pspan = obs::span("sat.proof_log");
            pspan.attr_u64("events", p.num_events() as u64);
            pspan.attr_u64("axioms", p.num_axioms() as u64);
            pspan.attr_u64("lemmas", p.num_lemmas() as u64);
            pspan.attr_u64("deletions", p.num_deletions() as u64);
            pspan.attr_u64("size_bytes", p.size_bytes() as u64);
        }
        result
    }

    fn solve_assumptions_inner(&mut self, assumptions: &[Lit]) -> SatResult {
        for a in assumptions {
            assert!(
                !self.eliminated[a.var().index()],
                "assumption {a} refers to an eliminated variable; assumption \
                 variables must be frozen before `simplify`"
            );
        }
        self.last_stop = None;
        self.episode = self.stats;
        if !self.ok {
            return SatResult::Unsat;
        }
        if self.interrupt_raised() || self.cancel_requested() {
            self.stats.cancellations += 1;
            self.last_stop = Some(StopCause::Cancelled);
            return SatResult::Unknown;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }

        let mut restart_count = 0u64;
        let restart_base = self.config.restart_base.max(1);
        let conflict_start = self.stats.conflicts;

        loop {
            let budget = restart_base * Self::luby(restart_count);
            match self.search(budget, assumptions, conflict_start) {
                SearchOutcome::Sat => {
                    let mut values: Vec<bool> = self
                        .assigns
                        .iter()
                        .enumerate()
                        .map(|(i, v)| match v {
                            LBool::True => true,
                            LBool::False => false,
                            LBool::Undef => self.phase[i],
                        })
                        .collect();
                    self.extend_model(&mut values);
                    self.backtrack_to(0);
                    return SatResult::Sat(Model::new(values));
                }
                SearchOutcome::Unsat => {
                    self.backtrack_to(0);
                    return SatResult::Unsat;
                }
                SearchOutcome::Restart => {
                    restart_count += 1;
                    self.stats.restarts += 1;
                    self.backtrack_to(0);
                    // Restart boundary: the documented poll point of the
                    // external cancellation token (one relaxed load).
                    if self.cancel_requested() || self.fault_at_restart() {
                        self.stats.cancellations += 1;
                        self.last_stop = Some(StopCause::Cancelled);
                        return SatResult::Unknown;
                    }
                    if self.config.rephasing && self.stats.conflicts >= self.rephase_next {
                        self.rephase();
                        self.rephase_interval += self.rephase_interval / 2;
                        self.rephase_next = self.stats.conflicts + self.rephase_interval;
                    }
                }
                SearchOutcome::LimitReached => {
                    self.backtrack_to(0);
                    return SatResult::Unknown;
                }
            }
        }
    }

    fn search(
        &mut self,
        conflict_budget: u64,
        assumptions: &[Lit],
        conflict_start: u64,
    ) -> SearchOutcome {
        let mut conflicts_this_round = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_round += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                // Target-phase snapshot: the deepest trail seen since the
                // last rephase is the assignment that got closest to a model.
                if self.config.rephasing && self.trail.len() > self.best_trail {
                    self.best_trail = self.trail.len();
                    for i in 0..self.trail.len() {
                        let lit = self.trail[i];
                        self.best_phase[lit.var().index()] = lit.is_positive();
                    }
                }
                let trail_size = self.trail.len();
                // Conflicts below the assumption levels mean the assumptions
                // themselves are contradictory with the formula.
                let (learnt, backtrack_level, share) = self.analyze(confl);
                let current_level = self.decision_level();
                // Chronological backtracking: a far backjump throws away the
                // whole assignment prefix above the assertion level even when
                // the conflict is unrelated to it. For jumps longer than the
                // threshold, back off one level instead — the learnt clause
                // is still asserting there (its non-UIP literals sit at
                // levels <= backtrack_level < current_level - 1), and the
                // trail stays sorted by level because the asserting literal
                // is recorded at the new decision level.
                let target_level = if self.config.chrono_backtrack
                    && learnt.len() >= 2
                    && current_level - backtrack_level > self.config.chrono_threshold
                {
                    self.stats.chrono_backtracks += 1;
                    current_level - 1
                } else {
                    backtrack_level
                };
                self.backtrack_to(target_level);
                self.log_lemma(&learnt);
                let lbd = match learnt.len() {
                    1 => 1,
                    2 => 2,
                    _ => self.compute_lbd(&learnt),
                };
                match learnt.len() {
                    1 => {
                        if self.decision_level() == 0 {
                            self.set_level0_share(learnt[0], share);
                        }
                        self.enqueue(learnt[0], Reason::Decision)
                    }
                    2 => {
                        self.attach_binary_shared(learnt[0], learnt[1], share);
                        if share != SHARE_NONE {
                            self.bin_exports.push((learnt[0], learnt[1], share));
                        }
                        self.enqueue(learnt[0], Reason::Binary(learnt[1]));
                    }
                    _ => {
                        let first = learnt[0];
                        let cref = self.attach_clause_shared(learnt, true, share);
                        self.headers[cref as usize].lbd = lbd;
                        self.enqueue(first, Reason::Long(cref));
                    }
                }
                self.var_inc /= 0.95;
                self.clause_inc /= 0.999;
                // Restart-quality EMAs (glucose-style): short-term vs
                // long-term LBD average, plus a trail-size average used to
                // postpone restarts while the assignment is unusually deep.
                if self.config.ema_restart {
                    let l = lbd as f64;
                    let t = trail_size as f64;
                    if self.ema_seeded {
                        self.lbd_ema_fast += (l - self.lbd_ema_fast) / 32.0;
                        self.lbd_ema_slow += (l - self.lbd_ema_slow) / 4096.0;
                        self.trail_ema += (t - self.trail_ema) / 4096.0;
                    } else {
                        self.lbd_ema_fast = l;
                        self.lbd_ema_slow = l;
                        self.trail_ema = t;
                        self.ema_seeded = true;
                    }
                    // Blocking: a conflict from a much-deeper-than-average
                    // trail suggests the search is near a model; reset the
                    // short-term average so the quality gate re-arms.
                    if trail_size as f64 > 1.4 * self.trail_ema {
                        self.lbd_ema_fast = self.lbd_ema_slow;
                    }
                }
                if let Some(limit) = self.conflict_limit {
                    if self.stats.conflicts - conflict_start >= limit {
                        self.last_stop = Some(StopCause::ConflictLimit);
                        return SearchOutcome::LimitReached;
                    }
                }
                if self.interrupt_raised() {
                    self.stats.cancellations += 1;
                    self.last_stop = Some(StopCause::Cancelled);
                    return SearchOutcome::LimitReached;
                }
                if self.budget_conflict_cap_hit() {
                    self.stats.budget_exhaustions += 1;
                    self.last_stop = Some(StopCause::BudgetExhausted);
                    return SearchOutcome::LimitReached;
                }
                if let Some(cause) = self.fault_at_conflict() {
                    match cause {
                        StopCause::BudgetExhausted => self.stats.budget_exhaustions += 1,
                        _ => self.stats.cancellations += 1,
                    }
                    self.last_stop = Some(cause);
                    return SearchOutcome::LimitReached;
                }
                if self.num_learnts > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts += self.max_learnts / 2;
                }
                // LBD-quality gate: recent learnt clauses are markedly worse
                // than the long-term average, so the current orientation is
                // unproductive — restart early rather than riding out the
                // whole Luby budget.
                let ema_restart = self.config.ema_restart
                    && conflicts_this_round >= 32
                    && self.lbd_ema_fast > 1.25 * self.lbd_ema_slow;
                if ema_restart || conflicts_this_round >= conflict_budget {
                    return SearchOutcome::Restart;
                }
            } else {
                // Place assumptions as pseudo-decisions first.
                let mut next_decision = None;
                for &a in assumptions {
                    match self.value_lit(a) {
                        LBool::True => continue,
                        LBool::False => return SearchOutcome::Unsat,
                        LBool::Undef => {
                            next_decision = Some(a);
                            break;
                        }
                    }
                }
                let decision = match next_decision {
                    Some(a) => Some(a),
                    None => {
                        let phase_saving = self.config.phase_saving;
                        self.pick_branch_var().map(|v| {
                            let phase = phase_saving && self.phase[v.index()];
                            Lit::new(v, phase)
                        })
                    }
                };
                match decision {
                    None => return SearchOutcome::Sat,
                    Some(lit) => {
                        // Decision checkpoint of the budget: an answer found
                        // without spending another decision is still
                        // returned; only committing to more work is gated.
                        if self.budget_decision_cap_hit() {
                            // Reinsert the branch variable `pick_branch_var`
                            // popped: every unassigned variable must stay in
                            // the order heap, or a resumed episode could
                            // declare Sat without ever assigning it.
                            self.order.insert(lit.var(), &self.activity);
                            self.stats.budget_exhaustions += 1;
                            self.last_stop = Some(StopCause::BudgetExhausted);
                            return SearchOutcome::LimitReached;
                        }
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, Reason::Decision);
                    }
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    LimitReached,
}

#[cfg(test)]
// The pigeonhole builders index two parallel axes; an iterator form would
// obscure the symmetry the clauses encode.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| solver.new_var().positive()).collect()
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause([v[0]]);
        assert!(s.solve().is_sat());

        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause([v[0]]);
        s.add_clause([!v[0]]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = lits(&mut s, 1);
        s.add_clause(std::iter::empty());
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        let clauses = vec![
            vec![v[0], v[1]],
            vec![!v[0], v[2]],
            vec![!v[1], v[3]],
            vec![!v[2], !v[3]],
            vec![v[1], v[2], v[3]],
        ];
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        let result = s.solve();
        let model = result.model().expect("satisfiable");
        for c in &clauses {
            assert!(
                c.iter().any(|&l| model.lit_is_true(l)),
                "clause {c:?} unsatisfied"
            );
        }
    }

    #[test]
    fn binary_chain_propagates_to_fixpoint() {
        // A pure implication chain: v0 -> v1 -> ... -> v9. Asserting v0
        // must propagate the whole chain without a single decision.
        let mut s = Solver::new();
        let v = lits(&mut s, 10);
        for i in 0..9 {
            s.add_clause([!v[i], v[i + 1]]);
        }
        s.add_clause([v[0]]);
        let before = s.stats();
        let result = s.solve();
        let model = result.model().expect("sat");
        for &l in &v {
            assert!(model.lit_is_true(l));
        }
        assert_eq!(s.stats().delta_since(&before).decisions, 0);
    }

    #[test]
    fn binary_conflict_is_analyzed_correctly() {
        // v0 -> v1 and v0 -> !v1 force !v0 through a binary-clause conflict.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[0], !v[1]]);
        s.add_clause([v[0], v[2]]);
        let result = s.solve();
        let model = result.model().expect("sat");
        assert!(!model.lit_is_true(v[0]));
        assert!(model.lit_is_true(v[2]));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: classic small UNSAT instance that requires real
        // conflict analysis.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var().positive()).collect())
            .collect();
        for pigeon in &p {
            s.add_clause(pigeon.iter().copied());
        }
        for hole in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause([!p[a][hole], !p[b][hole]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn pigeonhole_5_into_4_is_unsat() {
        let n = 5;
        let m = 4;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..m).map(|_| s.new_var().positive()).collect())
            .collect();
        for pigeon in &p {
            s.add_clause(pigeon.iter().copied());
        }
        for hole in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause([!p[a][hole], !p[b][hole]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn xor_chain_is_satisfiable_with_correct_parity() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, x2 ^ x0 = 0 is consistent.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor = |s: &mut Solver, a: Lit, b: Lit, value: bool| {
            if value {
                s.add_clause([a, b]);
                s.add_clause([!a, !b]);
            } else {
                s.add_clause([!a, b]);
                s.add_clause([a, !b]);
            }
        };
        xor(&mut s, v[0], v[1], true);
        xor(&mut s, v[1], v[2], true);
        xor(&mut s, v[2], v[0], false);
        let model = s.solve();
        let m = model.model().expect("sat");
        assert_ne!(m.lit_is_true(v[0]), m.lit_is_true(v[1]));
        assert_ne!(m.lit_is_true(v[1]), m.lit_is_true(v[2]));
        assert_eq!(m.lit_is_true(v[2]), m.lit_is_true(v[0]));
    }

    #[test]
    fn xor_chain_with_odd_total_parity_is_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor = |s: &mut Solver, a: Lit, b: Lit, value: bool| {
            if value {
                s.add_clause([a, b]);
                s.add_clause([!a, !b]);
            } else {
                s.add_clause([!a, b]);
                s.add_clause([a, !b]);
            }
        };
        xor(&mut s, v[0], v[1], true);
        xor(&mut s, v[1], v[2], true);
        xor(&mut s, v[2], v[0], true);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn assumptions_restrict_the_search() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        // Assuming both false contradicts the clause.
        assert!(s.solve_with_assumptions(&[!v[0], !v[1]]).is_unsat());
        // The formula itself is still satisfiable afterwards.
        assert!(s.solve().is_sat());
        // Assumption-compatible solve returns a model honoring them.
        let r = s.solve_with_assumptions(&[!v[0]]);
        let m = r.model().expect("sat");
        assert!(!m.lit_is_true(v[0]));
        assert!(m.lit_is_true(v[1]));
    }

    #[test]
    fn conflict_limit_yields_unknown_on_hard_instance() {
        // Pigeonhole 7 into 6 is hard enough that a tiny conflict budget is
        // exhausted before the proof completes.
        let n = 7;
        let m = 6;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..m).map(|_| s.new_var().positive()).collect())
            .collect();
        for pigeon in &p {
            s.add_clause(pigeon.iter().copied());
        }
        for hole in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause([!p[a][hole], !p[b][hole]]);
                }
            }
        }
        s.set_conflict_limit(Some(10));
        assert_eq!(s.solve(), SatResult::Unknown);
        s.set_conflict_limit(None);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_tolerated() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[0], v[1]]);
        s.add_clause([v[0], !v[0]]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn add_formula_imports_cnf() {
        let mut cnf = CnfFormula::new();
        let a = cnf.new_var().positive();
        let b = cnf.new_var().positive();
        cnf.add_clause([a, b]);
        cnf.add_clause([!a]);
        let mut s = Solver::new();
        s.add_formula(&cnf);
        let r = s.solve();
        let m = r.model().expect("sat");
        assert!(!m.lit_is_true(a));
        assert!(m.lit_is_true(b));
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn stats_are_populated() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1], v[2]]);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[1], v[2]]);
        let _ = s.solve();
        assert!(s.stats().decisions > 0 || s.stats().propagations > 0);
    }

    fn pigeonhole(n: usize, m: usize) -> Solver {
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..m).map(|_| s.new_var().positive()).collect())
            .collect();
        for pigeon in &p {
            s.add_clause(pigeon.iter().copied());
        }
        for hole in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause([!p[a][hole], !p[b][hole]]);
                }
            }
        }
        s
    }

    #[test]
    fn budget_exhaustion_yields_unknown_and_resumes_to_the_same_verdict() {
        let mut budgeted = pigeonhole(7, 6);
        budgeted.set_budget(Budget::conflicts(10));
        assert_eq!(budgeted.solve(), SatResult::Unknown);
        assert_eq!(budgeted.last_stop(), Some(StopCause::BudgetExhausted));
        assert_eq!(budgeted.stats().budget_exhaustions, 1);
        // Each further episode gets a fresh allotment; the search resumes
        // on the retained state and eventually closes the proof.
        let mut episodes = 1;
        let verdict = loop {
            match budgeted.solve() {
                SatResult::Unknown => episodes += 1,
                other => break other,
            }
            assert!(episodes < 10_000, "budgeted solve failed to converge");
        };
        assert!(verdict.is_unsat());
        assert!(episodes > 1, "a 10-conflict slice cannot finish PHP(7,6)");
        assert_eq!(budgeted.last_stop(), None);
        budgeted
            .debug_validate()
            .expect("state intact after resumes");
    }

    #[test]
    fn propagation_and_decision_caps_stop_the_episode() {
        let mut s = pigeonhole(7, 6);
        s.set_budget(Budget::default().with_propagations(50));
        assert_eq!(s.solve(), SatResult::Unknown);
        assert_eq!(s.last_stop(), Some(StopCause::BudgetExhausted));

        s.set_budget(Budget::default().with_decisions(3));
        assert_eq!(s.solve(), SatResult::Unknown);
        assert_eq!(s.last_stop(), Some(StopCause::BudgetExhausted));
        assert!(s.episode_spent().decisions <= 3);

        s.set_budget(Budget::unlimited());
        assert!(s.solve().is_unsat());
        assert_eq!(s.last_stop(), None);
    }

    #[test]
    fn budget_min_takes_the_tighter_cap_per_unit() {
        let a = Budget::conflicts(100).with_decisions(5);
        let b = Budget::conflicts(50).with_propagations(7);
        let m = a.min(b);
        assert_eq!(m.conflicts, Some(50));
        assert_eq!(m.propagations, Some(7));
        assert_eq!(m.decisions, Some(5));
        assert!(Budget::unlimited().min(Budget::unlimited()).is_unlimited());
        assert!(m
            .minus(&SolverStats {
                conflicts: 60,
                propagations: 7,
                decisions: 0,
                ..SolverStats::default()
            })
            .is_exhausted());
    }

    #[test]
    fn cancel_token_stops_the_episode_and_is_reusable() {
        let mut s = pigeonhole(7, 6);
        let token = CancelToken::new();
        s.set_cancel_token(Some(token.clone()));
        // Unset token: solving proceeds normally and answers.
        s.set_budget(Budget::conflicts(5));
        assert_eq!(s.solve(), SatResult::Unknown);
        assert_eq!(s.last_stop(), Some(StopCause::BudgetExhausted));
        // Raised token: the next episode winds down as cancelled.
        token.cancel();
        s.set_budget(Budget::unlimited());
        assert_eq!(s.solve(), SatResult::Unknown);
        assert_eq!(s.last_stop(), Some(StopCause::Cancelled));
        assert!(s.stats().cancellations >= 1);
        // Reset: the same solver finishes the proof.
        token.reset();
        assert!(s.solve().is_unsat());
        s.debug_validate().expect("state intact after cancellation");
    }

    #[test]
    fn identical_budgeted_runs_have_identical_stats() {
        let run = || {
            let mut s = pigeonhole(7, 6);
            s.set_budget(Budget::conflicts(25).with_propagations(10_000));
            let first = s.solve();
            let second = s.solve();
            (first, second, s.stats())
        };
        let (a1, a2, astats) = run();
        let (b1, b2, bstats) = run();
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
        assert_eq!(astats, bstats, "budgeted episodes must be deterministic");
    }

    #[test]
    fn injected_faults_never_corrupt_the_verdict() {
        use crate::faults::FaultPlan;
        for seed in 0..48u64 {
            let plan = FaultPlan::from_seed(seed, 40);
            let mut s = pigeonhole(7, 6);
            s.inject_fault(Some(plan));
            let mut outcomes = Vec::new();
            let verdict = loop {
                match s.solve() {
                    SatResult::Unknown => {
                        outcomes.push(s.last_stop().expect("unknown must carry a stop cause"));
                        assert!(
                            outcomes.len() <= 2,
                            "seed {seed}: one-shot fault stopped more than once"
                        );
                    }
                    other => break other,
                }
            };
            assert!(
                verdict.is_unsat(),
                "seed {seed}: injected fault changed the verdict"
            );
            if !outcomes.is_empty() {
                assert_eq!(s.injected_fault(), None, "fired plan must disarm");
            }
            s.debug_validate()
                .unwrap_or_else(|e| panic!("seed {seed}: poisoned state: {e}"));
        }
    }

    #[test]
    fn raised_interrupt_yields_unknown_and_is_recoverable() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let mut s = pigeonhole(7, 6);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Some(flag.clone()));
        assert!(s.interrupt_raised());
        assert_eq!(s.solve(), SatResult::Unknown);
        // Clearing the flag makes the same solver usable again.
        flag.store(false, Ordering::Relaxed);
        assert!(!s.interrupt_raised());
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn stats_delta_isolates_one_call() {
        let mut s = pigeonhole(5, 4);
        let before = s.stats();
        assert!(s.solve().is_unsat());
        let spent = s.stats().delta_since(&before);
        assert!(spent.conflicts > 0);
        assert_eq!(spent.conflicts, s.stats().conflicts - before.conflicts);
        // A second snapshot right away spends nothing.
        let before = s.stats();
        let spent = s.stats().delta_since(&before);
        assert_eq!(spent.conflicts, 0);
        assert_eq!(spent.decisions, 0);
    }

    #[test]
    fn activation_literals_retire_obligations() {
        let mut s = Solver::new();
        let x = lits(&mut s, 1)[0];
        let act1 = s.new_var().positive();
        let act2 = s.new_var().positive();
        s.add_clause([!act1, x]);
        s.add_clause([!act2, !x]);
        // Both obligations active at once: contradiction.
        assert!(s.solve_with_assumptions(&[act1, act2]).is_unsat());
        // Individually each is fine.
        assert!(s.solve_with_assumptions(&[act1]).is_sat());
        assert!(s.solve_with_assumptions(&[act2]).is_sat());
        // Permanently retire obligation 1; obligation 2 plus x is now the
        // only constraint set.
        s.add_clause([!act1]);
        let r = s.solve_with_assumptions(&[act2]);
        assert!(r.model().expect("sat").lit_is_true(!x));
    }

    #[test]
    fn solver_is_reusable_after_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        assert!(s.solve().is_sat());
        s.add_clause([!v[0]]);
        assert!(s.solve().is_sat());
        s.add_clause([!v[1]]);
        assert!(s.solve().is_unsat());
        // Once unsat, always unsat.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn reduction_compacts_the_arena() {
        // A small learnt budget forces many database reductions on a hard
        // instance; the compacting collector must keep the wasted-hole ratio
        // below the documented bound and the watch/reason structures intact.
        let mut s = pigeonhole(7, 6);
        s.set_learnt_budget(32);
        assert!(s.solve().is_unsat());
        assert!(s.stats().deleted_clauses > 0, "reductions must have run");
        assert!(s.stats().arena_collections > 0, "collections must have run");
        assert!(
            s.arena_wasted_ratio() < 0.25,
            "wasted ratio {} out of bounds",
            s.arena_wasted_ratio()
        );
        s.debug_validate().expect("invariants hold after GC");
    }

    #[test]
    fn binary_clauses_bypass_the_arena() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[1], v[2]]);
        assert_eq!(s.num_clauses(), 2);
        // Nothing reached the arena: both clauses are pure implications.
        assert!(s.headers.is_empty());
        assert!(s.clause_lits.is_empty());
        assert!(s.solve().is_sat());
    }
}
