//! Cone-of-influence analysis over a [`Netlist`].
//!
//! The cone of influence (COI) of a set of *root* signals is the smallest set
//! of signals that can affect any root in any number of clock cycles: it is
//! closed under combinational operands and, for every register whose value is
//! in the cone, additionally contains the register's next-state expression
//! (the sequential feedback). Everything outside the cone is provably
//! irrelevant to any property phrased over the roots, so a bit-blaster can
//! drop it from every time frame without changing satisfiability.
//!
//! The `bmc` crate's transition-relation compiler uses this analysis to prune
//! the unrolled UPEC miter before Tseitin encoding; the [`CoiStats`] it
//! reports are surfaced by the benchmark harness.

use crate::{Netlist, Node, SignalId};

/// Result of a cone-of-influence computation: a per-signal membership mask
/// plus summary counts.
///
/// # Examples
///
/// ```
/// use rtl::{Coi, Netlist};
///
/// let mut n = Netlist::new("two_counters");
/// let live = n.register("live", 4);
/// let dead = n.register("dead", 4);
/// let one = n.lit(1, 4);
/// let live_next = n.add(live.value(), one);
/// let dead_next = n.add(dead.value(), one);
/// n.set_next(live, live_next);
/// n.set_next(dead, dead_next);
/// n.output("live", live.value());
///
/// // Only `live` and its increment logic can influence the output root.
/// let coi = Coi::of(&n, [live.value()]);
/// assert!(coi.contains(live.value()));
/// assert!(!coi.contains(dead.value()));
/// assert_eq!(coi.stats().cone_registers, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Coi {
    in_cone: Vec<bool>,
    stats: CoiStats,
}

/// Summary counts of a cone-of-influence computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoiStats {
    /// Signals in the netlist.
    pub total_signals: usize,
    /// Signals inside the cone.
    pub cone_signals: usize,
    /// Registers in the netlist.
    pub total_registers: usize,
    /// Registers whose value is inside the cone.
    pub cone_registers: usize,
}

impl CoiStats {
    /// Fraction of signals *removed* by the pruning, in percent.
    pub fn signal_reduction_percent(&self) -> f64 {
        if self.total_signals == 0 {
            return 0.0;
        }
        100.0 * (self.total_signals - self.cone_signals) as f64 / self.total_signals as f64
    }
}

impl Coi {
    /// Computes the cone of influence of `roots`.
    ///
    /// The closure walks combinational operands and follows every in-cone
    /// register to its next-state expression until a fixpoint is reached.
    /// Signals never reaching a root — including whole registers and their
    /// feedback logic — stay outside.
    pub fn of<I>(netlist: &Netlist, roots: I) -> Self
    where
        I: IntoIterator<Item = SignalId>,
    {
        let mut span = obs::span("rtl.coi");
        let mut in_cone = vec![false; netlist.len()];
        let mut stack: Vec<SignalId> = Vec::new();
        for root in roots {
            if !in_cone[root.index()] {
                in_cone[root.index()] = true;
                stack.push(root);
            }
        }
        while let Some(id) = stack.pop() {
            let node = netlist.node(id);
            for operand in node.operands() {
                if !in_cone[operand.index()] {
                    in_cone[operand.index()] = true;
                    stack.push(operand);
                }
            }
            if let Node::Register { register, .. } = node {
                let info = &netlist.registers()[register.index()];
                if let Some(next) = info.next {
                    if !in_cone[next.index()] {
                        in_cone[next.index()] = true;
                        stack.push(next);
                    }
                }
            }
        }

        let cone_signals = in_cone.iter().filter(|&&b| b).count();
        let cone_registers = netlist
            .registers()
            .iter()
            .filter(|info| in_cone[info.signal.index()])
            .count();
        let stats = CoiStats {
            total_signals: netlist.len(),
            cone_signals,
            total_registers: netlist.register_count(),
            cone_registers,
        };
        span.attr_u64("total_signals", stats.total_signals as u64);
        span.attr_u64("cone_signals", stats.cone_signals as u64);
        span.attr_u64("total_registers", stats.total_registers as u64);
        span.attr_u64("cone_registers", stats.cone_registers as u64);
        Self { in_cone, stats }
    }

    /// Whether a signal belongs to the cone.
    pub fn contains(&self, id: SignalId) -> bool {
        self.in_cone[id.index()]
    }

    /// Summary counts.
    pub fn stats(&self) -> CoiStats {
        self.stats
    }

    /// Iterates over the in-cone signals in creation (= topological) order.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.in_cone
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| SignalId::from_index(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitVec;

    /// A design with a live counter (feeding the root), a dead counter and a
    /// register that feeds the live one only through its next-state.
    fn layered() -> (Netlist, SignalId, SignalId, SignalId) {
        let mut n = Netlist::new("layered");
        let seed = n.register_init("seed", 4, BitVec::zero(4));
        let live = n.register("live", 4);
        let dead = n.register("dead", 4);
        let live_next = n.add(live.value(), seed.value());
        let one = n.lit(1, 4);
        let dead_next = n.add(dead.value(), one);
        let seed_next = n.xor(seed.value(), one);
        n.set_next(live, live_next);
        n.set_next(dead, dead_next);
        n.set_next(seed, seed_next);
        n.output("live", live.value());
        (n, live.value(), dead.value(), seed.value())
    }

    #[test]
    fn cone_follows_register_feedback() {
        let (n, live, dead, seed) = layered();
        let coi = Coi::of(&n, [live]);
        assert!(coi.contains(live));
        // `seed` only matters through `live`'s next-state function, which the
        // sequential closure must pull in.
        assert!(coi.contains(seed));
        assert!(!coi.contains(dead));
        let stats = coi.stats();
        assert_eq!(stats.total_registers, 3);
        assert_eq!(stats.cone_registers, 2);
        assert!(stats.cone_signals < stats.total_signals);
        assert!(stats.signal_reduction_percent() > 0.0);
    }

    #[test]
    fn empty_roots_empty_cone_and_full_roots_full_cone() {
        let (n, live, dead, seed) = layered();
        let empty = Coi::of(&n, []);
        assert_eq!(empty.stats().cone_signals, 0);
        assert_eq!(empty.signals().count(), 0);
        let full = Coi::of(&n, [live, dead, seed]);
        // Everything feeds one of the three registers here except nothing:
        // the cone closure reaches every signal of this particular design.
        assert_eq!(full.stats().cone_signals, n.len());
    }

    #[test]
    fn signals_iterate_in_topological_order() {
        let (n, live, _, _) = layered();
        let coi = Coi::of(&n, [live]);
        let ids: Vec<usize> = coi.signals().map(|s| s.index()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }
}
