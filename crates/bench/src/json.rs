//! Minimal JSON formatting and validation shared by the bench binaries.
//!
//! The trajectory files (`BENCH_unroll.json`, `BENCH_solver.json`,
//! `BENCH_trace.json`) are hand-formatted — stable field order, fixed
//! decimal places — so diffs between bench runs stay readable. This module
//! centralizes the object builder and string escaping that
//! `solver_stats.rs`, `compile_stats.rs` and `trace_report.rs` previously
//! each hand-rolled, plus a validating parser the smoke gates use to check
//! that emitted JSON/JSONL actually parses.

use std::fmt::Write as _;

/// Returns `value` JSON-escaped (no surrounding quotes). Delegates to the
/// telemetry crate's escaper so bench output and trace output agree on the
/// wire format.
pub fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    obs::json_escape_into(&mut out, value);
    out
}

/// Builder for a single-line JSON object in the bench house style:
/// `{"key": value, "key2": value2}` with fields emitted in insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, name: &str) -> &mut String {
        if !self.body.is_empty() {
            self.body.push_str(", ");
        }
        self.body.push('"');
        obs::json_escape_into(&mut self.body, name);
        self.body.push_str("\": ");
        &mut self.body
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(mut self, name: &str, value: u64) -> Self {
        let _ = write!(self.key(name), "{value}");
        self
    }

    /// Adds a `usize` field.
    pub fn field_usize(self, name: &str, value: usize) -> Self {
        self.field_u64(name, value as u64)
    }

    /// Adds a float field rendered with a fixed number of decimals.
    pub fn field_f64(mut self, name: &str, value: f64, decimals: usize) -> Self {
        let _ = write!(self.key(name), "{value:.decimals$}");
        self
    }

    /// Adds a string field (escaped and quoted).
    pub fn field_str(mut self, name: &str, value: &str) -> Self {
        let body = self.key(name);
        body.push('"');
        obs::json_escape_into(body, value);
        body.push('"');
        self
    }

    /// Adds a field whose value is already-rendered JSON (a nested object
    /// or array).
    pub fn field_raw(mut self, name: &str, value: &str) -> Self {
        self.key(name).push_str(value);
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Validates that `input` is one complete JSON value (with optional
/// surrounding whitespace). Returns a description of the first syntax error.
///
/// This is a validator, not a parser: it builds no value tree, which keeps
/// it dependency-free and fast enough to run over every line of a trace in
/// the CI smoke gate.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", byte as char, *pos))
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(bytes, pos),
        Some(c) => Err(format!("unexpected `{}` at byte {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at byte {}", *pos)),
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'{')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'[')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'"')?;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !bytes.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {}", *pos));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control character at byte {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| -> bool {
        let before = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > before
    };
    if !digits(bytes, pos) {
        return Err(format!("malformed number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("malformed number at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("malformed number at byte {start}"));
        }
    }
    Ok(())
}

fn literal(bytes: &[u8], pos: &mut usize, expected: &[u8]) -> Result<(), String> {
    if bytes.len() >= *pos + expected.len() && &bytes[*pos..*pos + expected.len()] == expected {
        *pos += expected.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_matches_house_style() {
        let obj = JsonObject::new()
            .field_str("id", "orc")
            .field_u64("k", 2)
            .field_f64("solve_seconds", 1.2345, 3)
            .field_raw("nested", "{\"a\": 1}")
            .finish();
        assert_eq!(
            obj,
            "{\"id\": \"orc\", \"k\": 2, \"solve_seconds\": 1.234, \"nested\": {\"a\": 1}}"
        );
        validate(&obj).expect("builder output parses");
    }

    #[test]
    fn escape_handles_special_characters() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn validator_accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e-3",
            "\"a\\u0041\"",
            "{\"a\": [1, 2, {\"b\": null}], \"c\": \"x\"}",
            " { \"spaced\" : 1 } ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\": 1,}",
            "[1 2]",
            "01e",
            "{\"a\": 1} extra",
            "\"unterminated",
            "nul",
        ] {
            assert!(validate(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn escape_round_trips_control_and_unicode_characters() {
        // Control characters must come out as escapes the validator accepts
        // again — a raw control byte inside a string is invalid JSON.
        let hostile = "tab\there\nnewline\r\x08\x0c\x00\x1f and \"quotes\" \\ end";
        let escaped = escape(hostile);
        assert!(
            !escaped.bytes().any(|b| b < 0x20),
            "raw control byte leaked"
        );
        validate(&format!("\"{escaped}\"")).expect("escaped string parses");
        // Non-ASCII passes through unescaped (JSON strings are UTF-8).
        let unicode = "μarch ∀k≤5 → P-alert 🔒";
        validate(&format!("\"{}\"", escape(unicode))).expect("unicode parses");
        assert_eq!(escape(unicode), unicode);
    }

    #[test]
    fn builder_escapes_hostile_keys_and_values() {
        let obj = JsonObject::new()
            .field_str("new\nline", "value with \"quotes\"")
            .field_str("", "")
            .finish();
        validate(&obj).expect("hostile keys/values parse");
        assert_eq!(
            obj,
            "{\"new\\nline\": \"value with \\\"quotes\\\"\", \"\": \"\"}"
        );
    }

    #[test]
    fn builder_handles_empty_and_deeply_nested_raw_fields() {
        assert_eq!(JsonObject::new().finish(), "{}");
        validate(&JsonObject::new().finish()).expect("empty object parses");
        let inner = JsonObject::new().field_u64("depth", 3).finish();
        let middle = JsonObject::new()
            .field_raw("inner", &inner)
            .field_raw("list", "[{}, [], [[1, 2], {\"a\": []}]]")
            .finish();
        let outer = JsonObject::new().field_raw("middle", &middle).finish();
        validate(&outer).expect("nested builder output parses");
        assert!(outer.contains("\"depth\": 3"));
    }

    #[test]
    fn large_u64_values_survive_formatting_and_validation() {
        // u64::MAX exceeds an f64's integer range; the formatter must print
        // full precision and the validator must accept all 20 digits.
        let obj = JsonObject::new()
            .field_u64("max", u64::MAX)
            .field_usize("big", usize::MAX)
            .finish();
        validate(&obj).expect("large integers parse");
        assert!(obj.contains("\"max\": 18446744073709551615"));
    }

    #[test]
    fn validator_rejects_structural_edge_cases() {
        for bad in [
            "{\"a\" 1}",              // missing colon
            "{1: 2}",                 // non-string key
            "[,]",                    // empty slot
            "\"raw \u{0} control\"",  // unescaped control character
            "\"bad \\u12zz escape\"", // malformed \u escape
            "1.",                     // digitless fraction
            "- 1",                    // spaced minus
            "{\"a\": {\"b\": [1, }}", // mismatched close
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn validator_accepts_real_trace_lines() {
        let span = obs::SpanRecord {
            id: 3,
            parent: None,
            name: "upec.check_bound",
            start_ns: 17,
            duration_ns: 9000,
            attrs: vec![
                ("verdict", obs::AttrValue::Str("proven".to_string())),
                ("window", obs::AttrValue::U64(2)),
            ],
        };
        validate(&obs::span_to_jsonl(&span)).expect("span line parses");
        let counter = obs::CounterRecord {
            span: Some(3),
            name: "propagations",
            value: 12,
        };
        validate(&obs::counter_to_jsonl(&counter)).expect("counter line parses");
    }
}
