//! Differential lockdown of cross-session learned-clause sharing: the
//! instance sweep with the [`upec::SharedClausePool`] threaded through it
//! must decide exactly what the isolated sweep decides — same aggregate
//! verdicts, same per-bound status sequences — on every instance.
//!
//! The fast test runs a capped subset whose members include
//! fingerprint-equal siblings (same SoC variant, secret scenario and
//! geometry), so clauses actually flow between sessions; the `#[ignore]`d
//! variant sweeps the full instance registry and is wired into
//! `scripts/verify.sh --full`.

use upec::scenarios::{self, ScenarioInstance};
use upec::{BoundSummary, EngineOptions, InstanceResult, UpecEngine};

/// Renders the decision-relevant content of a scan — everything except the
/// effort counters, which sharing is allowed (indeed, expected) to change.
fn decisions(result: &InstanceResult) -> String {
    let bounds: Vec<String> = result
        .bounds
        .iter()
        .map(|b: &BoundSummary| format!("k={}:{:?}", b.bound, b.status))
        .collect();
    let alert = result
        .first_alert
        .as_ref()
        .map(|a| format!("{:?}@k={}", a.kind, a.window))
        .unwrap_or_else(|| "none".to_string());
    format!(
        "{} verdict={:?} alert={} bounds=[{}]",
        result.instance.id(),
        result.verdict,
        alert,
        bounds.join(", ")
    )
}

fn sweep(instances: Vec<ScenarioInstance>, share: bool, max_window: usize) -> Vec<InstanceResult> {
    UpecEngine::new(
        EngineOptions::new()
            .with_threads(2)
            .with_max_window(max_window)
            .with_clause_sharing(share),
    )
    .run_instances(instances)
}

fn assert_sweeps_agree(shared: &[InstanceResult], isolated: &[InstanceResult]) {
    assert_eq!(shared.len(), isolated.len());
    for (s, i) in shared.iter().zip(isolated) {
        assert_eq!(
            decisions(s),
            decisions(i),
            "clause sharing changed a decision on {}",
            s.instance.id()
        );
    }
}

/// A capped subset: two fingerprint-equal siblings (`secure-cached` and
/// `secure-arch-only` differ only in commitment) plus an unrelated
/// L-alerting miter. Shared-pool and isolated sweeps must byte-match on
/// every decision.
#[test]
fn shared_sweep_matches_isolated_sweep_on_a_fast_subset() {
    let subset: Vec<ScenarioInstance> = scenarios::instances()
        .into_iter()
        .filter(|i| {
            i.geometry.is_default()
                && matches!(i.spec.id, "secure-cached" | "secure-arch-only" | "orc")
        })
        .collect();
    assert_eq!(subset.len(), 3, "expected the three capped instances");
    let shared = sweep(subset.clone(), true, 2);
    let isolated = sweep(subset, false, 2);
    assert_sweeps_agree(&shared, &isolated);
    for result in &shared {
        assert!(
            result.matches_expectation(),
            "{}: expected {:?}, got {:?}",
            result.instance.id(),
            result.instance.expected,
            result.verdict
        );
    }
}

/// Session-level plumbing: two sessions on fingerprint-equal miters (same
/// variant, secret and geometry — only the commitment differs, and the
/// commitment is not part of the CNF until a query poses it) exchange
/// clauses directly, and the importer's verdicts are unchanged.
#[test]
fn exported_session_clauses_import_into_a_fingerprint_equal_sibling() {
    let by_id = |id: &str| {
        scenarios::instances()
            .into_iter()
            .find(|i| i.geometry.is_default() && i.spec.id == id)
            .unwrap_or_else(|| panic!("instance {id} registered"))
    };
    let cached = by_id("secure-cached");
    let arch_only = by_id("secure-arch-only");
    let model_a = cached.build_model();
    let model_b = arch_only.build_model();
    let commitment_a = cached.commitment_set(&model_a);
    let commitment_b = arch_only.commitment_set(&model_b);

    let mut session_a = upec::IncrementalSession::new(&model_a, None);
    let mut session_b = upec::IncrementalSession::new(&model_b, None);
    let fp_a = session_a.share_fingerprint().expect("lazy sessions share");
    let fp_b = session_b.share_fingerprint().expect("lazy sessions share");
    assert_eq!(
        fp_a, fp_b,
        "same variant+secret+geometry must produce equal fingerprints"
    );

    // Baseline: what the importer decides with no foreign clauses.
    let mut isolated = upec::IncrementalSession::new(&model_b, None);
    let baseline: Vec<String> = (1..=2)
        .map(|k| {
            format!(
                "{:?}",
                isolated.check_bound(k, &commitment_b).verdict_name()
            )
        })
        .collect();

    // Let the exporter do real work, then drain it.
    for k in 1..=2 {
        session_a.check_bound(k, &commitment_a);
    }
    let mut exported = Vec::new();
    session_a.export_shared(&mut exported);
    assert!(
        !exported.is_empty(),
        "a two-bound scan must learn at least one purely-definitional clause"
    );

    // The importer accepts some of them (frame 1 is unencoded until the
    // first query, so ceiling-1 clauses are skipped — exactly the frame-tag
    // filter) and still decides identically.
    let imported_at_0 = session_b.import_shared(&exported);
    let mut verdicts = Vec::new();
    for k in 1..=2 {
        verdicts.push(format!(
            "{:?}",
            session_b.check_bound(k, &commitment_b).verdict_name()
        ));
        session_b.import_shared(&exported);
    }
    assert_eq!(verdicts, baseline, "imports flipped a verdict");
    let imported_after = session_b.import_shared(&exported);
    assert!(
        imported_at_0 + imported_after > 0,
        "no exported clause was ever importable; the sharing path is dead"
    );
}

/// The full-registry differential: every instance of the sweep, shared pool
/// versus isolated sessions. Multi-minute; wired into `verify.sh --full`.
#[test]
#[ignore = "full 25-instance differential sweep; run with --ignored (verify.sh --full)"]
fn shared_sweep_matches_isolated_sweep_on_the_full_registry() {
    let instances = scenarios::instances();
    let shared = sweep(instances.clone(), true, usize::MAX);
    let isolated = sweep(instances, false, usize::MAX);
    assert_sweeps_agree(&shared, &isolated);
    for result in &shared {
        assert!(
            result.matches_expectation(),
            "{}: expected {:?}, got {:?}",
            result.instance.id(),
            result.instance.expected,
            result.verdict
        );
    }
}
