//! Combinational evaluation of a netlist for one clock cycle.

use rtl::{BinaryOp, BitVec, Netlist, Node, SignalId, UnaryOp};

/// Evaluates a single node given the values of all earlier signals and the
/// current register/input values supplied through `leaf`.
///
/// `values` must contain valid values for every signal with a smaller index
/// (the creation order of a [`Netlist`] is a topological order, so this is
/// always achievable by evaluating in index order).
pub(crate) fn eval_node(
    netlist: &Netlist,
    id: SignalId,
    values: &[BitVec],
    leaf: &dyn Fn(SignalId) -> BitVec,
) -> BitVec {
    let node = netlist.node(id);
    match node {
        Node::Input { .. } | Node::Register { .. } => leaf(id),
        Node::Const(v) => *v,
        Node::Unary { op, a, .. } => {
            let a = values[a.index()];
            match op {
                UnaryOp::Not => a.not(),
                UnaryOp::Neg => a.neg(),
                UnaryOp::ReduceOr => a.reduce_or(),
                UnaryOp::ReduceAnd => a.reduce_and(),
                UnaryOp::ReduceXor => a.reduce_xor(),
            }
        }
        Node::Binary { op, a, b, .. } => {
            let a = values[a.index()];
            let b = values[b.index()];
            match op {
                BinaryOp::And => a.and(&b),
                BinaryOp::Or => a.or(&b),
                BinaryOp::Xor => a.xor(&b),
                BinaryOp::Add => a.add(&b),
                BinaryOp::Sub => a.sub(&b),
                BinaryOp::Eq => a.eq_bit(&b),
                BinaryOp::Ne => a.eq_bit(&b).not(),
                BinaryOp::Ult => a.ult(&b),
                BinaryOp::Ule => a.ule(&b),
                BinaryOp::Slt => a.slt(&b),
                BinaryOp::Shl => {
                    let amount = b.as_u64().min(u64::from(a.width())) as u32;
                    a.shl(amount)
                }
                BinaryOp::Shr => {
                    let amount = b.as_u64().min(u64::from(a.width())) as u32;
                    a.shr(amount)
                }
            }
        }
        Node::Mux {
            cond, then_, else_, ..
        } => {
            if values[cond.index()].is_true() {
                values[then_.index()]
            } else {
                values[else_.index()]
            }
        }
        Node::Slice { a, hi, lo } => values[a.index()].slice(*hi, *lo),
        Node::Concat { hi, lo, .. } => values[hi.index()].concat(&values[lo.index()]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_arithmetic_dag() {
        let mut n = Netlist::new("t");
        let a = n.input("a", 8);
        let b = n.input("b", 8);
        let sum = n.add(a, b);
        let is_big = n.ult(b, sum);
        n.output("sum", sum);
        n.output("is_big", is_big);

        let mut values = vec![BitVec::zero(1); n.len()];
        let leaf = |id: SignalId| -> BitVec {
            if id == a {
                BitVec::new(10, 8)
            } else {
                BitVec::new(20, 8)
            }
        };
        for id in n.signals() {
            values[id.index()] = eval_node(&n, id, &values, &leaf);
        }
        assert_eq!(values[sum.index()].as_u64(), 30);
        assert!(values[is_big.index()].is_true());
    }

    #[test]
    fn variable_shift_amounts_are_clamped() {
        let mut n = Netlist::new("t");
        let a = n.input("a", 8);
        let amount = n.input("amount", 4);
        let shifted = n.shl(a, amount);
        let mut values = vec![BitVec::zero(1); n.len()];
        let leaf = |id: SignalId| -> BitVec {
            if id == a {
                BitVec::new(0xff, 8)
            } else {
                BitVec::new(12, 4)
            }
        };
        for id in n.signals() {
            values[id.index()] = eval_node(&n, id, &values, &leaf);
        }
        assert_eq!(values[shifted.index()].as_u64(), 0);
    }
}
