//! Measures the deterministic portfolio scheduler (`upec::portfolio`)
//! against the single-configuration solving path on registry scenarios.
//!
//! For every scenario the same query — bound `k`, the scenario's commitment
//! — is solved twice: once on a plain [`IncrementalSession`] under the
//! default [`sat::SearchConfig`], and once as a portfolio race over the
//! three member configurations (default / baseline / aggressive-restart)
//! time-sliced on one core with geometrically growing conflict budgets.
//! Verdicts must agree; the run exits non-zero on any mismatch.
//!
//! Results are printed as a table and written to `BENCH_portfolio.json`:
//! per scenario the winner configuration, the slice count, the
//! budget-exhaustion and cancellation counters, and both wall times;
//! in aggregate the portfolio/single time ratio (the acceptance gate keeps
//! it within 1.05× on the registry at k=2) and the winner histogram across
//! all scenarios.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin portfolio_stats                # registry at k=2
//! cargo run --release -p bench --bin portfolio_stats -- orc meltdown
//! cargo run --release -p bench --bin portfolio_stats -- --k 3 orc
//! cargo run --release -p bench --bin portfolio_stats -- --out /tmp/p.json
//! cargo run --release -p bench --bin portfolio_stats -- --smoke    # CI smoke gate
//! ```
//!
//! `--smoke` is the fast CI gate wired into `scripts/verify.sh`: it runs a
//! three-scenario subset at k=1, asserts that the portfolio verdict matches
//! the single-configuration verdict on every scenario, and runs every race
//! **twice**, asserting that the two runs' deterministic records (slices,
//! budgets, winner, member stats) are byte-identical. It writes no JSON.

use bench::json::JsonObject;
use std::time::Instant;
use upec::engine::IncrementalSession;
use upec::portfolio::{self, PortfolioOptions, PortfolioReport};
use upec::scenarios::{self, ScenarioSpec};
use upec::UpecOptions;

/// Scenario subset exercised by `--smoke` (same as `solver_stats`): one
/// P-alerting miter and two proven ones, all cheap at k=1.
const SMOKE_IDS: [&str; 3] = ["meltdown", "orc", "secure-arch-only"];

fn stop_name(stop: Option<sat::StopCause>) -> &'static str {
    match stop {
        None => "decided",
        Some(sat::StopCause::BudgetExhausted) => "budget",
        Some(sat::StopCause::Cancelled) => "cancelled",
        Some(sat::StopCause::ConflictLimit) => "conflict-limit",
    }
}

/// The byte-reproducible footprint of a race: everything in the report that
/// the determinism contract covers (no wall-clock anywhere). Two runs of the
/// same query must render identical strings — the smoke gate compares these
/// bytes directly.
fn deterministic_record(spec_id: &str, k: usize, report: &PortfolioReport) -> String {
    let slices: Vec<String> = report
        .slices
        .iter()
        .map(|s| {
            JsonObject::new()
                .field_usize("slice", s.slice)
                .field_str("config", s.config)
                .field_u64("budget", s.budget)
                .field_u64("conflicts", s.conflicts)
                .field_str("stop", stop_name(s.stop))
                .finish()
        })
        .collect();
    let members: Vec<String> = report
        .member_stats
        .iter()
        .map(|(name, stats)| {
            JsonObject::new()
                .field_str("config", name)
                .field_u64("conflicts", stats.conflicts)
                .field_u64("propagations", stats.propagations)
                .field_u64("budget_exhaustions", stats.budget_exhaustions)
                .field_u64("cancellations", stats.cancellations)
                .finish()
        })
        .collect();
    JsonObject::new()
        .field_str("id", spec_id)
        .field_usize("k", k)
        .field_str("verdict", report.outcome.verdict_name())
        .field_str("winner", report.winner.unwrap_or("none"))
        .field_u64("portfolio_slices", report.slices.len() as u64)
        .field_u64("budget_exhaustions", report.budget_exhaustions)
        .field_u64("cancellations", report.cancellations)
        .field_raw("slices", &format!("[{}]", slices.join(", ")))
        .field_raw("members", &format!("[{}]", members.join(", ")))
        .finish()
}

struct Row {
    spec: ScenarioSpec,
    single_verdict: &'static str,
    single_seconds: f64,
    portfolio_seconds: f64,
    record: String,
    winner: Option<&'static str>,
    slices: usize,
    budget_exhaustions: u64,
    cancellations: u64,
    verdict: &'static str,
}

fn measure(spec: &ScenarioSpec, k: usize, smoke: bool) -> Row {
    let model = spec.build_model();
    let commitment = spec.commitment_set(&model);

    let mut single = IncrementalSession::with_options(&model, UpecOptions::window(k));
    let start = Instant::now();
    let single_outcome = single.check_bound(k, &commitment);
    let single_seconds = start.elapsed().as_secs_f64();

    let mut options = PortfolioOptions::new(UpecOptions::window(k));
    if smoke {
        // The default first slice decides every smoke query outright; shrink
        // it so the determinism gate exercises genuine multi-slice,
        // multi-member schedules.
        options = options.with_initial_conflicts(64);
    }
    let start = Instant::now();
    let report = portfolio::solve_portfolio(&model, k, &commitment, options, None);
    let portfolio_seconds = start.elapsed().as_secs_f64();

    Row {
        spec: *spec,
        single_verdict: single_outcome.verdict_name(),
        single_seconds,
        portfolio_seconds,
        record: deterministic_record(spec.id, k, &report),
        winner: report.winner,
        slices: report.slices.len(),
        budget_exhaustions: report.budget_exhaustions,
        cancellations: report.cancellations,
        verdict: report.outcome.verdict_name(),
    }
}

fn json_entry(row: &Row, k: usize) -> String {
    let entry = JsonObject::new()
        .field_str("id", row.spec.id)
        .field_usize("k", k)
        .field_str("verdict", row.verdict)
        .field_str("winner", row.winner.unwrap_or("none"))
        .field_u64("portfolio_slices", row.slices as u64)
        .field_u64("budget_exhaustions", row.budget_exhaustions)
        .field_u64("cancellations", row.cancellations)
        .field_f64("single_seconds", row.single_seconds, 3)
        .field_f64("portfolio_seconds", row.portfolio_seconds, 3)
        .finish();
    format!("    {entry}")
}

/// Winner histogram over all rows, in member-configuration order.
fn winner_histogram(rows: &[Row]) -> String {
    let mut histogram = JsonObject::new();
    for (name, _) in portfolio::member_configs() {
        let count = rows.iter().filter(|r| r.winner == Some(name)).count();
        histogram = histogram.field_usize(name, count);
    }
    histogram.finish()
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut ids: Vec<String> = Vec::new();
    let mut k_override: Option<usize> = None;
    let mut out_path = "BENCH_portfolio.json".to_string();
    let mut smoke = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--k" => {
                let parsed = args.next().and_then(|v| v.parse().ok());
                let Some(k) = parsed else {
                    eprintln!("--k needs a numeric value");
                    std::process::exit(2);
                };
                k_override = Some(k);
            }
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                };
                out_path = path;
            }
            "--smoke" => smoke = true,
            id => ids.push(id.to_string()),
        }
    }
    if smoke && ids.is_empty() {
        ids = SMOKE_IDS.iter().map(|s| s.to_string()).collect();
    }
    if ids.is_empty() {
        ids = scenarios::all().iter().map(|s| s.id.to_string()).collect();
    }
    let k = k_override.unwrap_or(if smoke { 1 } else { 2 });

    println!(
        "{:<18} {:>2}  {:>8} {:>7} {:>6} {:>6}  {:>9} {:>9}  {:<18} verdict",
        "scenario", "k", "slices", "exh", "cancel", "", "single", "race", "winner"
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;
    for id in &ids {
        let spec = scenarios::by_id(id).unwrap_or_else(|| {
            eprintln!("unknown scenario `{id}`; known ids:");
            for s in scenarios::all() {
                eprintln!("  {}", s.id);
            }
            std::process::exit(2);
        });
        let row = measure(&spec, k, smoke);
        if row.verdict != row.single_verdict {
            ok = false;
            eprintln!(
                "VERDICT MISMATCH on {}: single={} portfolio={}",
                spec.id, row.single_verdict, row.verdict
            );
        }
        if smoke {
            // Byte-reproducibility gate: the second race of the same query
            // must produce an identical deterministic record.
            let again = measure(&spec, k, smoke);
            if again.record != row.record {
                ok = false;
                eprintln!(
                    "DETERMINISM VIOLATION on {}:\n  first:  {}\n  second: {}",
                    spec.id, row.record, again.record
                );
            }
        }
        println!(
            "{:<18} {:>2}  {:>8} {:>7} {:>6} {:>6}  {:>8.2}s {:>8.2}s  {:<18} {} / {}",
            row.spec.id,
            k,
            row.slices,
            row.budget_exhaustions,
            row.cancellations,
            "",
            row.single_seconds,
            row.portfolio_seconds,
            row.winner.unwrap_or("none"),
            row.single_verdict,
            row.verdict,
        );
        rows.push(row);
    }

    let total_single: f64 = rows.iter().map(|r| r.single_seconds).sum();
    let total_portfolio: f64 = rows.iter().map(|r| r.portfolio_seconds).sum();
    let ratio = total_portfolio / total_single.max(1e-9);
    println!(
        "\naggregate solve time: single {total_single:.2}s, portfolio {total_portfolio:.2}s \
         ({ratio:.2}x)"
    );
    if !smoke && ratio > 1.05 {
        println!("note: portfolio exceeded the 1.05x acceptance envelope on this machine");
    }
    if smoke {
        // The smoke gate is a verdict/determinism check, not a measurement:
        // never overwrite the tracked bench JSON from here.
        if ok {
            println!(
                "smoke: portfolio verdicts agree with the single-configuration path and \
                 races are byte-reproducible"
            );
        } else {
            std::process::exit(1);
        }
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"portfolio_stats\",\n  \"unit\": \"slices, episodes, seconds\",\n  \
         \"aggregate\": {{\"single_seconds\": {total_single:.3}, \"portfolio_seconds\": \
         {total_portfolio:.3}, \"ratio\": {ratio:.2}, \"winner_histogram\": {}}},\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        winner_histogram(&rows),
        rows.iter()
            .map(|r| json_entry(r, k))
            .collect::<Vec<_>>()
            .join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");
    if !ok {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upec::{PortfolioReport, SliceRecord, UpecOutcome, UpecStats};

    fn sample_report() -> PortfolioReport {
        PortfolioReport {
            outcome: UpecOutcome::Proven(UpecStats::default()),
            winner: Some("default"),
            slices: vec![
                SliceRecord {
                    slice: 0,
                    config: "default",
                    budget: 256,
                    conflicts: 256,
                    stop: Some(sat::StopCause::BudgetExhausted),
                },
                SliceRecord {
                    slice: 1,
                    config: "baseline",
                    budget: 300,
                    conflicts: 12,
                    stop: None,
                },
            ],
            member_stats: vec![
                ("default", sat::SolverStats::default()),
                ("baseline", sat::SolverStats::default()),
                ("aggressive-restart", sat::SolverStats::default()),
            ],
            budget_exhaustions: 1,
            cancellations: 0,
            exported_clauses: 0,
        }
    }

    fn sample_row() -> Row {
        let spec = scenarios::by_id("orc").expect("registered scenario");
        Row {
            spec,
            single_verdict: "proven",
            single_seconds: 1.0,
            portfolio_seconds: 1.02,
            record: deterministic_record(spec.id, 2, &sample_report()),
            winner: Some("default"),
            slices: 2,
            budget_exhaustions: 1,
            cancellations: 0,
            verdict: "proven",
        }
    }

    /// Schema regression: every `BENCH_portfolio.json` scenario entry carries
    /// the portfolio counters (`portfolio_slices`, `budget_exhaustions`,
    /// `cancellations`, `winner`) and parses through the bench JSON
    /// validator. Downstream trajectory tooling keys on these field names.
    #[test]
    fn entry_schema_carries_portfolio_counters() {
        let entry = json_entry(&sample_row(), 2);
        bench::json::validate(entry.trim()).expect("entry is valid JSON");
        for field in [
            "\"id\": ",
            "\"winner\": \"default\"",
            "\"portfolio_slices\": 2",
            "\"budget_exhaustions\": 1",
            "\"cancellations\": 0",
            "\"single_seconds\": ",
            "\"portfolio_seconds\": ",
        ] {
            assert!(entry.contains(field), "entry lost field {field}: {entry}");
        }
        // Field order is part of the tracked-diff contract.
        let winner = entry.find("\"winner\"").expect("present");
        let slices = entry.find("\"portfolio_slices\"").expect("present");
        let exhaustions = entry.find("\"budget_exhaustions\"").expect("present");
        let cancellations = entry.find("\"cancellations\"").expect("present");
        assert!(
            winner < slices && slices < exhaustions && exhaustions < cancellations,
            "stable field order violated: {entry}"
        );
    }

    /// The winner histogram covers every member configuration by name.
    #[test]
    fn winner_histogram_names_every_member() {
        let histogram = winner_histogram(&[sample_row()]);
        bench::json::validate(&histogram).expect("histogram is valid JSON");
        for (name, _) in portfolio::member_configs() {
            assert!(
                histogram.contains(&format!("\"{name}\": ")),
                "histogram lost member {name}: {histogram}"
            );
        }
        assert!(histogram.contains("\"default\": 1"), "{histogram}");
    }

    /// The deterministic record excludes wall-clock entirely — the byte-match
    /// smoke gate depends on it.
    #[test]
    fn deterministic_record_is_wall_clock_free() {
        let record = deterministic_record("orc", 2, &sample_report());
        bench::json::validate(&record).expect("record is valid JSON");
        assert!(!record.contains("seconds"), "{record}");
        assert!(record.contains("\"stop\": \"budget\""), "{record}");
        assert!(record.contains("\"stop\": \"decided\""), "{record}");
    }
}
