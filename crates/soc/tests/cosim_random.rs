//! Randomized co-simulation: the RTL SoC and the ISA-level golden model must
//! agree on the architectural state reached by arbitrary fault-free programs,
//! for every design variant (the variants only differ in covert timing/state
//! side effects, never in architectural results).

use rtl::SplitMix64;
use soc::{Instruction, Program, SocConfig, SocSim, SocVariant};

fn random_instruction(rng: &mut SplitMix64) -> Instruction {
    let rd = rng.gen_range(0..8) as u32;
    let rs1 = rng.gen_range(0..8) as u32;
    let rs2 = rng.gen_range(0..8) as u32;
    match rng.gen_range(0..10) {
        0 => Instruction::Addi {
            rd,
            rs1,
            imm: rng.gen_range(-512..512) as i32,
        },
        1 => Instruction::Add { rd, rs1, rs2 },
        2 => Instruction::Sub { rd, rs1, rs2 },
        3 => Instruction::Xor { rd, rs1, rs2 },
        4 => Instruction::Or { rd, rs1, rs2 },
        5 => Instruction::And { rd, rs1, rs2 },
        6 => Instruction::Sltu { rd, rs1, rs2 },
        7 => Instruction::Andi {
            rd,
            rs1,
            imm: rng.gen_range(0..256) as i32,
        },
        // Loads/stores through x1, which every generated program points at a
        // small scratch array, with word-aligned offsets.
        8 => Instruction::Lw {
            rd,
            rs1: 1,
            offset: 4 * rng.gen_range(0..4) as i32,
        },
        _ => Instruction::Sw {
            rs1: 1,
            rs2,
            offset: 4 * rng.gen_range(0..4) as i32,
        },
    }
}

#[test]
fn rtl_matches_golden_model() {
    let mut rng = SplitMix64::new(0xc051);
    for case in 0..24 {
        let variant = [
            SocVariant::Secure,
            SocVariant::Orc,
            SocVariant::MeltdownStyle,
        ][case % 3];
        let config = SocConfig::new(variant);
        let len = rng.gen_range(1..20) as usize;
        let mut program = Program::new(0);
        program.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: 0x40,
        });
        for _ in 0..len {
            program.push(random_instruction(&mut rng));
        }
        program.push_nops(4);

        let mut sim = SocSim::new(config.clone(), program.clone());
        let mut golden = sim.golden();
        // Generous cycle budget: every instruction can miss in the cache.
        sim.run(60 + 20 * program.len() as u64);
        golden.run(&program, &config, 4 * program.len());

        for r in 1..config.num_registers {
            assert_eq!(
                sim.reg(r),
                golden.regs[r as usize],
                "case {case}: x{r} mismatch on {variant:?}\n{}",
                program.listing()
            );
        }
        // Memory written through the scratch array must agree too.
        for offset in 0..4u32 {
            let addr = 0x40 + 4 * offset;
            assert_eq!(
                sim.load_word(addr),
                golden.load_word(addr),
                "case {case}: mem[{addr:#x}]"
            );
        }
    }
}
