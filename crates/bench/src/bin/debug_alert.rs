//! Diagnostic helper: reproduce a UPEC counterexample and dump the values of
//! every miter register pair and the key control signals frame by frame.
//! Used while tuning the side constraints; kept because it is genuinely
//! useful when extending the SoC.
//!
//! ```text
//! cargo run --release -p bench --bin debug_alert [variant] [window]
//! ```

use bmc::{UnrollOptions, Unrolling};
use sat::SatResult;
use upec::{scenarios, StateClass};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Accept either a registry scenario id or the legacy variant shorthand.
    let id = match args.get(1).map(String::as_str) {
        Some("orc") | None => "orc",
        Some("meltdown") => "meltdown",
        Some("pmp") => "pmp-lock",
        Some("secure") => "secure-cached",
        Some(other) => other,
    };
    let spec = scenarios::by_id(id).unwrap_or_else(|| {
        eprintln!("unknown scenario `{id}`; registered ids:");
        for s in scenarios::registry() {
            eprintln!("  {:<18} {}", s.id, s.title);
        }
        std::process::exit(1);
    });
    let variant = spec.variant;
    let window: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);

    let model = spec.build_model();
    let aliases: Vec<_> = model
        .pairs()
        .iter()
        .filter(|p| p.class != StateClass::Memory)
        .map(|p| (p.signal2, p.signal1))
        .collect();
    // Eager encoding on purpose: this tool dumps the *complete* miter state
    // of a counterexample, and the default lazy strategy only assigns
    // literals to signals the proof obligation reaches.
    let mut unrolling =
        Unrolling::with_frame0_aliases(model.netlist(), UnrollOptions::default().eager(), &aliases);
    unrolling.extend_to(window);
    for c in model.initial_constraints() {
        unrolling.assume_signal_true(0, c.signal).unwrap();
    }
    for c in model.window_constraints() {
        for f in 0..=window {
            unrolling.assume_signal_true(f, c.signal).unwrap();
        }
    }
    // Ask for an architectural difference at the final frame.
    let arch_lits: Vec<_> = model
        .pairs_of_class(StateClass::Architectural)
        .map(|p| unrolling.bit_lit(window, p.equal).unwrap())
        .collect();
    unrolling.add_clause(arch_lits.iter().map(|&l| !l));

    match unrolling.solve(&[]) {
        SatResult::Unsat => println!("no architectural difference reachable at window {window}"),
        SatResult::Unknown => println!("unknown"),
        SatResult::Sat(m) => {
            println!("L-alert counterexample at window {window} ({variant:?}):\n");
            for frame in 0..=window {
                println!("--- frame {frame} ---");
                for pair in model.pairs() {
                    let v1 = unrolling.value_in_model(&m, frame, pair.signal1).unwrap();
                    let v2 = unrolling.value_in_model(&m, frame, pair.signal2).unwrap();
                    if v1 != v2 {
                        println!("  DIFF {:<28} {v1} vs {v2}  [{:?}]", pair.name, pair.class);
                    }
                }
                let soc1 = model.soc1();
                let soc2 = model.soc2();
                let dump = |u: &Unrolling<'_>, label: &str, s1, s2| {
                    let v1 = u.value_in_model(&m, frame, s1).unwrap();
                    let v2 = u.value_in_model(&m, frame, s2).unwrap();
                    println!("  {label:<28} {v1} | {v2}");
                };
                dump(&unrolling, "pc", soc1.pc, soc2.pc);
                dump(&unrolling, "mode", soc1.mode, soc2.mode);
                dump(
                    &unrolling,
                    "global_stall",
                    soc1.global_stall,
                    soc2.global_stall,
                );
                dump(&unrolling, "flush(wb)", soc1.flush, soc2.flush);
                dump(&unrolling, "trap_taken", soc1.trap_taken, soc2.trap_taken);
                dump(&unrolling, "imem_instr", soc1.imem_instr, soc2.imem_instr);
                dump(&unrolling, "mem_rdata", soc1.mem_rdata, soc2.mem_rdata);
                dump(
                    &unrolling,
                    "mem_req_valid",
                    soc1.mem_req_valid,
                    soc2.mem_req_valid,
                );
                dump(
                    &unrolling,
                    "mem_req_addr",
                    soc1.mem_req_addr,
                    soc2.mem_req_addr,
                );
                dump(
                    &unrolling,
                    "secret_line_present",
                    soc1.secret_line_present,
                    soc2.secret_line_present,
                );
                dump(
                    &unrolling,
                    "ex_mem_blocked",
                    soc1.ex_mem_blocked,
                    soc2.ex_mem_blocked,
                );
                dump(
                    &unrolling,
                    "mem_wb_blocked",
                    soc1.mem_wb_blocked,
                    soc2.mem_wb_blocked,
                );
            }
        }
    }
}
