//! # `sat` — a conflict-driven clause-learning SAT solver
//!
//! This crate provides the satisfiability engine underneath the bounded
//! model checking and interval property checking (IPC) performed by the
//! `bmc` crate, which in turn carries the UPEC security proofs. The paper
//! uses a commercial property checker (OneSpin 360 DV-Verify); this solver is
//! the open, from-scratch substitute for its SAT back end.
//!
//! The implementation follows the MiniSat architecture:
//!
//! * two watched literals per clause,
//! * first-UIP conflict analysis with clause learning,
//! * VSIDS variable activities and phase saving,
//! * a modern search loop ([`SearchConfig`]): glucose-style EMA restarts
//!   layered on the Luby cadence with an LBD-quality gate, target rephasing,
//!   chronological backtracking for shallow conflicts, clause vivification
//!   as inprocessing ([`Solver::vivify`]) and cross-solver learned-clause
//!   sharing ([`Solver::drain_exportable`] / [`Solver::import_shared`]),
//! * periodic deletion of inactive learned clauses,
//! * solving under assumptions and an optional conflict budget (used by the
//!   benchmark harness to reproduce the paper's notion of a *feasible* proof
//!   window),
//! * **budgeted, cancellable episodes**: a deterministic per-episode
//!   resource [`Budget`] (conflicts / propagations / decisions — never
//!   wall-clock) whose exhaustion yields a resumable
//!   [`SatResult::Unknown`], a restart-boundary [`CancelToken`], and a
//!   [`StopCause`] telling callers why an episode stopped (see
//!   `docs/robustness.md`),
//! * **incremental sessions**: clauses and variables may be added between
//!   `solve` calls while learned clauses, activities and phases persist;
//!   retractable obligations via activation literals; per-call effort
//!   accounting ([`SolverStats::delta_since`]) and a cross-thread interrupt
//!   hook ([`Solver::set_interrupt`]) for portfolio-style cancellation,
//! * an **incremental-safe simplification pipeline** ([`Solver::simplify`]):
//!   failed-literal probing, subsumption, self-subsuming resolution and
//!   bounded variable elimination between solve calls, kept sound for
//!   incremental use by a frozen-variable contract ([`Solver::freeze_var`])
//!   and automatic model extension over eliminated variables,
//! * **checkable unsat certificates** ([`Solver::start_proof_log`]): every
//!   clause addition and deletion — search, database reduction and the whole
//!   simplification pipeline — can be recorded as a DRAT-style
//!   [`ProofLog`] and replayed by the independent reverse-unit-propagation
//!   checker in [`drat`].
//!
//! The architecture is documented in depth in `docs/solver.md` (and the
//! certificate format in `docs/certificates.md`) at the repository root.
//!
//! # Example
//!
//! ```
//! use sat::{Solver, SatResult};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var().positive();
//! let y = solver.new_var().positive();
//! solver.add_clause([x, y]);
//! solver.add_clause([!x, y]);
//! assert!(matches!(solver.solve(), SatResult::Sat(m) if m.lit_is_true(y)));
//! ```

#![deny(missing_docs)]

mod cnf;
pub mod drat;
#[cfg(any(test, feature = "faults"))]
pub mod faults;
mod lit;
mod simplify;
mod solver;

pub use cnf::{CnfFormula, Model, SatResult};
pub use drat::ProofLog;
pub use lit::{LBool, Lit, Var};
pub use simplify::{SimplifyConfig, SimplifyStats};
pub use solver::{Budget, CancelToken, SearchConfig, Solver, SolverStats, StopCause};
