//! Fuzzed differential validation of the modern search loop
//! ([`sat::SearchConfig`]) on random CNFs, generated deterministically with
//! [`rtl::SplitMix64`].
//!
//! Properties:
//! 1. every feature — EMA restarts, phase saving, rephasing, chronological
//!    backtracking, vivification — individually toggled on top of the
//!    baseline agrees with the baseline on sat/unsat, and so does the all-on
//!    default against the all-off baseline;
//! 2. every model returned under any configuration satisfies the formula;
//! 3. unsat verdicts found with every feature on still produce DRAT logs
//!    that check and trim (vivification's lemma/delete pairs included);
//! 4. learned clauses exported by one solver import into a twin solving the
//!    same formula without changing its verdict.

use rtl::SplitMix64;
use sat::drat::{check, trim};
use sat::{Lit, SatResult, SearchConfig, Solver, Var};

/// A random clause with 2..=3 distinct variables.
fn random_clause(rng: &mut SplitMix64, num_vars: usize) -> Vec<Lit> {
    let len = rng.gen_range(2..=3) as usize;
    let mut vars: Vec<usize> = Vec::new();
    while vars.len() < len {
        let v = rng.gen_u64_below(num_vars as u64) as usize;
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    vars.iter()
        .map(|&v| Lit::new(Var::from_index(v), rng.gen_bool()))
        .collect()
}

/// A random formula near the phase transition, so the case mix covers both
/// verdicts and the solvers do real search work.
fn random_formula(rng: &mut SplitMix64) -> (usize, Vec<Vec<Lit>>) {
    let num_vars = rng.gen_range(8..16) as usize;
    let num_clauses = (num_vars as u64 * 5).saturating_sub(rng.gen_u64_below(num_vars as u64));
    let clauses = (0..num_clauses)
        .map(|_| random_clause(rng, num_vars))
        .collect();
    (num_vars, clauses)
}

/// Solves `clauses` under `config`, optionally running a vivification pass
/// after an initial solve (vivification is inprocessing: it needs learned
/// clauses to strengthen, so a fresh solver would give it nothing to do).
fn solve_with(
    clauses: &[Vec<Lit>],
    num_vars: usize,
    config: SearchConfig,
    vivify_between: bool,
) -> SatResult {
    let mut solver = Solver::new();
    solver.set_search_config(config);
    solver.reserve_vars(num_vars);
    for c in clauses {
        solver.add_clause(c.iter().copied());
    }
    if vivify_between {
        let first = solver.solve();
        if matches!(first, SatResult::Unsat) {
            return first;
        }
        solver.vivify(50_000);
    }
    solver.solve()
}

/// Asserts that a sat model satisfies every clause of the formula.
fn assert_model_satisfies(result: &SatResult, clauses: &[Vec<Lit>], context: &str) {
    if let SatResult::Sat(model) = result {
        for (i, c) in clauses.iter().enumerate() {
            assert!(
                c.iter().any(|&l| model.lit_is_true(l)),
                "{context}: clause {i} unsatisfied by the returned model"
            );
        }
    }
}

/// Every named variant layered on the baseline, plus the all-on default.
/// `chrono-always` drops the backtrack-distance threshold to zero so the
/// chronological path fires on every eligible conflict, not only deep jumps.
fn variants() -> Vec<(&'static str, SearchConfig, bool)> {
    let base = SearchConfig::baseline();
    vec![
        (
            "ema-restarts",
            SearchConfig {
                ema_restart: true,
                ..base
            },
            false,
        ),
        (
            "phase-saving",
            SearchConfig {
                phase_saving: true,
                ..base
            },
            false,
        ),
        (
            "rephasing",
            SearchConfig {
                phase_saving: true,
                rephasing: true,
                ..base
            },
            false,
        ),
        (
            "chrono-backtracking",
            SearchConfig {
                chrono_backtrack: true,
                ..base
            },
            false,
        ),
        (
            "chrono-always",
            SearchConfig {
                chrono_backtrack: true,
                chrono_threshold: 0,
                ..base
            },
            false,
        ),
        (
            "vivification",
            SearchConfig {
                vivify: true,
                ..base
            },
            true,
        ),
        ("all-on", SearchConfig::default(), true),
    ]
}

/// Properties 1 and 2: every variant agrees with the all-off baseline on
/// sat/unsat, and every returned model satisfies the formula.
#[test]
fn every_feature_agrees_with_the_baseline() {
    let mut rng = SplitMix64::new(0x5ea2_0001);
    let variants = variants();
    let mut unsat_seen = 0;
    for case in 0..40 {
        let (num_vars, clauses) = random_formula(&mut rng);
        let baseline = solve_with(&clauses, num_vars, SearchConfig::baseline(), false);
        assert_model_satisfies(&baseline, &clauses, "baseline");
        if matches!(baseline, SatResult::Unsat) {
            unsat_seen += 1;
        }
        for (name, config, vivify_between) in &variants {
            let result = solve_with(&clauses, num_vars, *config, *vivify_between);
            assert_eq!(
                matches!(baseline, SatResult::Unsat),
                matches!(result, SatResult::Unsat),
                "case {case}: `{name}` diverges from the baseline verdict"
            );
            assert_model_satisfies(&result, &clauses, name);
        }
    }
    assert!(unsat_seen >= 8, "generator produced too few unsat cases");
}

/// Property 3: with every feature on (vivification pass included), unsat
/// verdicts still produce proof logs that check, and the trimmed log
/// re-checks. Vivification runs under the log, so its strengthened clauses
/// enter as lemma/delete pairs the checker must accept.
#[test]
fn modern_search_logs_check_and_trim() {
    let mut rng = SplitMix64::new(0x5ea2_0002);
    let mut unsat_seen = 0;
    for case in 0..40 {
        let (num_vars, clauses) = random_formula(&mut rng);
        let mut solver = Solver::new();
        solver.set_search_config(SearchConfig::default());
        solver.reserve_vars(num_vars);
        solver.start_proof_log();
        for c in &clauses {
            solver.add_clause(c.iter().copied());
        }
        let mut result = solver.solve();
        if !matches!(result, SatResult::Unsat) {
            solver.vivify(50_000);
            result = solver.solve();
        }
        if !matches!(result, SatResult::Unsat) {
            continue;
        }
        unsat_seen += 1;
        let log = solver.take_proof_log().expect("logging was on");
        let report = check(&log, &[]).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(report.axioms, clauses.len(), "case {case}");
        let (trimmed, _) = trim(&log, &[]).unwrap_or_else(|e| panic!("case {case} trim: {e}"));
        check(&trimmed, &[]).unwrap_or_else(|e| panic!("case {case} recheck: {e}"));
    }
    assert!(unsat_seen >= 8, "generator produced too few unsat cases");
}

/// Property 4: clauses exported through the share-ceiling taint import into
/// a twin solver without changing its verdict (and the twin actually
/// accepts some of them).
#[test]
fn exported_clauses_import_soundly() {
    let mut rng = SplitMix64::new(0x5ea2_0003);
    let mut imported_total = 0usize;
    for case in 0..40 {
        let (num_vars, clauses) = random_formula(&mut rng);
        let build_shared = |config: SearchConfig| {
            let mut solver = Solver::new();
            solver.set_search_config(config);
            solver.reserve_vars(num_vars);
            // The whole formula is "definitional" here, so every derivation
            // stays inside the shareable fragment at ceiling 0.
            solver.set_share_ceiling(Some(0));
            for c in &clauses {
                solver.add_clause(c.iter().copied());
            }
            solver.set_share_ceiling(None);
            solver
        };

        let mut exporter = build_shared(SearchConfig::default());
        let exporter_verdict = matches!(exporter.solve(), SatResult::Unsat);
        let mut exported: Vec<(Vec<Lit>, u32)> = Vec::new();
        exporter.drain_exportable(12, 6, |lits, share| {
            exported.push((lits.to_vec(), share));
        });

        let mut importer = build_shared(SearchConfig::default());
        for (lits, share) in &exported {
            if importer.import_shared(lits, *share) {
                imported_total += 1;
            }
        }
        let importer_verdict = matches!(importer.solve(), SatResult::Unsat);
        assert_eq!(
            exporter_verdict, importer_verdict,
            "case {case}: imported clauses flipped the verdict"
        );
        assert_model_satisfies(&importer.solve(), &clauses, "importer");
    }
    assert!(
        imported_total > 0,
        "no clause was ever exported and imported; the sharing path is dead"
    );
}
