//! The attack-scenario registry: one named table of every workload the
//! reproduction can check, shared by the engine, the bench binaries and the
//! examples.
//!
//! Each [`ScenarioSpec`] bundles a design variant, a secret placement, a
//! proof-obligation shape and the window range to scan, together with the
//! paper figure/table it reproduces and the expected verdict. Everything
//! that used to duplicate this setup — bench binaries, examples, tests —
//! drives off [`registry`] (or [`by_id`]) instead.
//!
//! # Examples
//!
//! ```
//! use upec::scenarios;
//!
//! let orc = scenarios::by_id("orc").expect("registered");
//! assert_eq!(orc.variant.name(), "orc");
//! let model = orc.build_model();
//! assert!(model.pairs().len() > 10);
//! ```

use crate::{SecretScenario, StateClass, UpecModel};
use soc::{Instruction, Program, SocConfig, SocVariant};
use std::collections::BTreeSet;

/// Shape of the proof obligation (which register pairs must stay equal at
/// `t+k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitmentKind {
    /// Every architectural and microarchitectural register pair (the
    /// methodology's first iteration; violations start as P-alerts).
    Full,
    /// Architectural registers only: any violation is an L-alert, i.e. a
    /// proven covert channel.
    Architectural,
    /// The data cache's tag/valid state only: detects secret-dependent cache
    /// footprints (the paper's "well-known starting point for side channel
    /// attacks").
    CacheState,
}

/// The verdict a scenario is expected to produce (used by tests and the CI
/// regression gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The property is proven at every window in the scan range.
    Proven,
    /// P-alerts occur but no L-alert: secret data propagates into
    /// program-invisible state only.
    PAlertsOnly,
    /// An L-alert occurs within the scan range: the design has a covert
    /// channel (or a direct leak).
    LAlert,
}

/// The microarchitectural geometry of one scenario instance: the `SocConfig`
/// knobs that parameterize a scenario into a *family*.
///
/// Every [`ScenarioSpec`] is checked at [`Geometry::formal_default`]; the
/// instance registry ([`instances`]) additionally sweeps selected scenarios
/// across larger caches and longer memory latencies, because the paper's
/// central claim — UPEC needs no prior knowledge of the attack — should
/// survive a resized microarchitecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of architectural registers (power of two in `2..=32`).
    pub registers: u32,
    /// Number of direct-mapped cache lines (power of two, `>= 2`).
    pub cache_lines: u32,
    /// Cache-miss refill latency in cycles.
    pub miss_latency: u32,
    /// Pending-store drain latency in cycles.
    pub store_latency: u32,
}

impl Geometry {
    /// The reduced default geometry every formal proof runs at.
    pub fn formal_default() -> Self {
        Self {
            registers: 4,
            cache_lines: 2,
            miss_latency: 1,
            store_latency: 1,
        }
    }

    /// Applies the geometry to a design variant.
    pub fn apply(&self, variant: SocVariant) -> SocConfig {
        SocConfig::new(variant)
            .with_registers(self.registers)
            .with_cache_lines(self.cache_lines)
            .with_miss_latency(self.miss_latency)
            .with_store_latency(self.store_latency)
    }

    /// Compact label (`r4c2m1s1` style) used in instance identifiers.
    pub fn label(&self) -> String {
        format!(
            "r{}c{}m{}s{}",
            self.registers, self.cache_lines, self.miss_latency, self.store_latency
        )
    }

    /// Whether this is the default formal geometry.
    pub fn is_default(&self) -> bool {
        *self == Self::formal_default()
    }

    /// The default geometry with a resized cache (builder style).
    pub fn with_cache_lines(mut self, lines: u32) -> Self {
        self.cache_lines = lines;
        self
    }

    /// The geometry with a different miss latency (builder style).
    pub fn with_miss_latency(mut self, cycles: u32) -> Self {
        self.miss_latency = cycles;
        self
    }

    /// The geometry with a different store latency (builder style).
    pub fn with_store_latency(mut self, cycles: u32) -> Self {
        self.store_latency = cycles;
        self
    }
}

/// A named, self-contained attack scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Stable machine-readable identifier (used by `by_id`, bench CLIs, CI).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Paper figure/table/section this scenario reproduces.
    pub paper_ref: &'static str,
    /// Design variant under verification.
    pub variant: SocVariant,
    /// Secret placement at the symbolic starting time point.
    pub secret: SecretScenario,
    /// Proof-obligation shape.
    pub commitment: CommitmentKind,
    /// First window length worth checking (skipping windows that are too
    /// short for the attack to complete keeps scans cheap; cf. the PMP
    /// scenario, whose shortest leak needs seven cycles).
    pub start_window: usize,
    /// Last window length of the scan range.
    pub max_window: usize,
    /// Expected verdict over the scan range.
    pub expected: Expectation,
    /// One-line description for reports and the README table.
    pub description: &'static str,
}

impl ScenarioSpec {
    /// The reduced SoC geometry used for the formal proofs (small enough for
    /// the from-scratch SAT solver while preserving every microarchitectural
    /// mechanism the paper's evaluation depends on).
    pub fn formal_config(&self) -> SocConfig {
        Geometry::formal_default().apply(self.variant)
    }

    /// The full-size geometry used for the simulation-based figures.
    pub fn sim_config(&self) -> SocConfig {
        SocConfig::new(self.variant)
    }

    /// Builds the two-instance UPEC miter for this scenario (formal
    /// geometry).
    pub fn build_model(&self) -> UpecModel {
        UpecModel::new(&self.formal_config(), self.secret)
    }

    /// The commitment set for this scenario's obligation shape.
    pub fn commitment_set(&self, model: &UpecModel) -> BTreeSet<String> {
        match self.commitment {
            CommitmentKind::Full => crate::full_commitment(model),
            CommitmentKind::Architectural => model
                .pairs_of_class(StateClass::Architectural)
                .map(|p| p.name.clone())
                .collect(),
            CommitmentKind::CacheState => model
                .pairs()
                .iter()
                .map(|p| p.name.clone())
                .filter(|n| n.starts_with("dcache.tag") || n.starts_with("dcache.valid"))
                .collect(),
        }
    }

    /// The attacker program demonstrating this scenario on the simulator
    /// (`None` for purely formal scenarios).
    pub fn demo_program(&self, config: &SocConfig) -> Option<Program> {
        match self.id {
            "orc" => Some(orc_attack_program(config, 3)),
            "meltdown" | "meltdown-timing" | "cache-footprint" => Some(transient_program(config)),
            "fuzz-meltdown-footprint" | "fuzz-orc-footprint" => Some(fuzz_footprint_witness()),
            "fuzz-orc-timing" => Some(fuzz_timing_witness()),
            _ => None,
        }
    }
}

/// One iteration of the Orc attack (paper Fig. 2) for a given guess of the
/// secret's cache index.
pub fn orc_attack_program(config: &SocConfig, guess: u32) -> Program {
    let accessible = 0x40u32;
    let mut p = Program::new(0);
    p.push(Instruction::Addi {
        rd: 1,
        rs1: 0,
        imm: config.secret_addr as i32,
    });
    p.push(Instruction::Addi {
        rd: 2,
        rs1: 0,
        imm: accessible as i32,
    });
    p.push(Instruction::Addi {
        rd: 2,
        rs1: 2,
        imm: (guess * 4) as i32,
    });
    p.push(Instruction::Sw {
        rs1: 2,
        rs2: 3,
        offset: 0,
    });
    p.push(Instruction::Lw {
        rd: 4,
        rs1: 1,
        offset: 0,
    });
    p.push(Instruction::Lw {
        rd: 5,
        rs1: 4,
        offset: 0,
    });
    p.push_nops(2);
    p
}

/// The fuzz-mined, delta-debugging-minimized cache-footprint witness
/// (`soc::fuzz` pipeline, seed `0xdabd_4c19`, case 36): a transient
/// dependent load whose refill marks a secret-indexed cache line. The exact
/// instruction bytes are pinned — a test re-mines and re-minimizes them from
/// the seed.
pub fn fuzz_footprint_witness() -> Program {
    let mut p = Program::new(0);
    p.push(Instruction::Addi {
        rd: 2,
        rs1: 0,
        imm: 0x200,
    });
    p.push(Instruction::Lw {
        rd: 5,
        rs1: 2,
        offset: 0,
    });
    p.push(Instruction::Lw {
        rd: 7,
        rs1: 5,
        offset: 0,
    });
    p
}

/// The fuzz-mined, delta-debugging-minimized timing witness (`soc::fuzz`
/// pipeline, seed `0xdabd_4c19`, case 137): a still-pending store whose cache
/// line collides with the transient dependent load's line for exactly one
/// secret value, skewing trap timing. The minimizer even dropped the pointer
/// prologue — `x1` is zero, so the store lands at address `4`, which maps to
/// the same line as one of the two oracle secrets.
pub fn fuzz_timing_witness() -> Program {
    let mut p = Program::new(0);
    p.push(Instruction::Addi {
        rd: 2,
        rs1: 0,
        imm: 0x200,
    });
    p.push(Instruction::Sw {
        rs1: 1,
        rs2: 2,
        offset: 4,
    });
    p.push(Instruction::Lw {
        rd: 7,
        rs1: 2,
        offset: 0,
    });
    p.push(Instruction::Lw {
        rd: 0,
        rs1: 7,
        offset: 0,
    });
    p
}

/// The Meltdown-style transient sequence used for the Fig. 1 footprint
/// experiment.
pub fn transient_program(config: &SocConfig) -> Program {
    let mut p = Program::new(0);
    p.push(Instruction::Addi {
        rd: 1,
        rs1: 0,
        imm: config.secret_addr as i32,
    });
    p.push(Instruction::Lw {
        rd: 4,
        rs1: 1,
        offset: 0,
    });
    p.push(Instruction::Lw {
        rd: 5,
        rs1: 4,
        offset: 0,
    });
    p.push_nops(2);
    p
}

/// The full scenario registry, in presentation order.
pub fn registry() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            id: "secure-uncached",
            title: "Secure design, secret only in main memory",
            paper_ref: "Table I, column 'D not in cache'",
            variant: SocVariant::Secure,
            secret: SecretScenario::NotInCache,
            commitment: CommitmentKind::Full,
            start_window: 1,
            max_window: 2,
            expected: Expectation::Proven,
            description: "Baseline proof: no state deviation of any kind on the original design",
        },
        ScenarioSpec {
            id: "secure-cached",
            title: "Secure design, secret cached",
            paper_ref: "Table I, column 'D in cache'",
            variant: SocVariant::Secure,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::Full,
            start_window: 1,
            max_window: 2,
            expected: Expectation::PAlertsOnly,
            description: "P-alerts appear (cache hit data enters the pipeline) but close inductively",
        },
        ScenarioSpec {
            id: "secure-arch-only",
            title: "Secure design, architectural obligation only",
            paper_ref: "Sec. V control experiment",
            variant: SocVariant::Secure,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::Architectural,
            start_window: 1,
            max_window: 2,
            expected: Expectation::Proven,
            description: "Control: the original design shows no L-alert at small windows",
        },
        ScenarioSpec {
            id: "meltdown",
            title: "Meltdown-style uncancelled refill",
            paper_ref: "Sec. VII-B, Table II row 2",
            variant: SocVariant::MeltdownStyle,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::Full,
            start_window: 1,
            max_window: 2,
            expected: Expectation::PAlertsOnly,
            description: "Transient refill survives the flush; secret marks microarchitectural state",
        },
        ScenarioSpec {
            id: "meltdown-timing",
            title: "Meltdown-style refill as a timing channel",
            paper_ref: "new variant (beyond the paper's Table II)",
            variant: SocVariant::MeltdownStyle,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::Architectural,
            start_window: 3,
            max_window: 3,
            expected: Expectation::LAlert,
            description: "The uncancelled refill also skews architectural timing: an L-alert at k=3",
        },
        ScenarioSpec {
            id: "cache-footprint",
            title: "Secret-dependent cache footprint",
            paper_ref: "Fig. 1",
            variant: SocVariant::MeltdownStyle,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::CacheState,
            start_window: 1,
            max_window: 5,
            expected: Expectation::PAlertsOnly,
            description: "The dcache tag/valid state depends on the secret after a transient access (first visible at k=5)",
        },
        ScenarioSpec {
            id: "orc",
            title: "Orc replay-buffer bypass",
            paper_ref: "Fig. 2, Table II row 1",
            variant: SocVariant::Orc,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::Architectural,
            start_window: 1,
            max_window: 5,
            expected: Expectation::LAlert,
            description: "RAW-hazard stall timing leaks the secret's cache index: a true covert channel",
        },
        ScenarioSpec {
            id: "pmp-lock",
            title: "PMP TOR-lock ISA violation",
            paper_ref: "Sec. VII-C",
            variant: SocVariant::PmpLockBug,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::Architectural,
            start_window: 7,
            max_window: 9,
            expected: Expectation::LAlert,
            description: "Privileged code can move a locked region's base: the secret leaks directly",
        },
        ScenarioSpec {
            id: "fuzz-meltdown-footprint",
            title: "Fuzz-mined transient refill footprint",
            paper_ref: "fuzz-mined witness (cf. Fig. 1)",
            variant: SocVariant::MeltdownStyle,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::CacheState,
            start_window: 1,
            max_window: 5,
            expected: Expectation::PAlertsOnly,
            description: "Minimized 3-instruction witness from the fuzz miner: a dependent load's refill marks the cache",
        },
        ScenarioSpec {
            id: "fuzz-orc-footprint",
            title: "Fuzz-mined Orc cache footprint",
            paper_ref: "fuzz-mined witness (beyond Table II)",
            variant: SocVariant::Orc,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::CacheState,
            start_window: 1,
            max_window: 5,
            expected: Expectation::PAlertsOnly,
            description: "The replay-buffer bypass also lets the transient load mark the cache, not just stall",
        },
        ScenarioSpec {
            id: "fuzz-orc-timing",
            title: "Fuzz-mined Orc stall-timing witness",
            paper_ref: "fuzz-mined witness (cf. Fig. 2)",
            variant: SocVariant::Orc,
            secret: SecretScenario::InCache,
            commitment: CommitmentKind::Architectural,
            start_window: 1,
            max_window: 5,
            expected: Expectation::LAlert,
            description: "Minimized 4-instruction witness: a pending store collides with the transient load's line",
        },
    ]
}

/// The full scenario registry, in presentation order — an alias of
/// [`registry`] whose name matches the docs-generation convention
/// (`scenarios::all()`).
pub fn all() -> Vec<ScenarioSpec> {
    registry()
}

/// Looks up a scenario by its stable identifier.
pub fn by_id(id: &str) -> Option<ScenarioSpec> {
    registry().into_iter().find(|s| s.id == id)
}

/// One concrete member of a scenario family: a [`ScenarioSpec`] pinned to a
/// [`Geometry`], with the window range and expected verdict *for that
/// geometry* (resizing the cache or stretching a latency moves the window at
/// which an alert first appears).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioInstance {
    /// The scenario being instantiated.
    pub spec: ScenarioSpec,
    /// The SoC geometry of this instance.
    pub geometry: Geometry,
    /// First window length of this instance's scan range.
    pub start_window: usize,
    /// Last window length of this instance's scan range.
    pub max_window: usize,
    /// Expected verdict over this instance's scan range.
    pub expected: Expectation,
}

impl ScenarioInstance {
    /// The spec at its default formal geometry, windows and expectation.
    pub fn base(spec: ScenarioSpec) -> Self {
        Self {
            spec,
            geometry: Geometry::formal_default(),
            start_window: spec.start_window,
            max_window: spec.max_window,
            expected: spec.expected,
        }
    }

    /// Stable identifier: the spec id, suffixed with the geometry label for
    /// non-default geometries (`cache-footprint@r4c4m1s1`).
    pub fn id(&self) -> String {
        if self.geometry.is_default() {
            self.spec.id.to_string()
        } else {
            format!("{}@{}", self.spec.id, self.geometry.label())
        }
    }

    /// The SoC configuration of this instance.
    pub fn config(&self) -> SocConfig {
        self.geometry.apply(self.spec.variant)
    }

    /// Builds the two-instance UPEC miter for this instance's geometry.
    pub fn build_model(&self) -> UpecModel {
        UpecModel::new(&self.config(), self.spec.secret)
    }

    /// The commitment set for this instance's obligation shape.
    pub fn commitment_set(&self, model: &UpecModel) -> BTreeSet<String> {
        self.spec.commitment_set(model)
    }
}

/// The full instance registry: every scenario at the default formal geometry
/// plus the geometry families of the cheap-to-check scenarios.
///
/// Windows and expectations of the non-default instances are pinned from
/// measurement (the `--ignored` instance sweep re-verifies all of them):
/// growing the cache or stretching a latency shifts the window at which an
/// alert first appears, so each instance carries its own range.
pub fn instances() -> Vec<ScenarioInstance> {
    let mut out: Vec<ScenarioInstance> =
        registry().into_iter().map(ScenarioInstance::base).collect();
    let d = Geometry::formal_default();
    let mut family =
        |id: &str, geometry: Geometry, start: usize, max: usize, expected: Expectation| {
            let spec = by_id(id).expect("family of a registered scenario");
            out.push(ScenarioInstance {
                spec,
                geometry,
                start_window: start,
                max_window: max,
                expected,
            });
        };
    use Expectation::{LAlert, PAlertsOnly, Proven};
    // Cache-footprint family (Meltdown-style refill marking the cache).
    family("cache-footprint", d.with_cache_lines(4), 1, 5, PAlertsOnly);
    family("cache-footprint", d.with_miss_latency(2), 1, 6, PAlertsOnly);
    family(
        "cache-footprint",
        d.with_store_latency(2),
        1,
        5,
        PAlertsOnly,
    );
    // The fuzz-mined footprint witness across the same sweep.
    family(
        "fuzz-meltdown-footprint",
        d.with_cache_lines(4),
        1,
        5,
        PAlertsOnly,
    );
    family(
        "fuzz-meltdown-footprint",
        d.with_miss_latency(2),
        1,
        6,
        PAlertsOnly,
    );
    family(
        "fuzz-meltdown-footprint",
        d.with_store_latency(2),
        1,
        5,
        PAlertsOnly,
    );
    // Orc stall-timing family.
    family("orc", d.with_cache_lines(4), 1, 5, LAlert);
    family("orc", d.with_miss_latency(2), 1, 5, LAlert);
    family("orc", d.with_store_latency(2), 1, 5, LAlert);
    // The fuzz-mined timing witness across the same sweep.
    family("fuzz-orc-timing", d.with_cache_lines(4), 1, 5, LAlert);
    family("fuzz-orc-timing", d.with_miss_latency(2), 1, 5, LAlert);
    family("fuzz-orc-timing", d.with_store_latency(2), 1, 5, LAlert);
    // Secure-control family: the proof must keep closing when the
    // microarchitecture grows.
    family("secure-arch-only", d.with_cache_lines(4), 1, 2, Proven);
    family("secure-arch-only", d.with_miss_latency(2), 1, 2, Proven);
    out
}

/// Looks up an instance by its stable identifier (spec id, or
/// `spec-id@geometry` for family members).
pub fn instance_by_id(id: &str) -> Option<ScenarioInstance> {
    instances().into_iter().find(|i| i.id() == id)
}

/// Renders the instance registry as the markdown table embedded in the
/// repository README. A test asserts the README contains this exact
/// rendering, so the documentation cannot drift from the registry.
pub fn readme_table() -> String {
    let expected = |e: Expectation| match e {
        Expectation::Proven => "proven",
        Expectation::PAlertsOnly => "P-alerts only",
        Expectation::LAlert => "L-alert",
    };
    let mut out = String::from(
        "| id | paper reference | geometry | windows | expected verdict | description |\n\
         |---|---|---|---|---|---|\n",
    );
    for i in instances() {
        let description = if i.geometry.is_default() {
            i.spec.description.to_string()
        } else {
            format!("`{}` at the {} geometry", i.spec.id, i.geometry.label())
        };
        out.push_str(&format!(
            "| `{}` | {} | `{}` | {}–{} | {} | {} |\n",
            i.id(),
            if i.geometry.is_default() {
                i.spec.paper_ref
            } else {
                "family sweep"
            },
            i.geometry.label(),
            i.start_window,
            i.max_window,
            expected(i.expected),
            description,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The README's scenario table is generated from the registry; if this
    /// fails, re-run `scenarios::readme_table()` and paste the output into
    /// the README's "Scenario registry" section.
    #[test]
    fn readme_scenario_table_matches_registry() {
        let readme = include_str!("../../../README.md");
        let table = readme_table();
        assert!(
            readme.contains(&table),
            "README scenario table is out of date; regenerate it with \
             upec::scenarios::readme_table():\n{table}"
        );
    }

    #[test]
    fn all_is_an_alias_of_registry() {
        assert_eq!(all(), registry());
    }

    #[test]
    fn ids_are_unique_and_lookup_works() {
        let specs = registry();
        let mut ids: Vec<_> = specs.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), specs.len(), "duplicate scenario ids");
        for spec in &specs {
            assert_eq!(by_id(spec.id).as_ref().map(|s| s.id), Some(spec.id));
        }
        assert!(by_id("nonexistent").is_none());
    }

    #[test]
    fn every_scenario_builds_a_model_with_a_nonempty_commitment() {
        for spec in registry() {
            let model = spec.build_model();
            let commitment = spec.commitment_set(&model);
            assert!(!commitment.is_empty(), "{}: empty commitment", spec.id);
            assert!(
                spec.start_window >= 1 && spec.start_window <= spec.max_window,
                "{}",
                spec.id
            );
        }
    }

    #[test]
    fn demo_programs_have_the_papers_shape() {
        let orc = by_id("orc").unwrap();
        let config = orc.sim_config();
        let p = orc.demo_program(&config).expect("orc ships a demo");
        assert_eq!(p.len(), 8);
        assert!(p.listing().contains("lw x5, 0(x4)"));
        let meltdown = by_id("meltdown").unwrap();
        let t = meltdown.demo_program(&meltdown.sim_config()).expect("demo");
        assert!(t.listing().contains("lw x4, 0(x1)"));
        assert!(by_id("secure-uncached")
            .unwrap()
            .demo_program(&config)
            .is_none());
    }
}
