//! Regenerates **Fig. 2** of the paper as a measurement: the Orc attack's
//! timing signal on the vulnerable design vs. the original design, swept over
//! every cache-index guess.
//!
//! ```text
//! cargo run --release -p bench --bin fig2_orc_attack
//! ```

use soc::{SocConfig, SocSim, SocVariant};
use upec::scenarios;

fn measure(variant: SocVariant, secret: u32, guess: u32) -> u64 {
    let config = SocConfig::new(variant);
    let program = scenarios::orc_attack_program(&config, guess);
    let mut sim = SocSim::new(config.clone(), program);
    sim.protect_secret_region();
    sim.preload_secret_in_cache(secret);
    sim.run_until_trap(500)
        .expect("the illegal access must trap")
}

fn main() {
    let config = scenarios::by_id("orc")
        .expect("registered scenario")
        .sim_config();
    let lines = config.cache_lines;
    // The guess equal to the protected address's own cache index always
    // stalls (the attacker's probe load conflicts with its own store); a real
    // attacker calibrates this known effect away.
    let known_conflict = (config.secret_addr >> 2) % lines;
    println!("Fig. 2 — Orc attack timing sweep ({lines} cache-index guesses)");
    println!("series: cycles from attack start until the exception is taken");
    println!(
        "(guess {known_conflict} collides with the protected address itself and is ignored)\n"
    );
    for secret in [0x184u32, 0x188, 0x18c] {
        let secret_index = (secret >> 2) % lines;
        println!("secret value {secret:#x} (cache index {secret_index}):");
        println!(
            "{:>8} {:>14} {:>14}",
            "guess", "orc design", "secure design"
        );
        let mut orc_timings = Vec::new();
        for guess in 0..lines {
            let orc = measure(SocVariant::Orc, secret, guess);
            let secure = measure(SocVariant::Secure, secret, guess);
            println!("{guess:>8} {orc:>14} {secure:>14}");
            if guess != known_conflict {
                orc_timings.push((guess, orc));
            }
        }
        let max = orc_timings.iter().map(|&(_, c)| c).max().unwrap();
        let min = orc_timings.iter().map(|&(_, c)| c).min().unwrap();
        if max != min {
            let leak = orc_timings.iter().find(|&&(_, c)| c == max).unwrap().0;
            println!(
                "  -> timing outlier at guess {leak}: the attacker learns the secret's index\n"
            );
        } else {
            println!("  -> no timing variation observed\n");
        }
    }
    println!("Shape check vs the paper: the vulnerable design shows a unique slow guess per");
    println!(
        "secret (the RAW-hazard stall); the original design is constant-time for every guess."
    );
}
