//! Shared helpers for the benchmark harness that regenerates the paper's
//! tables and figures.

#![warn(missing_docs)]

use soc::{Instruction, Program, SocConfig, SocVariant};

/// A reduced SoC configuration that keeps the SAT problems small enough for
/// the from-scratch solver while preserving every microarchitectural
/// mechanism the paper's evaluation depends on.
pub fn formal_config(variant: SocVariant) -> SocConfig {
    SocConfig::new(variant)
        .with_registers(4)
        .with_cache_lines(2)
        .with_miss_latency(1)
        .with_store_latency(1)
}

/// The full-size configuration used for the simulation-based figures.
pub fn sim_config(variant: SocVariant) -> SocConfig {
    SocConfig::new(variant)
}

/// One iteration of the Orc attack (paper Fig. 2) for a given guess of the
/// secret's cache index.
pub fn orc_attack_program(config: &SocConfig, guess: u32) -> Program {
    let accessible = 0x40u32;
    let mut p = Program::new(0);
    p.push(Instruction::Addi { rd: 1, rs1: 0, imm: config.secret_addr as i32 });
    p.push(Instruction::Addi { rd: 2, rs1: 0, imm: accessible as i32 });
    p.push(Instruction::Addi { rd: 2, rs1: 2, imm: (guess * 4) as i32 });
    p.push(Instruction::Sw { rs1: 2, rs2: 3, offset: 0 });
    p.push(Instruction::Lw { rd: 4, rs1: 1, offset: 0 });
    p.push(Instruction::Lw { rd: 5, rs1: 4, offset: 0 });
    p.push_nops(2);
    p
}

/// The Meltdown-style transient sequence used for the Fig. 1 footprint
/// experiment.
pub fn transient_program(config: &SocConfig) -> Program {
    let mut p = Program::new(0);
    p.push(Instruction::Addi { rd: 1, rs1: 0, imm: config.secret_addr as i32 });
    p.push(Instruction::Lw { rd: 4, rs1: 1, offset: 0 });
    p.push(Instruction::Lw { rd: 5, rs1: 4, offset: 0 });
    p.push_nops(2);
    p
}

/// Formats a duration in seconds with two decimals (for table rows).
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_differ_in_size() {
        let f = formal_config(SocVariant::Secure);
        let s = sim_config(SocVariant::Secure);
        assert!(f.cache_lines < s.cache_lines);
        assert_eq!(f.variant(), s.variant());
    }

    #[test]
    fn attack_programs_have_the_papers_shape() {
        let config = sim_config(SocVariant::Orc);
        let p = orc_attack_program(&config, 3);
        assert_eq!(p.len(), 8);
        assert!(p.listing().contains("lw x5, 0(x4)"));
        let t = transient_program(&config);
        assert!(t.listing().contains("lw x4, 0(x1)"));
    }
}
