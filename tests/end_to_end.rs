//! Cross-crate integration tests: the full stack from RTL generation through
//! simulation and formal UPEC analysis.

use soc::{Instruction, Program, SocConfig, SocSim, SocVariant};
use upec::{
    prove_alert_closure, run_methodology, AlertKind, SecretScenario, UpecChecker, UpecModel,
    UpecOptions, Verdict,
};

fn formal_config(variant: SocVariant) -> SocConfig {
    SocConfig::new(variant)
        .with_registers(4)
        .with_cache_lines(2)
        .with_miss_latency(1)
        .with_store_latency(1)
}

/// The Orc attack measured on the simulator: the vulnerable design shows a
/// secret-dependent timing difference, the secure design does not, and in
/// neither design does the secret reach an architectural register.
#[test]
fn orc_attack_timing_channel_exists_only_in_the_vulnerable_design() {
    let secret = 0x184u32; // maps to cache index 1 (4 lines, word lines)
    let measure = |variant: SocVariant, guess: u32| -> u64 {
        let config = SocConfig::new(variant);
        let accessible = 0x40u32;
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: config.secret_addr as i32,
        });
        p.push(Instruction::Addi {
            rd: 2,
            rs1: 0,
            imm: accessible as i32,
        });
        p.push(Instruction::Addi {
            rd: 2,
            rs1: 2,
            imm: (guess * 4) as i32,
        });
        p.push(Instruction::Sw {
            rs1: 2,
            rs2: 3,
            offset: 0,
        });
        p.push(Instruction::Lw {
            rd: 4,
            rs1: 1,
            offset: 0,
        });
        p.push(Instruction::Lw {
            rd: 5,
            rs1: 4,
            offset: 0,
        });
        p.push_nops(2);
        let mut sim = SocSim::new(config, p);
        sim.protect_secret_region();
        sim.preload_secret_in_cache(secret);
        let cycles = sim.run_until_trap(300).expect("illegal access must trap");
        assert_eq!(sim.reg(4), 0, "secret must never reach x4");
        cycles
    };

    let config = SocConfig::new(SocVariant::Orc);
    let lines = config.cache_lines;
    // The guess that collides with the protected address itself always
    // stalls (the attacker's own probe); a real attacker calibrates it away,
    // so it is excluded from the comparison.
    let known_conflict = (config.secret_addr >> 2) % lines;
    let usable: Vec<u32> = (0..lines).filter(|&g| g != known_conflict).collect();
    let orc: Vec<(u32, u64)> = usable
        .iter()
        .map(|&g| (g, measure(SocVariant::Orc, g)))
        .collect();
    let secure: Vec<(u32, u64)> = usable
        .iter()
        .map(|&g| (g, measure(SocVariant::Secure, g)))
        .collect();

    let orc_min = orc.iter().map(|&(_, c)| c).min().unwrap();
    let orc_max = orc.iter().map(|&(_, c)| c).max().unwrap();
    assert!(
        orc_max > orc_min,
        "Orc design must show a timing difference: {orc:?}"
    );
    let slow_guess = orc.iter().find(|&&(_, c)| c == orc_max).unwrap().0;
    assert_eq!(
        slow_guess,
        (secret >> 2) % lines,
        "the slow guess reveals the secret's index"
    );

    let secure_min = secure.iter().map(|&(_, c)| c).min().unwrap();
    let secure_max = secure.iter().map(|&(_, c)| c).max().unwrap();
    assert_eq!(
        secure_min, secure_max,
        "secure design must be constant time: {secure:?}"
    );
}

/// The Meltdown-style variant leaves a secret-dependent cache footprint; the
/// secure design does not.
#[test]
fn meltdown_style_cache_footprint_depends_on_the_secret() {
    let footprint = |variant: SocVariant, secret: u32| -> Vec<u64> {
        let config = SocConfig::new(variant);
        let mut p = Program::new(0);
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: config.secret_addr as i32,
        });
        p.push(Instruction::Lw {
            rd: 4,
            rs1: 1,
            offset: 0,
        });
        p.push(Instruction::Lw {
            rd: 5,
            rs1: 4,
            offset: 0,
        });
        p.push_nops(2);
        let mut sim = SocSim::new(config.clone(), p);
        sim.protect_secret_region();
        sim.preload_secret_in_cache(secret);
        sim.store_word(secret, 0xaaaa_bbbb);
        sim.run(60);
        (0..config.cache_lines)
            .map(|i| sim.register(&format!("dcache.valid{i}")))
            .collect()
    };
    let a = footprint(SocVariant::MeltdownStyle, 0x184);
    let b = footprint(SocVariant::MeltdownStyle, 0x188);
    assert_ne!(
        a, b,
        "vulnerable design: footprint must depend on the secret"
    );
    let a = footprint(SocVariant::Secure, 0x184);
    let b = footprint(SocVariant::Secure, 0x188);
    assert_eq!(
        a, b,
        "secure design: footprint must not depend on the secret"
    );
}

/// UPEC separates the secure design from all three vulnerable variants.
#[test]
#[ignore = "multi-minute SAT proofs (windows up to 4 on three variants); run with --ignored"]
fn upec_methodology_classifies_all_design_variants() {
    // Secure design, secret not cached: proven with no alerts.
    let model = UpecModel::new(
        &formal_config(SocVariant::Secure),
        SecretScenario::NotInCache,
    );
    let report = run_methodology(&model, UpecOptions::window(2));
    assert_eq!(report.verdict, Verdict::Secure);
    assert_eq!(report.p_alert_count(), 0);

    // Secure design, secret cached: P-alerts only, closed by induction.
    let model = UpecModel::new(&formal_config(SocVariant::Secure), SecretScenario::InCache);
    let report = run_methodology(&model, UpecOptions::window(2));
    assert_eq!(report.verdict, Verdict::Secure, "{}", report.summary());
    assert!(report.p_alert_count() >= 1);
    assert!(prove_alert_closure(&model, &report.p_alert_registers, None).is_closed());

    // Orc variant: insecure.
    let model = UpecModel::new(&formal_config(SocVariant::Orc), SecretScenario::InCache);
    let report = run_methodology(&model, UpecOptions::window(4));
    assert_eq!(report.verdict, Verdict::Insecure);
    assert_eq!(report.alerts.last().unwrap().kind, AlertKind::LAlert);

    // Meltdown-style variant: the transient refill makes the cache tag/valid
    // state depend on the secret (the paper's "well-known starting point for
    // side channel attacks"); the same check is proven on the secure design.
    let cache_state_commitment = |model: &UpecModel| -> std::collections::BTreeSet<String> {
        model
            .pairs()
            .iter()
            .map(|p| p.name.clone())
            .filter(|n| n.starts_with("dcache.tag") || n.starts_with("dcache.valid"))
            .collect()
    };
    let checker = UpecChecker::new();
    let model = UpecModel::new(
        &formal_config(SocVariant::MeltdownStyle),
        SecretScenario::InCache,
    );
    let outcome = checker.check(
        &model,
        UpecOptions::window(4),
        &cache_state_commitment(&model),
    );
    assert!(
        outcome.alert().is_some(),
        "meltdown-style refill must mark the cache"
    );
    let model = UpecModel::new(&formal_config(SocVariant::Secure), SecretScenario::InCache);
    let outcome = checker.check(
        &model,
        UpecOptions::window(4),
        &cache_state_commitment(&model),
    );
    assert!(
        outcome.is_proven(),
        "secure design keeps the cache state unique"
    );
}

/// The PMP TOR-lock bug (paper Sec. VII-C) is detected as a direct
/// architectural leak, while the correct lock implementation is not.
#[test]
#[ignore = "the leak needs a seven-cycle window; the proof takes minutes on one core; run with --ignored"]
fn pmp_lock_bug_is_detected_as_an_l_alert() {
    let checker = UpecChecker::new();
    let buggy = UpecModel::new(
        &formal_config(SocVariant::PmpLockBug),
        SecretScenario::InCache,
    );
    // The shortest leaking scenario needs the locked base address to be moved
    // (CSR write retiring), an `mret` into user mode and the now-permitted
    // load to flow down the pipeline — roughly seven cycles — so the search
    // starts there instead of paying for the short, alert-free windows.
    let mut found_l_alert = false;
    for k in 7..=9 {
        if let Some(alert) = checker
            .check_architectural(&buggy, UpecOptions::window(k))
            .alert()
        {
            assert_eq!(alert.kind, AlertKind::LAlert);
            found_l_alert = true;
            break;
        }
    }
    assert!(found_l_alert, "the lock bug must produce an L-alert");
}

/// Random fault-free programs executed on the RTL and on the ISA-level golden
/// model reach the same architectural state.
#[test]
fn random_programs_cosimulate_against_the_golden_model() {
    use rtl::SplitMix64;
    let config = SocConfig::new(SocVariant::Secure);
    let mut rng = SplitMix64::new(2024);
    for trial in 0..8 {
        let mut p = Program::new(0);
        // Seed registers with small values and a valid pointer.
        p.push(Instruction::Addi {
            rd: 1,
            rs1: 0,
            imm: 0x40,
        });
        p.push(Instruction::Addi {
            rd: 2,
            rs1: 0,
            imm: rng.gen_range(0..100) as i32,
        });
        p.push(Instruction::Addi {
            rd: 3,
            rs1: 0,
            imm: rng.gen_range(0..100) as i32,
        });
        for _ in 0..12 {
            let rd = rng.gen_range(2..8) as u32;
            let rs1 = rng.gen_range(0..8) as u32;
            let rs2 = rng.gen_range(0..8) as u32;
            let choice = rng.gen_range(0..8);
            let ins = match choice {
                0 => Instruction::Add { rd, rs1, rs2 },
                1 => Instruction::Sub { rd, rs1, rs2 },
                2 => Instruction::Xor { rd, rs1, rs2 },
                3 => Instruction::Or { rd, rs1, rs2 },
                4 => Instruction::Sltu { rd, rs1, rs2 },
                5 => Instruction::Addi {
                    rd,
                    rs1,
                    imm: rng.gen_range(-64..64) as i32,
                },
                6 => Instruction::Sw {
                    rs1: 1,
                    rs2,
                    offset: 4 * rng.gen_range(0..4) as i32,
                },
                _ => Instruction::Lw {
                    rd,
                    rs1: 1,
                    offset: 4 * rng.gen_range(0..4) as i32,
                },
            };
            p.push(ins);
        }
        p.push_nops(4);

        let mut sim = SocSim::new(config.clone(), p.clone());
        let mut golden = sim.golden();
        sim.run(400);
        golden.run(&p, &config, 400);
        for r in 1..config.num_registers {
            assert_eq!(
                sim.reg(r),
                golden.regs[r as usize],
                "trial {trial}: x{r} mismatch\n{}",
                p.listing()
            );
        }
    }
}
