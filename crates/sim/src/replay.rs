//! Replaying counterexample witness traces.
//!
//! A bounded-model-checking counterexample is a satisfying assignment over an
//! unrolled netlist. Decoded into concrete per-cycle input values plus a
//! concrete initial register state, it becomes a [`WitnessTrace`]: a
//! self-contained, name-based stimulus that any [`Simulator`] for the same
//! netlist can replay. Replaying the trace re-derives the counterexample's
//! final state through the word-level simulation semantics — an independent
//! confirmation that the SAT-level violation is real, with no bit-blasting,
//! CNF simplification or solver in the loop.

use crate::{SimError, Simulator};
use rtl::{BitVec, Netlist};

/// A concrete, replayable counterexample stimulus.
///
/// All signals are referenced by hierarchical *name*, not by id, so a trace
/// is meaningful on its own (it can be serialized, diffed and replayed
/// against a freshly rebuilt netlist). Signals a bounded-model-checking run
/// left unconstrained are recorded as zero by the decoder; any concrete
/// choice would do, because an unconstrained signal cannot influence the
/// violated property.
///
/// # Examples
///
/// ```
/// use rtl::{BitVec, Netlist};
/// use sim::WitnessTrace;
///
/// let mut n = Netlist::new("counter");
/// let enable = n.input("enable", 1);
/// let count = n.register_init("count", 8, BitVec::zero(8));
/// let one = n.lit(1, 8);
/// let inc = n.add(count.value(), one);
/// let next = n.mux(enable, inc, count.value());
/// n.set_next(count, next);
/// n.output("count", count.value());
///
/// let trace = WitnessTrace {
///     initial_registers: vec![("count".into(), BitVec::new(3, 8))],
///     inputs: vec![
///         vec![("enable".into(), BitVec::new(1, 1))], // cycle 0 -> 1
///         vec![("enable".into(), BitVec::new(1, 1))], // cycle 1 -> 2
///         vec![("enable".into(), BitVec::new(0, 1))], // final-cycle inputs
///     ],
/// };
/// let mut sim = trace.replay(n)?;
/// assert_eq!(sim.cycle(), 2);
/// assert_eq!(sim.peek_output("count")?.as_u64(), 5);
/// # Ok::<(), sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WitnessTrace {
    /// Register values at cycle 0, as `(hierarchical name, value)` pairs.
    /// Registers not listed keep the simulator's default (their declared
    /// initial value, or zero).
    pub initial_registers: Vec<(String, BitVec)>,
    /// Input values per cycle, one entry per unrolling frame `0..=k`. Entry
    /// `c < k` is poked before the clock edge taking cycle `c` to `c + 1`;
    /// the final entry is poked without a clock edge, so combinational
    /// signals of the last cycle settle to their counterexample values.
    pub inputs: Vec<Vec<(String, BitVec)>>,
}

impl WitnessTrace {
    /// Number of clock cycles the trace spans (frames minus one; the final
    /// frame only constrains combinational inputs).
    pub fn cycles(&self) -> usize {
        self.inputs.len().saturating_sub(1)
    }

    /// Total number of recorded `(name, value)` bindings.
    pub fn num_bindings(&self) -> usize {
        self.initial_registers.len() + self.inputs.iter().map(Vec::len).sum::<usize>()
    }

    /// Approximate in-memory footprint of the trace, for reporting.
    pub fn size_bytes(&self) -> usize {
        let binding = |pairs: &[(String, BitVec)]| -> usize {
            pairs
                .iter()
                .map(|(name, _)| name.len() + std::mem::size_of::<BitVec>())
                .sum::<usize>()
        };
        binding(&self.initial_registers)
            + self.inputs.iter().map(|f| binding(f)).sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    /// Replays the trace on a fresh simulator for `netlist`: applies the
    /// initial register state, then drives the per-cycle inputs through
    /// [`Simulator::step`], and finally settles the last frame's inputs
    /// without a clock edge. The returned simulator sits at cycle
    /// [`WitnessTrace::cycles`] ready for inspection with
    /// [`Simulator::register_by_name`] / [`Simulator::peek_output`].
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SimError`] if a name does not resolve in the
    /// netlist.
    pub fn replay(&self, netlist: Netlist) -> Result<Simulator, SimError> {
        let mut sim = Simulator::new(netlist);
        for (name, value) in &self.initial_registers {
            sim.set_register_by_name(name, value.as_u64())?;
        }
        let Some((last, stepped)) = self.inputs.split_last() else {
            sim.settle();
            return Ok(sim);
        };
        for frame in stepped {
            for (name, value) in frame {
                sim.poke_by_name(name, value.as_u64())?;
            }
            sim.step();
        }
        for (name, value) in last {
            sim.poke_by_name(name, value.as_u64())?;
        }
        sim.settle();
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_netlist() -> Netlist {
        let mut n = Netlist::new("counter");
        let enable = n.input("enable", 1);
        let count = n.register_init("count", 8, BitVec::zero(8));
        let one = n.lit(1, 8);
        let inc = n.add(count.value(), one);
        let next = n.mux(enable, inc, count.value());
        n.set_next(count, next);
        n.output("count", count.value());
        n
    }

    #[test]
    fn replay_applies_registers_and_per_cycle_inputs() {
        let trace = WitnessTrace {
            initial_registers: vec![("count".into(), BitVec::new(10, 8))],
            inputs: vec![
                vec![("enable".into(), BitVec::new(1, 1))],
                vec![("enable".into(), BitVec::new(0, 1))],
                vec![("enable".into(), BitVec::new(1, 1))],
                vec![],
            ],
        };
        let mut sim = trace.replay(counter_netlist()).unwrap();
        assert_eq!(trace.cycles(), 3);
        assert_eq!(sim.cycle(), 3);
        // 10, +1 (enabled), hold (disabled), +1 (enabled) = 12.
        assert_eq!(sim.peek_output("count").unwrap().as_u64(), 12);
    }

    #[test]
    fn empty_trace_only_settles() {
        let trace = WitnessTrace::default();
        let mut sim = trace.replay(counter_netlist()).unwrap();
        assert_eq!(sim.cycle(), 0);
        assert_eq!(sim.peek_output("count").unwrap().as_u64(), 0);
        assert_eq!(trace.cycles(), 0);
        assert_eq!(trace.num_bindings(), 0);
    }

    #[test]
    fn unknown_names_surface_as_errors() {
        let trace = WitnessTrace {
            initial_registers: vec![("nope".into(), BitVec::new(1, 8))],
            inputs: Vec::new(),
        };
        assert!(matches!(
            trace.replay(counter_netlist()),
            Err(SimError::UnknownRegister(_))
        ));
    }

    #[test]
    fn size_accounting_is_monotone() {
        let empty = WitnessTrace::default();
        let trace = WitnessTrace {
            initial_registers: vec![("count".into(), BitVec::new(10, 8))],
            inputs: vec![vec![("enable".into(), BitVec::new(1, 1))]],
        };
        assert!(trace.size_bytes() > empty.size_bytes());
        assert_eq!(trace.num_bindings(), 2);
    }
}
