//! Structural statistics over a netlist.

use crate::{Netlist, Node};
use std::fmt;

/// Summary of the structural content of a [`Netlist`].
///
/// # Examples
///
/// ```
/// use rtl::{Netlist, NetlistStats, BitVec};
///
/// let mut n = Netlist::new("d");
/// let r = n.register_init("r", 8, BitVec::zero(8));
/// let one = n.lit(1, 8);
/// let next = n.add(r.value(), one);
/// n.set_next(r, next);
/// let stats = NetlistStats::of(&n);
/// assert_eq!(stats.registers, 1);
/// assert_eq!(stats.state_bits, 8);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Total number of nodes.
    pub nodes: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Total width of all primary inputs in bits.
    pub input_bits: u64,
    /// Number of output ports.
    pub outputs: usize,
    /// Number of registers.
    pub registers: usize,
    /// Total number of state bits.
    pub state_bits: u64,
    /// Number of constant nodes.
    pub constants: usize,
    /// Number of unary operator nodes.
    pub unary_ops: usize,
    /// Number of binary operator nodes.
    pub binary_ops: usize,
    /// Number of multiplexers.
    pub muxes: usize,
    /// Number of slice nodes.
    pub slices: usize,
    /// Number of concatenation nodes.
    pub concats: usize,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    pub fn of(netlist: &Netlist) -> Self {
        let mut stats = NetlistStats {
            nodes: netlist.len(),
            inputs: netlist.inputs().len(),
            outputs: netlist.outputs().len(),
            registers: netlist.register_count(),
            state_bits: netlist.state_bits(),
            ..NetlistStats::default()
        };
        for id in netlist.signals() {
            match netlist.node(id) {
                Node::Input { width, .. } => stats.input_bits += u64::from(*width),
                Node::Const(_) => stats.constants += 1,
                Node::Register { .. } => {}
                Node::Unary { .. } => stats.unary_ops += 1,
                Node::Binary { .. } => stats.binary_ops += 1,
                Node::Mux { .. } => stats.muxes += 1,
                Node::Slice { .. } => stats.slices += 1,
                Node::Concat { .. } => stats.concats += 1,
            }
        }
        stats
    }

    /// Rough count of combinational operator nodes (excludes leaves).
    pub fn logic_nodes(&self) -> usize {
        self.unary_ops + self.binary_ops + self.muxes + self.slices + self.concats
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nodes:      {}", self.nodes)?;
        writeln!(f, "inputs:     {} ({} bits)", self.inputs, self.input_bits)?;
        writeln!(f, "outputs:    {}", self.outputs)?;
        writeln!(
            f,
            "registers:  {} ({} state bits)",
            self.registers, self.state_bits
        )?;
        writeln!(f, "constants:  {}", self.constants)?;
        writeln!(f, "unary ops:  {}", self.unary_ops)?;
        writeln!(f, "binary ops: {}", self.binary_ops)?;
        writeln!(f, "muxes:      {}", self.muxes)?;
        writeln!(f, "slices:     {}", self.slices)?;
        write!(f, "concats:    {}", self.concats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitVec;

    #[test]
    fn stats_count_each_node_kind() {
        let mut n = Netlist::new("stats");
        let a = n.input("a", 4);
        let b = n.input("b", 4);
        let r = n.register_init("r", 4, BitVec::zero(4));
        let sum = n.add(a, b);
        let sel = n.input("sel", 1);
        let next = n.mux(sel, sum, r.value());
        n.set_next(r, next);
        let hi = n.slice(sum, 3, 2);
        let lo = n.slice(sum, 1, 0);
        let cat = n.concat(hi, lo);
        let inv = n.not(cat);
        n.output("out", inv);

        let stats = NetlistStats::of(&n);
        assert_eq!(stats.inputs, 3);
        assert_eq!(stats.input_bits, 9);
        assert_eq!(stats.registers, 1);
        assert_eq!(stats.state_bits, 4);
        assert_eq!(stats.binary_ops, 1);
        assert_eq!(stats.unary_ops, 1);
        assert_eq!(stats.muxes, 1);
        assert_eq!(stats.slices, 2);
        assert_eq!(stats.concats, 1);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.logic_nodes(), 6);
        assert_eq!(stats.nodes, n.len());
    }

    #[test]
    fn display_contains_key_figures() {
        let mut n = Netlist::new("d");
        let x = n.input("x", 8);
        n.output("y", x);
        let text = NetlistStats::of(&n).to_string();
        assert!(text.contains("inputs:     1 (8 bits)"));
        assert!(text.contains("outputs:    1"));
    }
}
