//! # `obs` — query-level telemetry for the UPEC pipeline
//!
//! Zero-dependency hierarchical spans, named counters and pluggable trace
//! sinks. Every layer of the verification stack (`rtl`, `sat`, `bmc`,
//! `upec`, `bench`) records what it spends time on through this crate, so a
//! single UPEC query can be attributed phase by phase: cone-of-influence
//! analysis, transition compilation, Tseitin encoding, the CNF
//! simplification pipeline (pass by pass), trial solves and CDCL search.
//!
//! # Design
//!
//! * **Spans** are RAII guards ([`span`] returns a [`SpanGuard`]) timed with
//!   the monotonic clock. A thread-local stack links each span to its
//!   parent, so nesting is recorded without any caller plumbing. Guards can
//!   carry typed attributes ([`SpanGuard::attr_u64`] and friends).
//! * **Counters** ([`counter`]) are point events attributed to the
//!   innermost open span of the calling thread — the solver emits its
//!   propagation/conflict/restart deltas this way.
//! * **Sinks** ([`Sink`]) receive finished spans and counters. The crate
//!   ships a lock-protected JSONL writer ([`JsonlSink`]) and an in-memory
//!   collector for tests and aggregation ([`MemorySink`]).
//! * **The disabled path is compile-cheap.** With no sink installed,
//!   [`span`] and [`counter`] cost one relaxed atomic load and allocate
//!   nothing — the instrumentation can stay on in production code paths.
//!   The `no_alloc` test suite pins this with a counting allocator.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let sink = Arc::new(obs::MemorySink::new());
//! obs::install(sink.clone());
//! {
//!     let mut outer = obs::span("query");
//!     outer.attr_str("scenario", "orc");
//!     let _inner = obs::span("solve");
//!     obs::counter("conflicts", 42);
//! }
//! obs::uninstall();
//! let events = sink.events();
//! assert_eq!(events.len(), 3); // counter, inner span, outer span
//! ```

#![deny(missing_docs)]

mod sink;

pub use sink::{
    counter_to_jsonl, json_escape_into, span_to_jsonl, AttrValue, CounterRecord, Event, JsonlSink,
    MemorySink, Sink, SpanRecord,
};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Fast-path gate: `true` exactly while a sink is installed. Checked with a
/// single relaxed load before anything else happens in [`span`]/[`counter`].
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonically increasing span-id source (0 is reserved for "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// The installed sink, if any.
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// The process-wide trace epoch: all span start times are nanosecond offsets
/// from this instant.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Installs `sink` as the process-wide trace sink and enables tracing.
///
/// Replaces any previously installed sink. Spans that are already open keep
/// recording into whatever sink is installed when they *close*.
pub fn install(sink: Arc<dyn Sink>) {
    // Initialize the epoch before the first span can observe it, so start
    // offsets are relative to (roughly) the install point of the first sink.
    let _ = epoch();
    *SINK.write().expect("obs sink lock poisoned") = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the installed sink (disabling tracing) and returns it, flushing
/// it first.
pub fn uninstall() -> Option<Arc<dyn Sink>> {
    ENABLED.store(false, Ordering::Release);
    let sink = SINK.write().expect("obs sink lock poisoned").take();
    if let Some(s) = &sink {
        s.flush();
    }
    sink
}

/// Whether a sink is currently installed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Runs `f` on the installed sink, if any. Spans that closed while the sink
/// was being swapped are simply dropped — telemetry is best-effort.
fn with_sink(f: impl FnOnce(&dyn Sink)) {
    if let Ok(guard) = SINK.read() {
        if let Some(sink) = guard.as_ref() {
            f(sink.as_ref());
        }
    }
}

/// Live state of an enabled span, owned by its [`SpanGuard`].
#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// RAII guard of one span: the span covers the guard's lifetime and is
/// recorded to the installed sink when the guard drops.
///
/// Guards must be dropped in LIFO order on each thread (the natural order of
/// nested scopes); the parent of a span is whatever span was innermost on
/// the same thread when [`span`] was called.
#[derive(Debug)]
#[must_use = "a span measures the guard's lifetime; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

/// Opens a span named `name`.
///
/// With no sink installed this is one relaxed atomic load and returns an
/// inert guard — no allocation, no thread-local access, no clock read.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    let start = Instant::now();
    let start_ns = start.duration_since(epoch()).as_nanos() as u64;
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent,
            name,
            start,
            start_ns,
            attrs: Vec::new(),
        }),
    }
}

impl SpanGuard {
    /// The span's id, if tracing was enabled when it was opened.
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }

    /// Attaches an unsigned integer attribute.
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        if let Some(a) = &mut self.active {
            a.attrs.push((key, AttrValue::U64(value)));
        }
    }

    /// Attaches a signed integer attribute.
    pub fn attr_i64(&mut self, key: &'static str, value: i64) {
        if let Some(a) = &mut self.active {
            a.attrs.push((key, AttrValue::I64(value)));
        }
    }

    /// Attaches a floating-point attribute.
    pub fn attr_f64(&mut self, key: &'static str, value: f64) {
        if let Some(a) = &mut self.active {
            a.attrs.push((key, AttrValue::F64(value)));
        }
    }

    /// Attaches a boolean attribute.
    pub fn attr_bool(&mut self, key: &'static str, value: bool) {
        if let Some(a) = &mut self.active {
            a.attrs.push((key, AttrValue::Bool(value)));
        }
    }

    /// Attaches a string attribute. The string is only copied when the span
    /// is live (the disabled path allocates nothing).
    pub fn attr_str(&mut self, key: &'static str, value: &str) {
        if let Some(a) = &mut self.active {
            a.attrs.push((key, AttrValue::Str(value.to_string())));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(
                stack.last().copied(),
                Some(active.id),
                "span guards must drop in LIFO order"
            );
            // Be robust against a mis-nested guard in release builds: remove
            // this span wherever it sits instead of corrupting the stack.
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&id| id == active.id) {
                stack.remove(pos);
            }
        });
        let duration_ns = active.start.elapsed().as_nanos() as u64;
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            start_ns: active.start_ns,
            duration_ns,
            attrs: active.attrs,
        };
        with_sink(|sink| sink.record_span(&record));
    }
}

/// Emits a named counter value, attributed to the calling thread's innermost
/// open span (if any).
///
/// With no sink installed this is one relaxed atomic load and nothing else.
pub fn counter(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let span = SPAN_STACK.with(|stack| stack.borrow().last().copied());
    let record = CounterRecord { span, name, value };
    with_sink(|sink| sink.record_counter(&record));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that install the process-global sink.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_span_is_inert() {
        let _guard = TEST_LOCK.lock().unwrap();
        uninstall();
        let mut s = span("never-recorded");
        assert_eq!(s.id(), None);
        s.attr_u64("k", 1);
        counter("ignored", 7);
        drop(s);
        assert!(!enabled());
    }

    #[test]
    fn spans_nest_and_counters_attach() {
        let _guard = TEST_LOCK.lock().unwrap();
        let sink = Arc::new(MemorySink::new());
        install(sink.clone());
        let outer_id;
        let inner_id;
        {
            let outer = span("outer");
            outer_id = outer.id().unwrap();
            {
                let mut inner = span("inner");
                inner.attr_str("phase", "x");
                inner_id = inner.id().unwrap();
                counter("ticks", 3);
            }
            counter("outer_ticks", 1);
        }
        uninstall();
        let events = sink.events();
        // Order: inner counter, inner span, outer counter, outer span.
        assert_eq!(events.len(), 4);
        match &events[0] {
            Event::Counter(c) => {
                assert_eq!(c.name, "ticks");
                assert_eq!(c.span, Some(inner_id));
            }
            other => panic!("expected counter, got {other:?}"),
        }
        match &events[1] {
            Event::Span(s) => {
                assert_eq!(s.name, "inner");
                assert_eq!(s.parent, Some(outer_id));
            }
            other => panic!("expected span, got {other:?}"),
        }
        match &events[3] {
            Event::Span(s) => {
                assert_eq!(s.name, "outer");
                assert_eq!(s.parent, None);
                assert_eq!(s.id, outer_id);
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn uninstall_returns_the_sink_and_disables() {
        let _guard = TEST_LOCK.lock().unwrap();
        let sink = Arc::new(MemorySink::new());
        install(sink);
        assert!(enabled());
        let returned = uninstall();
        assert!(returned.is_some());
        assert!(!enabled());
        assert!(uninstall().is_none());
    }
}
