//! Error types for netlist construction and validation.

use std::error::Error;
use std::fmt;

/// Errors reported by [`Netlist::validate`](crate::Netlist::validate) and
/// other fallible operations of the RTL representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// A register was declared but never given a next-state function.
    RegisterWithoutNext {
        /// Name of the offending register.
        register: String,
    },
    /// The next-state expression of a register has a different width than the
    /// register itself.
    NextWidthMismatch {
        /// Name of the offending register.
        register: String,
        /// Width of the register.
        register_width: u32,
        /// Width of the assigned next-state expression.
        next_width: u32,
    },
    /// An output refers to a signal that does not exist in the netlist.
    DanglingOutput {
        /// Name of the output port.
        output: String,
    },
    /// Two ports (inputs or outputs) share the same name.
    DuplicatePortName {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::RegisterWithoutNext { register } => {
                write!(f, "register `{register}` has no next-state expression")
            }
            RtlError::NextWidthMismatch {
                register,
                register_width,
                next_width,
            } => write!(
                f,
                "register `{register}` is {register_width} bits wide but its next-state expression is {next_width} bits wide"
            ),
            RtlError::DanglingOutput { output } => {
                write!(f, "output `{output}` refers to a signal outside the netlist")
            }
            RtlError::DuplicatePortName { name } => {
                write!(f, "port name `{name}` is used more than once")
            }
        }
    }
}

impl Error for RtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = RtlError::RegisterWithoutNext {
            register: "pc".into(),
        };
        assert!(err.to_string().contains("pc"));
        let err = RtlError::NextWidthMismatch {
            register: "pc".into(),
            register_width: 32,
            next_width: 16,
        };
        assert!(err.to_string().contains("32"));
        assert!(err.to_string().contains("16"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RtlError>();
    }
}
