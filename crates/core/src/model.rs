//! The UPEC computational model: two SoC instances with coupled memories
//! (paper Fig. 3).

use bmc::CompiledTransition;
use rtl::{Netlist, SignalId};
use soc::{build_soc, SocConfig, SocInstance};
use std::sync::Arc;

/// Whether the secret initially resides in the data cache (the two columns of
/// the paper's Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecretScenario {
    /// A valid copy of the secret is in the cache at the starting time point.
    InCache,
    /// The secret only resides in main memory.
    NotInCache,
}

impl SecretScenario {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SecretScenario::InCache => "D in cache",
            SecretScenario::NotInCache => "D not in cache",
        }
    }
}

/// Classification of a state-holding element (paper Defs. 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateClass {
    /// ISA-visible architectural state.
    Architectural,
    /// Program-invisible logic state.
    Microarchitectural,
    /// Cache-line data, treated as part of the memory (excluded from the
    /// logic state like the black-boxed data arrays in the paper).
    Memory,
}

/// A register present in both SoC instances of the miter.
#[derive(Debug, Clone)]
pub struct RegisterPair {
    /// Register name relative to the instance prefix (e.g. `"pc"`,
    /// `"dcache.valid0"`).
    pub name: String,
    /// State classification.
    pub class: StateClass,
    /// Current-value signal in instance 1.
    pub signal1: SignalId,
    /// Current-value signal in instance 2.
    pub signal2: SignalId,
    /// Single-bit miter signal: the pair holds equal values.
    pub equal: SignalId,
    /// Single-bit miter signal: the pair holds equal values *or* both
    /// instances agree that the holding stage cannot architecturally commit
    /// (the blocking condition used by the inductive closure proofs).
    pub equal_or_blocked: SignalId,
}

/// A labelled single-bit constraint signal of the miter.
#[derive(Debug, Clone)]
pub struct NamedConstraint {
    /// Human-readable description.
    pub label: String,
    /// The single-bit signal that must hold.
    pub signal: SignalId,
}

/// The two-instance UPEC computational model.
///
/// Both SoC instances are elaborated into one netlist. The model also builds
/// the miter-level constraint signals required by the UPEC interval property
/// (paper Fig. 4):
///
/// * instruction-memory coupling (same fetch address ⇒ same instruction),
/// * Constraint 4 — equality of non-protected memory read data,
/// * Constraint 1 — no ongoing protected accesses,
/// * Constraint 2 — cache protocol monitor,
/// * Constraint 3 — secure system software,
/// * the `secret_data_protected` premise, and
/// * conditional equality of the cache data arrays (equal except for a line
///   that legitimately holds the secret).
#[derive(Debug)]
pub struct UpecModel {
    netlist: Netlist,
    config: SocConfig,
    scenario: SecretScenario,
    soc1: SocInstance,
    soc2: SocInstance,
    pairs: Vec<RegisterPair>,
    initial_constraints: Vec<NamedConstraint>,
    window_constraints: Vec<NamedConstraint>,
    memory_equivalence: SignalId,
    compiled: Arc<CompiledTransition>,
}

impl UpecModel {
    /// Builds the miter for a SoC configuration and secret scenario.
    pub fn new(config: &SocConfig, scenario: SecretScenario) -> Self {
        let mut n = Netlist::new(format!("upec_miter_{}", config.variant().name()));
        let soc1 = build_soc(&mut n, config, "soc1");
        let soc2 = build_soc(&mut n, config, "soc2");

        // ------------------------------------------------------------------
        // Register pairing and per-pair miter signals
        // ------------------------------------------------------------------
        let strip = |full: &str, prefix: &str| -> String {
            full.strip_prefix(&format!("{prefix}."))
                .unwrap_or(full)
                .to_string()
        };
        let mut pairs = Vec::new();
        let classified = |inst: &SocInstance| {
            let mut map = std::collections::HashMap::new();
            for &r in &inst.arch_registers {
                map.insert(r, StateClass::Architectural);
            }
            for &r in &inst.micro_registers {
                map.insert(r, StateClass::Microarchitectural);
            }
            for &r in &inst.memory_registers {
                map.insert(r, StateClass::Memory);
            }
            map
        };
        let class1 = classified(&soc1);
        // Registers were created in the same order for both instances, so the
        // i-th register of instance 1 corresponds to the i-th of instance 2
        // within each instance's own register range. Match by stripped name
        // to stay robust.
        // Iterate in register-creation order (not HashMap order) so the
        // miter's CNF variable numbering — and with it solver behavior and
        // statistics — is identical on every run.
        let mut regs1: Vec<_> = class1.keys().copied().collect();
        regs1.sort_by_key(|r| r.index());
        for reg1 in regs1 {
            let info1 = n.register_info(reg1).clone();
            let name = strip(&info1.name, &soc1.prefix);
            let full2 = format!("{}.{name}", soc2.prefix);
            let reg2 = n
                .find_register(&full2)
                .unwrap_or_else(|| panic!("instance 2 misses register {full2}"));
            let info2 = n.register_info(reg2).clone();
            let class = class1[&reg1];
            let equal = n.eq(info1.signal, info2.signal);
            let blocking = |inst: &SocInstance, name: &str| -> Option<SignalId> {
                // Fault flags get their stricter blocking conditions: a
                // differing fault bit selects which trap is taken (it feeds
                // `mcause` and the flush logic), so the stage's own fault
                // must not excuse it — see the `SocInstance` field docs.
                if name == "ex_mem_fault" {
                    Some(inst.ex_mem_fault_blocked)
                } else if name == "mem_wb_fault" {
                    Some(inst.mem_wb_fault_blocked)
                } else if name.starts_with("ex_mem_") {
                    Some(inst.ex_mem_blocked)
                } else if name.starts_with("mem_wb_") {
                    Some(inst.mem_wb_blocked)
                } else {
                    None
                }
            };
            let equal_or_blocked = match (blocking(&soc1, &name), blocking(&soc2, &name)) {
                (Some(b1), Some(b2)) => {
                    let both = n.and(b1, b2);
                    n.or(equal, both)
                }
                _ => equal,
            };
            pairs.push(RegisterPair {
                name,
                class,
                signal1: info1.signal,
                signal2: info2.signal,
                equal,
                equal_or_blocked,
            });
        }
        pairs.sort_by(|a, b| a.name.cmp(&b.name));

        // ------------------------------------------------------------------
        // Memory equivalence: cache data arrays equal except for a line that
        // legitimately holds the secret (paper Sec. V-B, Constraint 4's
        // cache-side counterpart).
        // ------------------------------------------------------------------
        let memory_equivalence = {
            let mut terms = Vec::new();
            for pair in pairs.iter().filter(|p| p.class == StateClass::Memory) {
                let secret_line = format!("dcache.data{}", config.secret_index());
                if pair.name == secret_line {
                    // May differ only when the line actually holds the secret.
                    let not_present = n.not(soc1.secret_line_present);
                    let ok = n.implies(not_present, pair.equal);
                    terms.push(ok);
                } else {
                    terms.push(pair.equal);
                }
            }
            n.and_all(terms)
        };

        // ------------------------------------------------------------------
        // Cross-instance input coupling
        // ------------------------------------------------------------------
        // Same fetch address -> same instruction word (the program is the
        // same, attacker-chosen, in both instances).
        let instr_coupling = {
            let same_pc = n.eq(soc1.imem_addr, soc2.imem_addr);
            let same_instr = n.eq(soc1.imem_instr, soc2.imem_instr);
            n.implies(same_pc, same_instr)
        };
        // Constraint 4: same (non-secret) refill address -> same read data.
        let memory_coupling = {
            let both_resp = n.and(soc1.mem_read_resp_now, soc2.mem_read_resp_now);
            let same_addr = n.eq(soc1.mem_read_addr, soc2.mem_read_addr);
            let secret = n.lit(u64::from(config.secret_addr & !3), 32);
            let addr_word = {
                let hi = n.slice(soc1.mem_read_addr, 31, 2);
                let lo = n.lit(0, 2);
                n.concat(hi, lo)
            };
            let is_secret = n.eq(addr_word, secret);
            let not_secret = n.not(is_secret);
            let premise = n.and_all([both_resp, same_addr, not_secret]);
            let same_data = n.eq(soc1.mem_rdata, soc2.mem_rdata);
            n.implies(premise, same_data)
        };

        // ------------------------------------------------------------------
        // Constraint signals
        // ------------------------------------------------------------------
        let mut initial_constraints = vec![
            NamedConstraint {
                label: "secret_data_protected".into(),
                signal: soc1.secret_protected,
            },
            NamedConstraint {
                label: "no_ongoing_protected_access (instance 1)".into(),
                signal: soc1.no_ongoing_protected_access,
            },
            NamedConstraint {
                label: "no_ongoing_protected_access (instance 2)".into(),
                signal: soc2.no_ongoing_protected_access,
            },
            NamedConstraint {
                label: "memory equal except secret".into(),
                signal: memory_equivalence,
            },
        ];
        match scenario {
            SecretScenario::InCache => {
                initial_constraints.push(NamedConstraint {
                    label: "secret line present in the cache".into(),
                    signal: soc1.secret_line_present,
                });
            }
            SecretScenario::NotInCache => {
                let absent = n.not(soc1.secret_line_present);
                initial_constraints.push(NamedConstraint {
                    label: "secret line absent from the cache".into(),
                    signal: absent,
                });
            }
        }
        let window_constraints = vec![
            NamedConstraint {
                label: "instruction memory coupling".into(),
                signal: instr_coupling,
            },
            NamedConstraint {
                label: "equality of non-protected memory (Constraint 4)".into(),
                signal: memory_coupling,
            },
            NamedConstraint {
                label: "cache monitor valid (instance 1)".into(),
                signal: soc1.cache_monitor_valid,
            },
            NamedConstraint {
                label: "cache monitor valid (instance 2)".into(),
                signal: soc2.cache_monitor_valid,
            },
            NamedConstraint {
                label: "pipeline monitor valid (instance 1)".into(),
                signal: soc1.pipeline_monitor_valid,
            },
            NamedConstraint {
                label: "pipeline monitor valid (instance 2)".into(),
                signal: soc2.pipeline_monitor_valid,
            },
            NamedConstraint {
                label: "secure system software (instance 1)".into(),
                signal: soc1.secure_sysw_ok,
            },
            NamedConstraint {
                label: "secure system software (instance 2)".into(),
                signal: soc2.secure_sysw_ok,
            },
        ];

        n.validate().expect("miter netlist is well formed");

        // Compile the transition relation once per miter: cone-of-influence
        // roots are every signal a UPEC query can constrain, commit to or
        // extract. All sessions, checkers and portfolio stripes share this
        // schedule through the `Arc`.
        let mut roots: Vec<SignalId> = Vec::new();
        roots.extend(initial_constraints.iter().map(|c| c.signal));
        roots.extend(window_constraints.iter().map(|c| c.signal));
        roots.push(memory_equivalence);
        for pair in &pairs {
            roots.extend([
                pair.signal1,
                pair.signal2,
                pair.equal,
                pair.equal_or_blocked,
            ]);
        }
        let compiled = Arc::new(CompiledTransition::compile_with_roots(&n, &roots));

        Self {
            netlist: n,
            config: config.clone(),
            scenario,
            soc1,
            soc2,
            pairs,
            initial_constraints,
            window_constraints,
            memory_equivalence,
            compiled,
        }
    }

    /// The transition relation compiled for this miter (cone-of-influence
    /// pruned, structurally hashed, constant folded). Shared by every
    /// session opened on this model.
    pub fn compiled_transition(&self) -> &Arc<CompiledTransition> {
        &self.compiled
    }

    /// The miter netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The SoC configuration being verified.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// The secret scenario the model was built for.
    pub fn scenario(&self) -> SecretScenario {
        self.scenario
    }

    /// Instance 1 of the SoC.
    pub fn soc1(&self) -> &SocInstance {
        &self.soc1
    }

    /// Instance 2 of the SoC.
    pub fn soc2(&self) -> &SocInstance {
        &self.soc2
    }

    /// All register pairs of the miter.
    pub fn pairs(&self) -> &[RegisterPair] {
        &self.pairs
    }

    /// Register pairs of a given state class.
    pub fn pairs_of_class(&self, class: StateClass) -> impl Iterator<Item = &RegisterPair> {
        self.pairs.iter().filter(move |p| p.class == class)
    }

    /// Looks up a pair by its (prefix-relative) name.
    pub fn pair(&self, name: &str) -> Option<&RegisterPair> {
        self.pairs.iter().find(|p| p.name == name)
    }

    /// Constraints assumed at the starting time point `t`.
    pub fn initial_constraints(&self) -> &[NamedConstraint] {
        &self.initial_constraints
    }

    /// Constraints assumed during the whole proof window.
    pub fn window_constraints(&self) -> &[NamedConstraint] {
        &self.window_constraints
    }

    /// The conditional cache-data equivalence signal ("memories equal except
    /// for the secret").
    pub fn memory_equivalence(&self) -> SignalId {
        self.memory_equivalence
    }

    /// Default UPEC window length `d_MEM` for this model.
    pub fn d_mem(&self) -> usize {
        self.config
            .d_mem(matches!(self.scenario, SecretScenario::InCache))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc::SocVariant;

    fn tiny_config(variant: SocVariant) -> SocConfig {
        SocConfig::new(variant)
            .with_registers(4)
            .with_cache_lines(2)
            .with_miss_latency(1)
            .with_store_latency(1)
    }

    #[test]
    fn miter_pairs_every_register_once() {
        let model = UpecModel::new(&tiny_config(SocVariant::Secure), SecretScenario::InCache);
        let total_regs_one_instance = model.soc1().arch_registers.len()
            + model.soc1().micro_registers.len()
            + model.soc1().memory_registers.len();
        assert_eq!(model.pairs().len(), total_regs_one_instance);
        // Names are unique.
        let mut names: Vec<_> = model.pairs().iter().map(|p| p.name.clone()).collect();
        names.dedup();
        assert_eq!(names.len(), model.pairs().len());
        assert!(model.pair("pc").is_some());
        assert!(model.pair("dcache.pw_valid").is_some());
        assert!(model.pair("nonexistent").is_none());
    }

    #[test]
    fn classification_covers_arch_micro_and_memory() {
        let model = UpecModel::new(&tiny_config(SocVariant::Secure), SecretScenario::InCache);
        assert!(model.pairs_of_class(StateClass::Architectural).count() >= 10);
        assert!(model.pairs_of_class(StateClass::Microarchitectural).count() >= 40);
        assert_eq!(
            model.pairs_of_class(StateClass::Memory).count(),
            model.config().cache_lines as usize
        );
        assert_eq!(model.pair("pc").unwrap().class, StateClass::Architectural);
        assert_eq!(
            model.pair("ex_mem_result").unwrap().class,
            StateClass::Microarchitectural
        );
    }

    #[test]
    fn scenarios_add_the_right_initial_constraint() {
        let cached = UpecModel::new(&tiny_config(SocVariant::Secure), SecretScenario::InCache);
        assert!(cached
            .initial_constraints()
            .iter()
            .any(|c| c.label.contains("present")));
        let uncached = UpecModel::new(&tiny_config(SocVariant::Secure), SecretScenario::NotInCache);
        assert!(uncached
            .initial_constraints()
            .iter()
            .any(|c| c.label.contains("absent")));
        assert!(cached.d_mem() < uncached.d_mem());
        assert_eq!(cached.scenario().label(), "D in cache");
    }
}
