//! Temporary probe: compare the seed's hard-clause, from-scratch check
//! against the activation-literal incremental session on the same queries.

use bmc::{UnrollOptions, Unrolling};
use sat::SatResult;
use std::collections::BTreeSet;
use std::time::Instant;
use upec::engine::IncrementalSession;
use upec::{StateClass, UpecModel};

/// The seed implementation: fresh unrolling, hard obligation clause.
fn old_check(model: &UpecModel, k: usize, commitment: &BTreeSet<String>) -> (bool, u64) {
    let aliases: Vec<_> = model
        .pairs()
        .iter()
        .filter(|p| p.class != StateClass::Memory)
        .map(|p| (p.signal2, p.signal1))
        .collect();
    let mut u = Unrolling::with_frame0_aliases(model.netlist(), UnrollOptions::default(), &aliases);
    u.extend_to(k);
    for c in model.initial_constraints() {
        u.assume_signal_true(0, c.signal).unwrap();
    }
    for c in model.window_constraints() {
        for f in 0..=k {
            u.assume_signal_true(f, c.signal).unwrap();
        }
    }
    let lits: Vec<_> = model
        .pairs()
        .iter()
        .filter(|p| p.class != StateClass::Memory && commitment.contains(&p.name))
        .map(|p| u.bit_lit(k, p.equal).unwrap())
        .collect();
    u.add_clause(lits.iter().map(|&l| !l));
    let sat = matches!(u.solve(&[]), SatResult::Sat(_));
    let st = u.solver_stats();
    eprintln!(
        "    vars={} clauses={} props={} decisions={} restarts={} learnt={} deleted={}",
        u.num_vars(),
        u.num_clauses(),
        st.propagations,
        st.decisions,
        st.restarts,
        st.learnt_clauses,
        st.deleted_clauses
    );
    (sat, st.conflicts)
}

fn main() {
    let spec = upec::scenarios::by_id("orc").unwrap();
    let model = spec.build_model();
    let commitment = spec.commitment_set(&model);

    for k in 1..=3 {
        let t = Instant::now();
        let (sat, conflicts) = old_check(&model, k, &commitment);
        println!(
            "old  k={k}: sat={sat} conflicts={conflicts} {:?}",
            t.elapsed()
        );
    }

    for k in 1..=3 {
        let t = Instant::now();
        let mut s = IncrementalSession::new(&model, None);
        let outcome = s.check_bound(k, &commitment);
        println!(
            "new1 k={k}: alert={} conflicts={} {:?}",
            outcome.alert().is_some(),
            s.solver_stats().conflicts,
            t.elapsed()
        );
    }

    let t = Instant::now();
    let mut s = IncrementalSession::new(&model, None);
    for k in 1..=3 {
        let tk = Instant::now();
        let outcome = s.check_bound(k, &commitment);
        println!(
            "inc  k={k}: alert={} conflicts={} {:?}",
            outcome.alert().is_some(),
            s.solver_stats().conflicts,
            tk.elapsed()
        );
    }
    println!("incremental total: {:?}", t.elapsed());
}
