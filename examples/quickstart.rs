//! Quickstart: run a program on the MiniRV SoC, then prove a UPEC property.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use soc::{Instruction, Program, SocConfig, SocSim, SocVariant};
use upec::{SecretScenario, UpecChecker, UpecModel, UpecOptions};

fn main() {
    // ------------------------------------------------------------------
    // 1. Run a tiny program on the cycle-accurate RTL simulation.
    // ------------------------------------------------------------------
    let config = SocConfig::new(SocVariant::Secure);
    let mut program = Program::new(0);
    program.push(Instruction::Addi {
        rd: 1,
        rs1: 0,
        imm: 0x40,
    });
    program.push(Instruction::Addi {
        rd: 2,
        rs1: 0,
        imm: 21,
    });
    program.push(Instruction::Add {
        rd: 2,
        rs1: 2,
        rs2: 2,
    });
    program.push(Instruction::Sw {
        rs1: 1,
        rs2: 2,
        offset: 0,
    });
    program.push(Instruction::Lw {
        rd: 3,
        rs1: 1,
        offset: 0,
    });
    program.push_nops(4);
    println!("Program:\n{}", program.listing());

    let mut sim = SocSim::new(config.clone(), program);
    sim.run(60);
    println!(
        "x2 = {}, x3 = {}, mem[0x40] = {}",
        sim.reg(2),
        sim.reg(3),
        sim.load_word(0x40)
    );
    assert_eq!(sim.reg(3), 42);

    // ------------------------------------------------------------------
    // 2. Prove unique program execution for the "secret not in cache" case
    //    on a small configuration (fast enough for a quickstart).
    // ------------------------------------------------------------------
    let small = SocConfig::new(SocVariant::Secure)
        .with_registers(4)
        .with_cache_lines(2)
        .with_miss_latency(1)
        .with_store_latency(1);
    let model = UpecModel::new(&small, SecretScenario::NotInCache);
    let outcome = UpecChecker::new().check_full(&model, UpecOptions::window(2));
    println!(
        "UPEC (secret not cached, window 2): proven = {} ({} CNF variables, {:?})",
        outcome.is_proven(),
        outcome.stats().variables,
        outcome.stats().runtime
    );
    assert!(outcome.is_proven());
    println!("No covert channel: the design executes every program uniquely.");
}
